# Verification pipeline for the repro codebase.
#
#   make verify       # everything below, in order
#   make lint         # repro-lint (+ ruff/mypy when installed)
#   make analyze      # baselined repro-lint gate + SARIF report (analysis.sarif)
#   make test         # tier-1 pytest suite
#   make bench        # harness smoke (--quick) + baseline check + regression gate
#   make faults-smoke # small fault-injection matrix (crash/bitflip/torn)
#   make chaos-smoke  # WAL crash-matrix slice: kill update flushes, recover, diff
#   make service-smoke# boot the document-store service and exercise every endpoint
#
# ruff and mypy are optional deep-net linters (pyproject [lint] extra);
# verify skips them with a notice when the environment lacks them, so
# the target works in the minimal container and in a dev checkout alike.

export PYTHONPATH := src

PYTHON ?= python

.PHONY: verify lint analyze test bench faults-smoke chaos-smoke service-smoke

verify: lint analyze test bench faults-smoke chaos-smoke service-smoke
	@echo "verify: OK"

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi
	$(PYTHON) -m repro.analysis.cli src/repro

# The CI gate: every rule family (including the dataflow-driven CC/LIN
# passes) against the committed baseline, emitting a SARIF report for
# code-scanning upload. Fails on any new finding OR any stale baseline
# entry (run `repro-lint --baseline analysis-baseline.json
# --update-baseline src/repro` after fixing findings).
analyze:
	$(PYTHON) -m repro.analysis.cli --baseline analysis-baseline.json \
		--format sarif --output analysis.sarif src/repro

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/harness.py --quick --check --output /dev/null
	$(PYTHON) benchmarks/compare.py BENCH_PR4.json BENCH_PR5.json
	$(PYTHON) benchmarks/bench_service.py --quick --check --output /dev/null
	$(PYTHON) benchmarks/compare.py BENCH_PR7.json BENCH_PR9.json
	$(PYTHON) benchmarks/bench_recovery.py --quick --check --output /dev/null
	$(PYTHON) benchmarks/bench_index.py --quick --check --output /dev/null

faults-smoke:
	$(PYTHON) -m repro.faults.cli --scale 0.002 --crash-points 2 --flip-pages 2

chaos-smoke:
	$(PYTHON) -m repro.faults.cli --updates --crash-points 2 --batches 2 --ops-per-batch 8

service-smoke:
	$(PYTHON) -m repro.service.smoke
