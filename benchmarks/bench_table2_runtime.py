"""Table 2 — partitioning CPU time per document × algorithm.

pytest-benchmark's timing report *is* Table 2 here. The paper's headline
runtime orderings (DHW slowest by orders of magnitude, GHDW next, the
simple heuristics effectively free, KM linear but K-independent) are
asserted explicitly in ``bench_table2_shape``.
"""

import time

import pytest

from repro.datasets.registry import PAPER_DOCUMENTS
from repro.partition import get_algorithm

LIMIT = 256
DOCUMENTS = [spec.name for spec in PAPER_DOCUMENTS]
FAST = ("ekm", "rs", "dfs", "km", "bfs")


@pytest.mark.parametrize("document", DOCUMENTS)
@pytest.mark.parametrize("algorithm", FAST)
def bench_runtime_fast(benchmark, bench_corpus, document, algorithm):
    tree = bench_corpus[document]
    partitioner = get_algorithm(algorithm)
    benchmark(partitioner.partition, tree, LIMIT)


@pytest.mark.parametrize("document", DOCUMENTS)
def bench_runtime_ghdw(benchmark, bench_corpus, document):
    tree = bench_corpus[document]
    partitioner = get_algorithm("ghdw")
    benchmark.pedantic(
        partitioner.partition, args=(tree, LIMIT), rounds=2, iterations=1
    )


@pytest.mark.parametrize("document", DOCUMENTS[:2])
def bench_runtime_dhw(benchmark, dhw_corpus, document):
    tree = dhw_corpus[document]
    partitioner = get_algorithm("dhw")
    benchmark.pedantic(
        partitioner.partition, args=(tree, LIMIT), rounds=1, iterations=1
    )


def bench_table2_shape(benchmark, dhw_corpus):
    """Assert the Table 2 runtime ordering on one document:
    DHW >> GHDW >> EKM (the paper reports ~100x and ~100x+)."""

    tree = dhw_corpus["SigmodRecord.xml"]

    def measure():
        out = {}
        for name in ("dhw", "ghdw", "ekm", "km"):
            start = time.perf_counter()
            get_algorithm(name).partition(tree, LIMIT)
            out[name] = time.perf_counter() - start
        return out

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert times["dhw"] > times["ghdw"] * 3
    assert times["ghdw"] > times["ekm"] * 3
    benchmark.extra_info.update({k: round(v, 4) for k, v in times.items()})
