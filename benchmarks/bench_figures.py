"""Figures 6 and 9 — the paper's counterexample trees, asserted exactly.

These are micro-benchmarks only in the trivial sense (the trees have six
nodes); their value is pinning the documented algorithm behaviours in
the benchmark report alongside the tables.
"""

from repro.bench.figures import FIG3_SPEC, FIG6_SPEC, FIG9_SPEC
from repro.partition import get_algorithm
from repro.tree.builders import tree_from_spec

LIMIT = 5


def bench_fig6_greedy_failure(benchmark):
    tree = tree_from_spec(FIG6_SPEC)

    def run():
        return (
            get_algorithm("ghdw").partition(tree, LIMIT).cardinality,
            get_algorithm("dhw").partition(tree, LIMIT).cardinality,
        )

    ghdw, dhw = benchmark(run)
    assert (ghdw, dhw) == (4, 3)  # the paper's Fig. 6 numbers
    benchmark.extra_info.update({"ghdw": ghdw, "dhw": dhw})


def bench_fig9_ekm_failure(benchmark):
    tree = tree_from_spec(FIG9_SPEC)

    def run():
        return (
            get_algorithm("ekm").partition(tree, LIMIT).cardinality,
            get_algorithm("dhw").partition(tree, LIMIT).cardinality,
        )

    ekm, dhw = benchmark(run)
    assert (ekm, dhw) == (3, 2)  # the paper's Fig. 9 numbers
    benchmark.extra_info.update({"ekm": ekm, "dhw": dhw})


def bench_fig3_running_example(benchmark):
    tree = tree_from_spec(FIG3_SPEC)

    def run():
        return get_algorithm("dhw").partition(tree, LIMIT).cardinality

    assert benchmark(run) == 3
