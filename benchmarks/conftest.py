"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's tables with pytest-benchmark
timing. Scales are chosen so the whole suite (including the slow optimal
DHW algorithm) finishes in minutes of pure Python; pass a larger corpus
through ``python -m repro.bench`` for full-scale runs.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import PAPER_DOCUMENTS

#: scale for the timed corpus (fraction of the library defaults, which
#: are themselves ~1/10 of the paper's documents)
BENCH_SCALE = 0.3
#: even smaller corpus for the O(n·K³) optimal algorithm
DHW_SCALE = 0.1

LIMIT = 256


@pytest.fixture(scope="session")
def bench_corpus():
    return {
        spec.name: spec.generate(scale=BENCH_SCALE, seed=2006)
        for spec in PAPER_DOCUMENTS
    }


@pytest.fixture(scope="session")
def dhw_corpus():
    return {
        spec.name: spec.generate(scale=DHW_SCALE, seed=2006)
        for spec in PAPER_DOCUMENTS
    }


def document_ids():
    return [spec.name for spec in PAPER_DOCUMENTS]
