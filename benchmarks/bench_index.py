#!/usr/bin/env python
"""Structural-index scenario: window vs navigation, pruning, heat overhead.

Builds one XMark/EKM store and answers the descendant-heavy XPathMark
queries two ways — pure navigation (index detached) and through the
structural index's preorder windows — timing both sides best-of-
``--repeats`` so scheduler noise cancels. Every query must return
bit-identical node-id lists both ways (``identical``); the summary
``descendant_speedup_min`` is the smallest window speedup across the
descendant-axis queries and must clear
``compare.INDEX_DESCENDANT_FLOOR`` (>= 3x) on full-run baselines.

The inner-window query (E7 ``//item/description//keyword``) must also
report ``partitions_pruned > 0``: its windows overlap only a slice of
the record map, so most partitions are never decoded.

Finally the heat sub-scenario re-times a navigation-bound workload with
a :class:`repro.telemetry.heat.HeatAccumulator` attached. The batched
hop buffer must keep the accounting overhead under
``compare.HEAT_OVERHEAD_BUDGET`` (< 10%, full runs; the old per-hop
callback sink cost ~50% — lint rule PERF002 guards the hot path now).

Usage::

    PYTHONPATH=src python benchmarks/bench_index.py [--quick] [--check]
        [--seed N] [--repeats N] [--output BENCH.json]

``--check`` first validates the committed ``BENCH_PR10.json`` with the
same gate :mod:`benchmarks.compare` applies in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter  # the harness itself may read the clock

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import telemetry  # noqa: E402
from repro.datasets import xmark_document  # noqa: E402
from repro.partition import get_algorithm  # noqa: E402
from repro.query import evaluate, run_query  # noqa: E402
from repro.storage import DocumentStore  # noqa: E402
from repro.telemetry.heat import HeatAccumulator  # noqa: E402

SCHEMA = "repro-bench/1"
BASELINE = REPO_ROOT / "BENCH_PR10.json"
LIMIT = 256

#: (qid, xpath, axis) — the timed comparison set; the ``descendant``
#: rows feed the speedup floor, the ancestor row rides along for the
#: report (ancestor windows help too, but the floor gates descendants)
QUERIES = (
    ("Q3", "//keyword", "descendant"),
    (
        "Q4",
        "/descendant-or-self::listitem/descendant-or-self::keyword",
        "descendant",
    ),
    ("E7", "//item/description//keyword", "descendant"),
    ("Q6", "//keyword/ancestor::listitem", "ancestor"),
)

#: navigation-bound workload for the heat-overhead sub-scenario — the
#: same comparison set the window scenario times, evaluated by pure
#: navigation (index detached)
HEAT_XPATHS = tuple(xpath for _, xpath, _ in QUERIES)


def _build_store(scale: float, seed: int) -> DocumentStore:
    tree = xmark_document(scale=scale, seed=seed)
    partitioning = get_algorithm("ekm").partition(tree, LIMIT)
    store = DocumentStore.build(tree, partitioning)
    store.warm_up()
    return store


def _ids(store, xpath: str) -> list[int]:
    return [node.node_id for node in evaluate(store, xpath)]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Min wall-clock over ``repeats`` calls; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = perf_counter()
        result = fn()
        best = min(best, perf_counter() - start)
    return best, result


def _query_rows(store: DocumentStore, repeats: int) -> dict:
    rows: dict[str, dict] = {}
    for qid, xpath, axis in QUERIES:
        store.structural_index = None
        nav_seconds, nav_ids = _best_of(lambda: _ids(store, xpath), repeats)
        store.build_index()
        win_seconds, win_ids = _best_of(lambda: _ids(store, xpath), repeats)
        counters = run_query(store, xpath)
        rows[qid] = {
            "xpath": xpath,
            "axis": axis,
            "results": len(win_ids),
            "identical": win_ids == nav_ids,
            "navigation_seconds": nav_seconds,
            "window_seconds": win_seconds,
            "speedup": nav_seconds / win_seconds if win_seconds else 0.0,
            "window_steps": counters.window_steps,
            "partitions_pruned": counters.partitions_pruned,
            "window_cost": counters.cost,
        }
    return rows


def _heat_overhead(store: DocumentStore, pairs: int) -> dict:
    """Navigation-bound wall-clock with and without heat accounting.

    The index stays detached on both sides: heat tallies navigation
    hops, and window evaluation takes none — an indexed run would time
    nothing but the buffer's ``is not None`` branch. Accounting is
    toggled exactly the way the hot path gates it: by nulling the
    pre-bound ``heat_append``.

    Samples are taken in interleaved (off, on) pairs — alternating
    which side goes first — and each pair yields one on/off ratio.
    Adjacent samples share the machine's momentary state (frequency
    scaling, noisy neighbours), so the ratio cancels drift a best-of
    over two independently-sampled sides cannot: one lucky sample on
    either side would swing that estimate by more than the budget
    itself. The estimate is the *interquartile mean* of the ratios —
    outlier pairs (a frequency step landing mid-pair) fall in the
    trimmed tails. ``heat.flush()`` runs after every timed sample so
    the lazy tally fold never lands inside a timed region, mirroring a
    deployment that reads heat between requests, not during them.
    """
    store.structural_index = None

    def workload():
        for xpath in HEAT_XPATHS:
            run_query(store, xpath)

    heat = HeatAccumulator()
    heat.attach("bench", store)
    enabled = (store.heat_append, store.heat_fault_append)
    try:
        workload()  # warm code paths + tallies before timing
        heat.flush()
        plain_seconds = heat_seconds = float("inf")
        ratios = []
        for pair_index in range(pairs):
            sides = ("off", "on") if pair_index % 2 == 0 else ("on", "off")
            pair = {}
            for side in sides:
                if side == "off":
                    store.heat_append = store.heat_fault_append = None
                else:
                    store.heat_append, store.heat_fault_append = enabled
                start = perf_counter()
                workload()
                pair[side] = perf_counter() - start
                heat.flush()  # fold outside the timed region
            store.heat_append, store.heat_fault_append = enabled
            plain_seconds = min(plain_seconds, pair["off"])
            heat_seconds = min(heat_seconds, pair["on"])
            ratios.append(pair["on"] / pair["off"])
        profile = heat.profile()
        steps = profile.docs["bench"].steps
    finally:
        heat.detach("bench")
    ratios.sort()
    trimmed = ratios[len(ratios) // 4 : len(ratios) - len(ratios) // 4]
    return {
        "pairs": pairs,
        "plain_seconds": plain_seconds,
        "heat_seconds": heat_seconds,
        "overhead_fraction": sum(trimmed) / len(trimmed) - 1.0,
        "steps_observed": steps,
        "observed": steps > 0,
    }


def run_scenario(quick: bool, seed: int, repeats: int) -> dict:
    scale = 0.004 if quick else 0.01
    store = _build_store(scale, seed)

    build_seconds, index = _best_of(store.build_index, repeats)
    queries = _query_rows(store, repeats)
    heat = _heat_overhead(store, 3 if quick else 20)

    descendant_speedups = [
        row["speedup"] for row in queries.values() if row["axis"] == "descendant"
    ]
    return {
        "seed": seed,
        "scale": scale,
        "limit": LIMIT,
        "repeats": repeats,
        "nodes": index.node_count,
        "records": index.record_count,
        "build_seconds": build_seconds,
        "queries": queries,
        "descendant_speedup_min": min(descendant_speedups),
        "partitions_pruned_total": sum(
            row["partitions_pruned"] for row in queries.values()
        ),
        "heat": heat,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload (CI smoke)")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"also validate the committed baseline ({BASELINE.name})",
    )
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed runs per side; best-of wins (default: 3 quick, 5 full)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the run's JSON here (default: stdout)",
    )
    args = parser.parse_args(argv)
    if args.check:
        bench_dir = str(REPO_ROOT / "benchmarks")
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        from compare import check_index_baseline

        status = check_index_baseline(BASELINE)
        if status:
            return status
    repeats = args.repeats or (3 if args.quick else 5)
    print(f"[bench-index] {'quick' if args.quick else 'full'} workload ...", file=sys.stderr)
    scenario = run_scenario(args.quick, args.seed, repeats)
    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "environment": telemetry.environment_fingerprint(),
        "scenarios": {"index": scenario},
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        args.output.write_text(text)
        print(f"[bench-index] wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    print(
        f"[bench-index] build={scenario['build_seconds'] * 1000:.1f}ms, "
        f"descendant speedup >= {scenario['descendant_speedup_min']:.1f}x, "
        f"pruned={scenario['partitions_pruned_total']}, "
        f"heat overhead {scenario['heat']['overhead_fraction'] * 100:+.1f}%",
        file=sys.stderr,
    )
    problems = []
    for qid, row in scenario["queries"].items():
        if not row["identical"]:
            problems.append(
                f"{qid}: window ids diverged from navigation ({row['xpath']})"
            )
    if scenario["partitions_pruned_total"] <= 0:
        problems.append("no partitions pruned on the multi-partition scenario")
    if not scenario["heat"]["observed"]:
        problems.append("heat accounting observed no navigation steps")
    if not args.quick:
        if scenario["descendant_speedup_min"] < 3.0:
            problems.append(
                f"descendant speedup {scenario['descendant_speedup_min']:.2f}x "
                "< 3x floor"
            )
        if scenario["heat"]["overhead_fraction"] >= 0.10:
            problems.append(
                f"heat overhead {scenario['heat']['overhead_fraction'] * 100:.1f}% "
                ">= 10% budget"
            )
    for problem in problems:
        print(f"[bench-index] FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
