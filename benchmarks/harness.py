#!/usr/bin/env python
"""Perf-baseline harness: one JSON document per benchmark run.

Runs the paper's scenario families under an enabled telemetry registry
and writes a schema-versioned baseline (``BENCH_PR4.json`` is the
committed one) so perf regressions show up as a diff:

* **table1_table2** — every table algorithm on every corpus document:
  wall seconds, partition counts, root weight, DP cell counts, plus a
  store build + query workload per document for buffer hit ratios.
* **table3** — the KM-vs-EKM query experiment with per-layout buffer
  pool counters.
* **bulkload** — streaming import across spill thresholds.
* **overhead** — the telemetry-disabled instrumentation cost of the
  ``Partitioner.partition`` wrapper against a bare ``_partition`` call
  (acceptance: < 3%).
* **fastpath** — the :mod:`repro.fastpath` kernels against the reference
  partitioners on a duplicated-subtree document (DAG memoization's
  headline case) and the Table-2 corpus; rows record both timings, the
  speedup, an output-identity bit and the shape-cache hit ratio.
  Committed full baselines must clear the speedup floors (dhw >= 2x on
  the duplicated doc, >= 1.3x on the corpus — ``check_baseline``).

Usage::

    PYTHONPATH=src python benchmarks/harness.py [--quick] [--check]
        [--output BENCH.json]

``--quick`` shrinks scales and repeat counts (CI smoke); ``--check``
validates the committed baseline's schema and scenario keys instead of
trusting a stale file.

**Baseline-compare workflow.** The repo commits the latest full-run
baseline *and* its predecessor, and ``make bench`` diffs them with
``benchmarks/compare.py``; the gate fails on any deterministic-metric
drift and on over-threshold slowdowns. To accept a new baseline:

1. ``PYTHONPATH=src python benchmarks/harness.py --output BENCH_PRn.json``
   (a full run, not ``--quick`` — quick baselines are not comparable to
   committed full ones);
2. ``python benchmarks/compare.py BENCH_PRm.json BENCH_PRn.json`` against
   the previous committed baseline — expect exit 0, or explain every
   reported regression in the PR that commits the file;
3. point :data:`BASELINE` below and the ``make bench`` compare line at
   the new file and commit both baselines.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import telemetry  # noqa: E402
from repro.bench.table3 import run_query_experiment  # noqa: E402
from repro.bulkload import BulkLoader  # noqa: E402
from repro.datasets.registry import PAPER_DOCUMENTS  # noqa: E402
from repro.partition import evaluate_partitioning, get_algorithm  # noqa: E402
from repro.partition.binpack import capacity_lower_bound  # noqa: E402
from repro.storage import DocumentStore  # noqa: E402
from repro.query import run_query  # noqa: E402
from repro.xmlio.serialize import tree_to_xml  # noqa: E402
from repro.xmlio.weights import PAPER_LIMIT  # noqa: E402

SCHEMA = "repro-bench/1"
BASELINE = REPO_ROOT / "BENCH_PR5.json"
SCENARIOS = ("table1_table2", "table3", "bulkload", "overhead", "fastpath")

#: speedup floors a committed full-run baseline must clear (quick/CI
#: smoke runs are too small to be meaningful and are not gated)
FASTPATH_DUP_FLOOR = 2.0  # dhw on the duplicated-subtree document
FASTPATH_TABLE2_FLOOR = 1.3  # dhw on every Table-2 corpus document

#: Table 1/2 column order (the paper's); dhw is the slow optimum.
TABLE_ALGORITHMS = ("dhw", "ghdw", "ekm", "rs", "dfs", "km", "bfs")
#: short query workload used to exercise each document's buffer pool
BUFFER_QUERIES = ("//*", "/*/*", "//*[1]")


def bench_table1_table2(quick: bool) -> dict:
    """Per-document × per-algorithm partitioning + buffer workload.

    Full runs time each partition call ``repeats`` times and keep the
    minimum — a transient load spike on a shared machine should not land
    in the committed baseline (same rationale as :func:`bench_overhead`).
    The deterministic metrics are identical on every repeat; dp_cells is
    read from the per-repeat capture registry, so repeating never
    inflates it.
    """
    scale = 0.1 if quick else 0.25
    repeats = 1 if quick else 3
    documents = PAPER_DOCUMENTS[:2] if quick else PAPER_DOCUMENTS
    rows = []
    for spec in documents:
        tree = spec.generate(scale=scale, seed=2006)
        row: dict = {
            "document": spec.name,
            "nodes": len(tree),
            "total_weight": tree.total_weight(),
            "weight_over_k": capacity_lower_bound(tree, PAPER_LIMIT),
            "algorithms": {},
        }
        for name in TABLE_ALGORITHMS:
            seconds = None
            dp_cells = None
            partitioning = None
            for _ in range(repeats):
                # A gen-2 GC pause against the accumulated store/tree heap
                # costs ~10ms — enough to double a heuristic's cell. Pay
                # the collection outside the span, pause GC inside it.
                gc.collect()
                gc.disable()
                try:
                    with telemetry.capture() as reg:
                        with telemetry.span("harness.partition") as sp:
                            partitioning = get_algorithm(name).partition(
                                tree, PAPER_LIMIT, check=False
                            )
                finally:
                    gc.enable()
                seconds = sp.elapsed if seconds is None else min(seconds, sp.elapsed)
                metric = f"partition.{name}.dp_cells"
                if metric in reg.counters:
                    dp_cells = reg.counters[metric].value
            report = evaluate_partitioning(tree, partitioning, PAPER_LIMIT)
            assert report.feasible, f"{name} infeasible on {spec.name}"
            store = DocumentStore.build(tree, partitioning)
            store.warm_up()
            for xpath in BUFFER_QUERIES:
                run_query(store, xpath)
            cell = {
                "seconds": seconds,
                "partitions": report.cardinality,
                "root_weight": report.root_weight,
                "buffer": store.buffer.stats.as_dict(),
            }
            if dp_cells is not None:
                cell["dp_cells"] = dp_cells
            row["algorithms"][name] = cell
        rows.append(row)
    return {"limit": PAPER_LIMIT, "scale": scale, "documents": rows}


def bench_table3(quick: bool) -> dict:
    """KM vs EKM query costs with per-layout buffer counters."""
    scale = 0.005 if quick else 0.02
    result = run_query_experiment(scale=scale, limit=PAPER_LIMIT)
    return {
        "scale": scale,
        "nodes": result.nodes,
        "limit": result.limit,
        "partitions": dict(result.partitions),
        "space_kib": dict(result.space_kib),
        "buffer": dict(result.buffer_stats),
        "queries": {
            qid: {
                name: {
                    "cost": run.cost,
                    "results": run.result_count,
                    "cross_ratio": run.cross_ratio,
                }
                for name, run in runs.items()
            }
            for qid, runs in result.runs.items()
        },
    }


def bench_bulkload(quick: bool) -> dict:
    """Streaming import across spill thresholds, with telemetry counters.

    Like :func:`bench_table1_table2`, full runs keep the minimum import
    time over ``repeats`` identical loads.
    """
    scale = 0.05 if quick else 0.25
    repeats = 1 if quick else 3
    xmark = PAPER_DOCUMENTS[-1]
    xml = tree_to_xml(xmark.generate(scale=scale, seed=2006))
    thresholds = (None, 1024) if quick else (None, 4096, 1024)
    runs = []
    for threshold in thresholds:
        seconds = None
        result = None
        for _ in range(repeats):
            with telemetry.capture() as reg:
                loader = BulkLoader(
                    algorithm="ekm", limit=PAPER_LIMIT, spill_threshold=threshold
                )
                result = loader.load(xml)
            elapsed = reg.histograms["span.bulkload.import"].total
            seconds = elapsed if seconds is None else min(seconds, elapsed)
        runs.append(
            {
                "spill_threshold": threshold,
                "seconds": seconds,
                "partitions": result.emitted_partitions,
                "peak_resident_weight": result.peak_resident_weight,
                "peak_resident_fraction": result.peak_resident_fraction,
                "spills": result.spills,
                "events": result.events,
            }
        )
    return {"document": xmark.name, "scale": scale, "runs": runs}


def bench_overhead(quick: bool) -> dict:
    """Wrapper cost with telemetry *disabled* vs a bare ``_partition``.

    The baseline closure replicates exactly what the wrapper adds around
    the algorithm (feasibility scan) minus the telemetry/span machinery,
    so the measured gap is the instrumentation's no-op fast path.
    Repeats are interleaved so drift hits both sides equally, and the
    minimum is compared (the stable cost floor; medians of few
    millisecond-scale samples still carry scheduler jitter).
    """
    from time import perf_counter  # the harness itself may read the clock

    spec = PAPER_DOCUMENTS[0]  # SigmodRecord: deep fanout, fast algorithms
    tree = spec.generate(scale=1.0, seed=2006)
    algo = get_algorithm("ekm")
    # The fraction compares two near-identical few-ms minima, so it is the
    # noisiest number in the suite; full runs buy stability with repeats.
    repeats = 15 if quick else 80

    def bare() -> float:
        start = perf_counter()
        for node in tree:
            if node.weight > PAPER_LIMIT:
                raise AssertionError("infeasible")
        algo._partition(tree, PAPER_LIMIT)
        return perf_counter() - start

    def wrapped() -> float:
        start = perf_counter()
        algo.partition(tree, PAPER_LIMIT, check=False)
        return perf_counter() - start

    telemetry.disable()
    bare_times, wrapped_times = [], []
    bare()  # warm caches on both paths before measuring
    wrapped()
    for _ in range(repeats):
        bare_times.append(bare())
        wrapped_times.append(wrapped())
    base = min(bare_times)
    instr = min(wrapped_times)
    return {
        "document": spec.name,
        "nodes": len(tree),
        "repeats": repeats,
        "bare_seconds": base,
        "instrumented_seconds": instr,
        "overhead_fraction": (instr - base) / base if base else 0.0,
    }


def bench_fastpath(quick: bool) -> dict:
    """Fast-path kernels vs reference partitioners (min of repeats).

    The shape cache is cleared before every fastpath repeat, so the
    reported speedup is the *cold-cache* one — intra-document shape reuse
    only, no carry-over between repeats or rows. Timings are minima over
    interleaved repeats (same rationale as :func:`bench_overhead`).
    """
    from time import perf_counter  # the harness itself may read the clock

    from repro.datasets.random_trees import duplicated_subtree_tree
    from repro.fastpath import clear_default_cache, default_cache

    telemetry.disable()
    repeats = 2 if quick else 3
    scale = 0.1 if quick else 0.25
    copies = 100 if quick else 400
    duplicated = duplicated_subtree_tree(copies, template_size=40, seed=2006)
    workloads = [("duplicated_subtrees", "duplicated", duplicated, 23, ("dhw", "ghdw"))]
    documents = PAPER_DOCUMENTS[:2] if quick else PAPER_DOCUMENTS
    for spec in documents:
        tree = spec.generate(scale=scale, seed=2006)
        workloads.append(("table2", spec.name, tree, PAPER_LIMIT, ("dhw", "ghdw")))
    rows = []
    for workload, document, tree, limit, algorithms in workloads:
        for name in algorithms:
            print(f"[harness]   fastpath {document}/{name} ...", file=sys.stderr)
            reference = get_algorithm(name)
            reference.fastpath = False
            kernel = get_algorithm(name)
            kernel.fastpath = True
            ref_times, fast_times = [], []
            ref_result = fast_result = None
            for _ in range(repeats):
                start = perf_counter()
                ref_result = reference.partition(tree, limit, check=False)
                ref_times.append(perf_counter() - start)
                clear_default_cache()
                start = perf_counter()
                fast_result = kernel.partition(tree, limit, check=False)
                fast_times.append(perf_counter() - start)
            cache = default_cache().stats()
            ref_s, fast_s = min(ref_times), min(fast_times)
            rows.append(
                {
                    "workload": workload,
                    "document": document,
                    "nodes": len(tree),
                    "limit": limit,
                    "algorithm": name,
                    "reference_seconds": ref_s,
                    "fastpath_seconds": fast_s,
                    "speedup": ref_s / fast_s if fast_s else 0.0,
                    "identical": fast_result == ref_result,
                    "cache_hit_ratio": cache["hit_ratio"],
                    "cache_entries": cache["entries"],
                }
            )
    return {"scale": scale, "repeats": repeats, "copies": copies, "rows": rows}


def format_fastpath_rows(scenario: dict) -> str:
    lines = [
        f"{'workload':20s} {'document':18s} {'alg':5s} {'reference':>10s} "
        f"{'fastpath':>10s} {'speedup':>8s} {'hit%':>6s} {'same':>5s}"
    ]
    for row in scenario.get("rows", []):
        lines.append(
            f"{row['workload']:20s} {row['document']:18s} {row['algorithm']:5s} "
            f"{row['reference_seconds']:9.3f}s {row['fastpath_seconds']:9.3f}s "
            f"{row['speedup']:7.2f}x {row['cache_hit_ratio'] * 100:5.1f}% "
            f"{'yes' if row['identical'] else 'NO':>5s}"
        )
    return "\n".join(lines)


def run_benchmarks(quick: bool) -> dict:
    payload: dict = {
        "schema": SCHEMA,
        "quick": quick,
        "environment": telemetry.environment_fingerprint(),
        "scenarios": {},
    }
    runners = {
        "table1_table2": bench_table1_table2,
        "table3": bench_table3,
        "bulkload": bench_bulkload,
        "overhead": bench_overhead,
        "fastpath": bench_fastpath,
    }
    for name in SCENARIOS:
        print(f"[harness] running {name} ...", file=sys.stderr)
        payload["scenarios"][name] = runners[name](quick)
    return payload


def check_baseline(path: Path) -> int:
    """Validate the committed baseline's shape (CI smoke gate)."""
    if not path.exists():
        print(f"[harness] missing baseline {path}", file=sys.stderr)
        return 1
    data = json.loads(path.read_text())
    problems = []
    if data.get("schema") != SCHEMA:
        problems.append(f"schema {data.get('schema')!r} != {SCHEMA!r}")
    for scenario in SCENARIOS:
        if scenario not in data.get("scenarios", {}):
            problems.append(f"scenario {scenario!r} missing")
    overhead = data.get("scenarios", {}).get("overhead", {})
    fraction = overhead.get("overhead_fraction")
    if fraction is None or fraction >= 0.03:
        problems.append(f"overhead_fraction {fraction!r} not < 0.03")
    fastpath = data.get("scenarios", {}).get("fastpath", {})
    if not data.get("quick"):  # floors only bind on full-run baselines
        for row in fastpath.get("rows", []):
            label = f"fastpath[{row['document']}/{row['algorithm']}]"
            if not row.get("identical"):
                problems.append(f"{label} output not identical to reference")
            if row["algorithm"] != "dhw":
                continue
            floor = (
                FASTPATH_DUP_FLOOR
                if row["workload"] == "duplicated_subtrees"
                else FASTPATH_TABLE2_FLOOR
            )
            if row["speedup"] < floor:
                problems.append(
                    f"{label} speedup {row['speedup']:.2f}x < {floor}x floor"
                )
    for problem in problems:
        print(f"[harness] baseline check: {problem}", file=sys.stderr)
    if not problems:
        print(f"[harness] baseline {path.name} OK ({SCHEMA})", file=sys.stderr)
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small scales / few repeats (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"also validate the committed baseline ({BASELINE.name})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the run's JSON here (default: stdout)",
    )
    args = parser.parse_args(argv)
    if args.check:
        status = check_baseline(BASELINE)
        if status:
            return status
    payload = run_benchmarks(quick=args.quick)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        args.output.write_text(text)
        print(f"[harness] wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    overhead = payload["scenarios"]["overhead"]["overhead_fraction"]
    print(f"[harness] wrapper overhead: {overhead * 100:.2f}%", file=sys.stderr)
    print(
        "[harness] fastpath speedups (reference vs kernel):\n"
        + format_fastpath_rows(payload["scenarios"]["fastpath"]),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
