"""Bulkload throughput and the streaming-equals-batch guarantee.

Not a paper table, but the operational quantity Sec. 4 is about: how fast
the main-memory-friendly strategies consume a parse-event stream, and
what the spill threshold costs.
"""

import pytest

from repro.bulkload import BulkLoader, STREAMING_STRATEGIES
from repro.datasets.xmark import xmark_document
from repro.partition import get_algorithm
from repro.xmlio import tree_to_xml

LIMIT = 256


@pytest.fixture(scope="module")
def xml_text():
    return tree_to_xml(xmark_document(scale=0.01, seed=2006))


@pytest.mark.parametrize("algorithm", STREAMING_STRATEGIES)
def bench_streaming_import(benchmark, xml_text, algorithm):
    loader = BulkLoader(algorithm=algorithm, limit=LIMIT)
    result = benchmark(loader.load, xml_text)
    benchmark.extra_info["nodes"] = len(result.tree)
    benchmark.extra_info["partitions"] = result.partitioning.cardinality
    benchmark.extra_info["events_per_node"] = round(result.events / len(result.tree), 2)


@pytest.mark.parametrize("threshold", [None, 4096, 1024])
def bench_spill_overhead(benchmark, xml_text, threshold):
    loader = BulkLoader(algorithm="ekm", limit=LIMIT, spill_threshold=threshold)
    result = benchmark.pedantic(loader.load, args=(xml_text,), rounds=2, iterations=1)
    benchmark.extra_info["partitions"] = result.partitioning.cardinality
    benchmark.extra_info["peak_fraction"] = round(result.peak_resident_fraction, 4)


def bench_streaming_equals_batch(benchmark, xml_text):
    """The correctness contract, timed: one streaming pass equals the
    parse-then-batch pipeline's output exactly."""

    def run():
        loader = BulkLoader(algorithm="ekm", limit=LIMIT)
        result = loader.load(xml_text)
        batch = get_algorithm("ekm").partition(result.tree, LIMIT)
        assert result.partitioning == batch
        return result.partitioning.cardinality

    cardinality = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["partitions"] = cardinality
