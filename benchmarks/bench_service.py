#!/usr/bin/env python
"""Service load generator: mixed ingest/query traffic, one JSON baseline.

Boots the :mod:`repro.service` document store in-process and drives it
with thousands of concurrent HTTP requests from an asyncio fan-out —
``--concurrency`` worker coroutines, each on its own keep-alive
connection, each following a schedule derived deterministically from
``--seed``. Every worker issues mostly queries against a pool of shared
documents plus one ingest of its own document (queried once after) and
one health probe, so ingest write-locks and query read-locks contend the
whole run.

The scenario records the three properties the hammer test also checks,
measured at benchmark scale:

* **zero failed requests** — every response is a 2xx (``failed == 0``);
* **no corrupt reads** — every query measurement equals the reference
  run byte for byte (``corrupt_reads == 0``);
* **lock-exact telemetry** — the server's counters equal the client-side
  tallies exactly (``telemetry_exact``).

The *base* run keeps tracing and heat off — byte-comparable with the
pre-tracing baselines and the proof that the off switch costs nothing.
A second **traced** run (same seed, same schedule, fresh registry)
re-drives the identical load with request tracing and head sampling on,
stamping a unique ``X-Request-Id`` per request (heat accounting stays
off: its cost scales with a query's navigation hops, not its requests —
a profiling-window feature measured in ``docs/TELEMETRY.md``). After
the fan-out, every request the deterministic sampler selected is
resolved through ``GET /debug/traces/{id}`` and its span tree checked:
exactly one parent-less root, every span carrying the request's trace
id, and each query request contributing exactly one engine span. The
scenario's ``tracing`` block records the resolution tallies and the
wall-clock overhead fraction versus the base run (gated < 3% by
:mod:`benchmarks.compare` on full-run baselines). Wall-clock on a
saturated fan-out is noisy, so each mode runs ``--reps`` times and the
minimum is the measurement.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--check]
        [--seed N] [--concurrency N] [--per-worker N]
        [--sample-rate N] [--reps N] [--output BENCH.json]

``--quick`` shrinks the fan-out for CI smoke; ``--check`` first
validates the committed ``BENCH_PR9.json`` with the same gate
:mod:`benchmarks.compare` applies (a full-run baseline must have
sustained >= 1000 requests with all three properties holding, plus the
tracing-resolution invariants). The baseline-compare workflow mirrors
``harness.py``: commit a full run as ``BENCH_PRn.json`` and diff it
against its predecessor with ``compare.py`` whenever the scenario
exists on both sides.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import zlib
from pathlib import Path
from time import perf_counter  # the load generator itself may read the clock
from urllib.parse import quote

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import telemetry  # noqa: E402
from repro.service.app import ServiceConfig, ServiceThread  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

SCHEMA = "repro-bench/1"
BASELINE = REPO_ROOT / "BENCH_PR9.json"

#: measurement keys that must be identical across every query response
#: touching documents with identical content (the corrupt-read check)
MEASUREMENT_KEYS = (
    "results",
    "intra_steps",
    "cross_steps",
    "cross_ratio",
    "page_faults",
    "cost",
)
SHARED_DOCUMENTS = 5
QUERY_XPATH = "//keyword"


def corpus_xml(persons: int) -> str:
    """A synthetic people listing; every person carries one keyword."""
    body = "".join(
        f"<person id='p{i}'><name>person {i}</name>"
        f"<interest><keyword>k{i % 7}</keyword></interest></person>"
        for i in range(persons)
    )
    return f"<site><people>{body}</people></site>"


class WorkerConnection:
    """A minimal keep-alive HTTP/1.1 client for one worker coroutine."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, port: int) -> "WorkerConnection":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        request_id: str = "",
    ) -> tuple[int, dict]:
        head = f"{method} {target} HTTP/1.1\r\nhost: bench\r\n"
        if request_id:
            head += f"x-request-id: {request_id}\r\n"
        if body:
            head += f"content-length: {len(body)}\r\n"
        self.writer.write(head.encode("latin-1") + b"\r\n" + body)
        await self.writer.drain()
        blob = await self.reader.readuntil(b"\r\n\r\n")
        lines = blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await self.reader.readexactly(length)
        return status, json.loads(payload) if payload else {}

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except OSError:
            pass


def worker_schedule(rng: random.Random, per_worker: int) -> list[tuple[str, int]]:
    """``per_worker`` ops: shared queries + own ingest/query + a probe.

    The op *mix* is fixed (counts must aggregate deterministically across
    workers); only the positions and shared-document choices vary by
    seed. The own-document query always follows its ingest.
    """
    ops: list[tuple[str, int]] = [
        ("query", rng.randrange(SHARED_DOCUMENTS)) for _ in range(per_worker - 3)
    ]
    ingest_at = rng.randrange(len(ops) + 1)
    ops[ingest_at:ingest_at] = [("ingest", 0), ("own-query", 0)]
    ops.insert(rng.randrange(len(ops) + 1), ("healthz", 0))
    return ops


async def run_worker(
    index: int,
    port: int,
    xml: bytes,
    per_worker: int,
    seed: int,
    tallies: dict,
    latencies: list,
    failures: list,
    sent_ids: list | None = None,
) -> None:
    rng = random.Random(seed * 1_000_003 + index)
    conn = await WorkerConnection.open(port)
    try:
        for step, (op, pick) in enumerate(worker_schedule(rng, per_worker)):
            if op == "ingest":
                method, target, body = "POST", f"/documents?id=own-{index}", xml
            elif op == "healthz":
                method, target, body = "GET", "/healthz", b""
            else:
                doc = f"own-{index}" if op == "own-query" else f"shared-{pick}"
                method, body = "GET", b""
                target = f"/documents/{doc}/query?xpath={quote(QUERY_XPATH)}"
            request_id = ""
            if sent_ids is not None:
                # traced run: one resolvable trace id per request
                request_id = f"bench-{index:03d}-{step:03d}"
                kind = "query" if op in ("query", "own-query") else op
                sent_ids.append((request_id, kind))
            start = perf_counter()
            status, payload = await conn.request(
                method, target, body, request_id=request_id
            )
            latencies.append(perf_counter() - start)
            kind = "query" if op == "own-query" else op
            tallies[kind] += 1
            if status >= 400:
                failures.append(f"worker {index}: {op} -> {status}: {payload}")
            elif op in ("query", "own-query"):
                measured = tuple(payload[key] for key in MEASUREMENT_KEYS)
                if measured != tallies["reference"]:
                    tallies["corrupt_reads"] += 1
    finally:
        await conn.close()


def should_sample(trace_id: str, sample_rate: int, trace_seed: int) -> bool:
    """Client-side mirror of ``Tracer.should_sample`` (same formula, so
    the bench can enumerate exactly the requests the server retained)."""
    if sample_rate <= 0:
        return False
    if sample_rate == 1:
        return True
    digest = zlib.crc32(f"{trace_seed}:{trace_id}".encode("utf-8"))
    return digest % sample_rate == 0


def resolve_traces(
    port: int, sent_ids: list, sample_rate: int, trace_seed: int
) -> dict:
    """Resolve every sampled request's span tree via ``/debug/traces/{id}``.

    Returns the tallies for the scenario's ``tracing`` block; any
    unresolvable sampled id or malformed span tree counts as
    ``unresolved`` (gated to zero by :mod:`benchmarks.compare`).
    """
    expected = [
        (request_id, kind)
        for request_id, kind in sent_ids
        if should_sample(request_id, sample_rate, trace_seed)
    ]
    resolved = joined_trees = engine_spans = 0
    problems: list[str] = []
    with ServiceClient(port=port, timeout=60) as client:
        stats = client.debug_traces()["tracing"]
        for request_id, kind in expected:
            try:
                trace = client.debug_trace(request_id)
            except Exception as exc:
                problems.append(f"{request_id}: {exc}")
                continue
            resolved += 1
            spans = trace["spans"]
            roots = [s for s in spans if s.get("parent_id") is None]
            aligned = all(s.get("trace_id") == request_id for s in spans)
            engine = sum(1 for s in spans if s["name"] == "query.run")
            engine_spans += engine
            if (
                len(roots) == 1
                and aligned
                and (engine == 1 if kind == "query" else engine == 0)
            ):
                joined_trees += 1
            else:
                problems.append(
                    f"{request_id}: roots={len(roots)} aligned={aligned} "
                    f"engine={engine} kind={kind}"
                )
    return {
        "sample_rate": sample_rate,
        "sampled_requests": len(expected),
        "resolved": resolved,
        "unresolved": len(expected) - joined_trees,
        "joined_trees": joined_trees,
        "engine_spans": engine_spans,
        "tracer_stats": stats,
        "problems": problems[:10],
    }


def run_load(
    quick: bool,
    seed: int,
    concurrency: int,
    per_worker: int,
    traced: bool = False,
    sample_rate: int = 4,
) -> dict:
    xml = corpus_xml(40 if quick else 120).encode()
    if traced:
        config = ServiceConfig(
            port=0,
            max_concurrency=concurrency,
            request_timeout=60.0,
            tracing=True,
            trace_sample_rate=sample_rate,
            # hold every sampled trace: the resolution pass must never
            # lose one to ring-buffer eviction
            trace_buffer=concurrency * per_worker + 64,
            trace_seed=seed,
            # the gate is about *tracing*: heat accounting hooks every
            # navigation hop and costs work proportional to the hops a
            # query takes (a profiling-window feature, measured and
            # documented in docs/TELEMETRY.md), so it stays off here
            heat=False,
        )
    else:
        # the PR 7-comparable configuration, and the no-op-fast-path
        # proof: no tracer, no heat sink, nothing on the hot path
        config = ServiceConfig(
            port=0,
            max_concurrency=concurrency,
            request_timeout=60.0,
            tracing=False,
            heat=False,
        )
    sent_ids: list | None = [] if traced else None
    # each run on its own registry: the server wires its sinks (tracer,
    # heat) into the current registry at boot, and the lock-exact
    # telemetry check needs counters that start at zero
    previous_registry = telemetry.set_registry(telemetry.MetricRegistry())
    try:
        return _drive(
            config, xml, seed, concurrency, per_worker, sent_ids, sample_rate
        )
    finally:
        telemetry.set_registry(previous_registry)


def _drive(
    config: ServiceConfig,
    xml: bytes,
    seed: int,
    concurrency: int,
    per_worker: int,
    sent_ids: list | None,
    sample_rate: int,
) -> dict:
    with ServiceThread(config) as server:
        with ServiceClient(port=server.port, timeout=60) as setup:
            for doc in range(SHARED_DOCUMENTS):
                setup.ingest(xml.decode(), doc_id=f"shared-{doc}")
            reference_run = setup.query("shared-0", QUERY_XPATH)
        reference = tuple(reference_run[key] for key in MEASUREMENT_KEYS)

        tallies = {
            "query": 0,
            "ingest": 0,
            "healthz": 0,
            "corrupt_reads": 0,
            "reference": reference,
        }
        latencies: list[float] = []
        failures: list[str] = []

        async def fan_out() -> float:
            start = perf_counter()
            await asyncio.gather(
                *(
                    run_worker(
                        index,
                        server.port,
                        xml,
                        per_worker,
                        seed,
                        tallies,
                        latencies,
                        failures,
                        sent_ids,
                    )
                    for index in range(concurrency)
                )
            )
            return perf_counter() - start

        seconds = asyncio.run(fan_out())

        with ServiceClient(port=server.port, timeout=60) as check:
            snapshot = check.metrics_json()

        tracing = None
        if sent_ids is not None:
            tracing = resolve_traces(
                server.port, sent_ids, sample_rate, config.trace_seed
            )

    counters = snapshot["counters"]
    requests = concurrency * per_worker
    setup_requests = SHARED_DOCUMENTS + 1  # shared ingests + reference query
    expected = {
        "requests": requests + setup_requests + 1,  # + the metrics scrape
        # the scrape snapshots counters before its own 2xx is recorded
        "responses_2xx": requests + setup_requests,
        "queries": tallies["query"] + 1,
        "ingested": tallies["ingest"] + SHARED_DOCUMENTS,
    }
    observed = {
        "requests": counters.get("service.requests", 0),
        "responses_2xx": counters.get("service.responses.2xx", 0),
        "queries": counters.get("service.queries", 0),
        "ingested": counters.get("service.documents.ingested", 0),
    }
    ordered = sorted(latencies)

    def pct(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    scenario = {
        "seed": seed,
        "concurrency": concurrency,
        "requests": requests,
        "shared_documents": SHARED_DOCUMENTS,
        "mix": {
            "query": tallies["query"],
            "ingest": tallies["ingest"],
            "healthz": tallies["healthz"],
        },
        "failed": len(failures),
        "failures": failures[:10],
        "corrupt_reads": tallies["corrupt_reads"],
        "telemetry_exact": observed == expected,
        "telemetry": observed,
        "query_reference": {
            key: reference_run[key] for key in MEASUREMENT_KEYS
        },
        "seconds": seconds,
        "requests_per_second": requests / seconds if seconds else 0.0,
        "latency": {
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
            "max": ordered[-1],
        },
    }
    if tracing is not None:
        scenario["tracing"] = tracing
    return scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fan-out (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"also validate the committed baseline ({BASELINE.name})",
    )
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument(
        "--concurrency", type=int, default=None, help="worker connections"
    )
    parser.add_argument(
        "--per-worker", type=int, default=None, help="requests per worker"
    )
    parser.add_argument(
        "--sample-rate",
        type=int,
        default=4,
        help="head-sampling rate for the traced run (1 = every request)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="repetitions per mode, min wall-clock wins "
        "(default: 3, or 1 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the run's JSON here (default: stdout)",
    )
    args = parser.parse_args(argv)
    if args.check:
        bench_dir = str(REPO_ROOT / "benchmarks")
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        from compare import check_service_baseline

        status = check_service_baseline(BASELINE)
        if status:
            return status
    concurrency = args.concurrency or (16 if args.quick else 64)
    per_worker = args.per_worker or (25 if args.quick else 32)
    print(
        f"[bench-service] {concurrency} workers x {per_worker} requests ...",
        file=sys.stderr,
    )
    reps = args.reps or (1 if args.quick else 3)
    # wall-clock on a saturated fan-out is one-sided noisy (scheduler
    # interference only ever adds time), so each mode runs ``reps``
    # times interleaved and its *minimum* is the measurement — the only
    # estimator stable enough for a 3% overhead gate
    base_runs: list[dict] = []
    traced_runs: list[dict] = []
    for rep in range(reps):
        print(f"[bench-service] rep {rep + 1}/{reps}: base ...", file=sys.stderr)
        base_runs.append(run_load(args.quick, args.seed, concurrency, per_worker))
        print(
            f"[bench-service] rep {rep + 1}/{reps}: traced "
            f"(sample rate {args.sample_rate}) ...",
            file=sys.stderr,
        )
        traced_runs.append(
            run_load(
                args.quick,
                args.seed,
                concurrency,
                per_worker,
                traced=True,
                sample_rate=args.sample_rate,
            )
        )
    scenario = min(base_runs, key=lambda run: run["seconds"])
    traced = min(traced_runs, key=lambda run: run["seconds"])
    tracing = dict(traced["tracing"])
    tracing["reps"] = reps
    tracing["traced_seconds"] = traced["seconds"]
    tracing["overhead_fraction"] = (
        (traced["seconds"] - scenario["seconds"]) / scenario["seconds"]
        if scenario["seconds"]
        else 0.0
    )
    # one committed scenario: the base (PR 7-comparable) numbers, with
    # the traced run folded in as its ``tracing`` block
    scenario["tracing"] = tracing
    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "environment": telemetry.environment_fingerprint(),
        "scenarios": {"service": scenario},
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        args.output.write_text(text)
        print(f"[bench-service] wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    print(
        f"[bench-service] {scenario['requests']} requests in "
        f"{scenario['seconds']:.2f}s "
        f"({scenario['requests_per_second']:.0f} req/s), "
        f"failed={scenario['failed']} "
        f"corrupt_reads={scenario['corrupt_reads']} "
        f"telemetry_exact={scenario['telemetry_exact']} "
        f"p99={scenario['latency']['p99'] * 1000:.1f}ms",
        file=sys.stderr,
    )
    print(
        f"[bench-service] tracing: {tracing['sampled_requests']} sampled, "
        f"{tracing['joined_trees']} joined trees, "
        f"{tracing['engine_spans']} engine spans, "
        f"overhead {tracing['overhead_fraction'] * 100:+.1f}%",
        file=sys.stderr,
    )
    problems = []
    labelled = [("", run) for run in base_runs]
    labelled += [("traced ", run) for run in traced_runs]
    for label, run in labelled:
        if run["failed"]:
            problems.append(f"{run['failed']} {label}failed request(s)")
        if run["corrupt_reads"]:
            problems.append(f"{run['corrupt_reads']} {label}corrupt read(s)")
        if not run["telemetry_exact"]:
            problems.append(
                f"{label}telemetry drift (counters != client tallies)"
            )
    for run in traced_runs:
        if run["tracing"]["unresolved"]:
            problems.append(
                f"{run['tracing']['unresolved']} sampled request(s) did "
                f"not resolve to a joined span tree: "
                f"{run['tracing']['problems']}"
            )
    for problem in problems:
        print(f"[bench-service] FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
