#!/usr/bin/env python
"""Service load generator: mixed ingest/query traffic, one JSON baseline.

Boots the :mod:`repro.service` document store in-process and drives it
with thousands of concurrent HTTP requests from an asyncio fan-out —
``--concurrency`` worker coroutines, each on its own keep-alive
connection, each following a schedule derived deterministically from
``--seed``. Every worker issues mostly queries against a pool of shared
documents plus one ingest of its own document (queried once after) and
one health probe, so ingest write-locks and query read-locks contend the
whole run.

The scenario records the three properties the hammer test also checks,
measured at benchmark scale:

* **zero failed requests** — every response is a 2xx (``failed == 0``);
* **no corrupt reads** — every query measurement equals the reference
  run byte for byte (``corrupt_reads == 0``);
* **lock-exact telemetry** — the server's counters equal the client-side
  tallies exactly (``telemetry_exact``).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--check]
        [--seed N] [--concurrency N] [--per-worker N] [--output BENCH.json]

``--quick`` shrinks the fan-out for CI smoke; ``--check`` first
validates the committed ``BENCH_PR7.json`` with the same gate
:mod:`benchmarks.compare` applies (a full-run baseline must have
sustained >= 1000 requests with all three properties holding). The
baseline-compare workflow mirrors ``harness.py``: commit a full run as
``BENCH_PRn.json`` and diff it against its predecessor with
``compare.py`` whenever the scenario exists on both sides.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from pathlib import Path
from time import perf_counter  # the load generator itself may read the clock
from urllib.parse import quote

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import telemetry  # noqa: E402
from repro.service.app import ServiceConfig, ServiceThread  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

SCHEMA = "repro-bench/1"
BASELINE = REPO_ROOT / "BENCH_PR7.json"

#: measurement keys that must be identical across every query response
#: touching documents with identical content (the corrupt-read check)
MEASUREMENT_KEYS = (
    "results",
    "intra_steps",
    "cross_steps",
    "cross_ratio",
    "page_faults",
    "cost",
)
SHARED_DOCUMENTS = 5
QUERY_XPATH = "//keyword"


def corpus_xml(persons: int) -> str:
    """A synthetic people listing; every person carries one keyword."""
    body = "".join(
        f"<person id='p{i}'><name>person {i}</name>"
        f"<interest><keyword>k{i % 7}</keyword></interest></person>"
        for i in range(persons)
    )
    return f"<site><people>{body}</people></site>"


class WorkerConnection:
    """A minimal keep-alive HTTP/1.1 client for one worker coroutine."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, port: int) -> "WorkerConnection":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict]:
        head = f"{method} {target} HTTP/1.1\r\nhost: bench\r\n"
        if body:
            head += f"content-length: {len(body)}\r\n"
        self.writer.write(head.encode("latin-1") + b"\r\n" + body)
        await self.writer.drain()
        blob = await self.reader.readuntil(b"\r\n\r\n")
        lines = blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await self.reader.readexactly(length)
        return status, json.loads(payload) if payload else {}

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except OSError:
            pass


def worker_schedule(rng: random.Random, per_worker: int) -> list[tuple[str, int]]:
    """``per_worker`` ops: shared queries + own ingest/query + a probe.

    The op *mix* is fixed (counts must aggregate deterministically across
    workers); only the positions and shared-document choices vary by
    seed. The own-document query always follows its ingest.
    """
    ops: list[tuple[str, int]] = [
        ("query", rng.randrange(SHARED_DOCUMENTS)) for _ in range(per_worker - 3)
    ]
    ingest_at = rng.randrange(len(ops) + 1)
    ops[ingest_at:ingest_at] = [("ingest", 0), ("own-query", 0)]
    ops.insert(rng.randrange(len(ops) + 1), ("healthz", 0))
    return ops


async def run_worker(
    index: int,
    port: int,
    xml: bytes,
    per_worker: int,
    seed: int,
    tallies: dict,
    latencies: list,
    failures: list,
) -> None:
    rng = random.Random(seed * 1_000_003 + index)
    conn = await WorkerConnection.open(port)
    try:
        for op, pick in worker_schedule(rng, per_worker):
            if op == "ingest":
                method, target, body = "POST", f"/documents?id=own-{index}", xml
            elif op == "healthz":
                method, target, body = "GET", "/healthz", b""
            else:
                doc = f"own-{index}" if op == "own-query" else f"shared-{pick}"
                method, body = "GET", b""
                target = f"/documents/{doc}/query?xpath={quote(QUERY_XPATH)}"
            start = perf_counter()
            status, payload = await conn.request(method, target, body)
            latencies.append(perf_counter() - start)
            kind = "query" if op == "own-query" else op
            tallies[kind] += 1
            if status >= 400:
                failures.append(f"worker {index}: {op} -> {status}: {payload}")
            elif op in ("query", "own-query"):
                measured = tuple(payload[key] for key in MEASUREMENT_KEYS)
                if measured != tallies["reference"]:
                    tallies["corrupt_reads"] += 1
    finally:
        await conn.close()


def run_load(quick: bool, seed: int, concurrency: int, per_worker: int) -> dict:
    xml = corpus_xml(40 if quick else 120).encode()
    config = ServiceConfig(port=0, max_concurrency=concurrency, request_timeout=60.0)
    with ServiceThread(config) as server:
        with ServiceClient(port=server.port, timeout=60) as setup:
            for doc in range(SHARED_DOCUMENTS):
                setup.ingest(xml.decode(), doc_id=f"shared-{doc}")
            reference_run = setup.query("shared-0", QUERY_XPATH)
        reference = tuple(reference_run[key] for key in MEASUREMENT_KEYS)

        tallies = {
            "query": 0,
            "ingest": 0,
            "healthz": 0,
            "corrupt_reads": 0,
            "reference": reference,
        }
        latencies: list[float] = []
        failures: list[str] = []

        async def fan_out() -> float:
            start = perf_counter()
            await asyncio.gather(
                *(
                    run_worker(
                        index,
                        server.port,
                        xml,
                        per_worker,
                        seed,
                        tallies,
                        latencies,
                        failures,
                    )
                    for index in range(concurrency)
                )
            )
            return perf_counter() - start

        seconds = asyncio.run(fan_out())

        with ServiceClient(port=server.port, timeout=60) as check:
            snapshot = check.metrics_json()

    counters = snapshot["counters"]
    requests = concurrency * per_worker
    setup_requests = SHARED_DOCUMENTS + 1  # shared ingests + reference query
    expected = {
        "requests": requests + setup_requests + 1,  # + the metrics scrape
        # the scrape snapshots counters before its own 2xx is recorded
        "responses_2xx": requests + setup_requests,
        "queries": tallies["query"] + 1,
        "ingested": tallies["ingest"] + SHARED_DOCUMENTS,
    }
    observed = {
        "requests": counters.get("service.requests", 0),
        "responses_2xx": counters.get("service.responses.2xx", 0),
        "queries": counters.get("service.queries", 0),
        "ingested": counters.get("service.documents.ingested", 0),
    }
    ordered = sorted(latencies)

    def pct(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    return {
        "seed": seed,
        "concurrency": concurrency,
        "requests": requests,
        "shared_documents": SHARED_DOCUMENTS,
        "mix": {
            "query": tallies["query"],
            "ingest": tallies["ingest"],
            "healthz": tallies["healthz"],
        },
        "failed": len(failures),
        "failures": failures[:10],
        "corrupt_reads": tallies["corrupt_reads"],
        "telemetry_exact": observed == expected,
        "telemetry": observed,
        "query_reference": {
            key: reference_run[key] for key in MEASUREMENT_KEYS
        },
        "seconds": seconds,
        "requests_per_second": requests / seconds if seconds else 0.0,
        "latency": {
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
            "max": ordered[-1],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fan-out (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"also validate the committed baseline ({BASELINE.name})",
    )
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument(
        "--concurrency", type=int, default=None, help="worker connections"
    )
    parser.add_argument(
        "--per-worker", type=int, default=None, help="requests per worker"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the run's JSON here (default: stdout)",
    )
    args = parser.parse_args(argv)
    if args.check:
        bench_dir = str(REPO_ROOT / "benchmarks")
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        from compare import check_service_baseline

        status = check_service_baseline(BASELINE)
        if status:
            return status
    concurrency = args.concurrency or (16 if args.quick else 64)
    per_worker = args.per_worker or (25 if args.quick else 32)
    print(
        f"[bench-service] {concurrency} workers x {per_worker} requests ...",
        file=sys.stderr,
    )
    scenario = run_load(args.quick, args.seed, concurrency, per_worker)
    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "environment": telemetry.environment_fingerprint(),
        "scenarios": {"service": scenario},
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        args.output.write_text(text)
        print(f"[bench-service] wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    print(
        f"[bench-service] {scenario['requests']} requests in "
        f"{scenario['seconds']:.2f}s "
        f"({scenario['requests_per_second']:.0f} req/s), "
        f"failed={scenario['failed']} "
        f"corrupt_reads={scenario['corrupt_reads']} "
        f"telemetry_exact={scenario['telemetry_exact']} "
        f"p99={scenario['latency']['p99'] * 1000:.1f}ms",
        file=sys.stderr,
    )
    problems = []
    if scenario["failed"]:
        problems.append(f"{scenario['failed']} failed request(s)")
    if scenario["corrupt_reads"]:
        problems.append(f"{scenario['corrupt_reads']} corrupt read(s)")
    if not scenario["telemetry_exact"]:
        problems.append("telemetry drift (counters != client tallies)")
    for problem in problems:
        print(f"[bench-service] FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
