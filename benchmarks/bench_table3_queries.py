"""Table 3 — XPathMark query performance on KM vs EKM layouts.

One benchmark per (query, layout) pair times the navigational evaluation
against the warmed store; ``extra_info`` carries the simulated cost and
the paper's measured seconds. ``bench_table3_shape`` asserts the paper's
two headline observations.

The ``bench_query_window`` group re-times every query through the
structural index (:mod:`repro.index`): windows answer the descendant/
ancestor spines from sorted pre/post columns instead of navigating, so
``window_steps`` replaces most navigation charges and the record-window
overlap prunes partitions. ``bench_window_shape`` asserts the two
invariants the index must keep: bit-identical results and a simulated
cost never above navigation's.
"""

import pytest

from repro.datasets.xmark import xmark_document
from repro.partition import get_algorithm
from repro.query import XPATHMARK_QUERIES, evaluate, run_query
from repro.storage import DocumentStore

LIMIT = 256
SCALE = 0.01


@pytest.fixture(scope="module")
def stores():
    tree = xmark_document(scale=SCALE, seed=2006)
    out = {}
    for name in ("km", "ekm"):
        partitioning = get_algorithm(name).partition(tree, LIMIT)
        store = DocumentStore.build(tree, partitioning)
        store.warm_up()
        out[name] = store
    return out


@pytest.mark.parametrize("query", XPATHMARK_QUERIES, ids=lambda q: q.qid)
@pytest.mark.parametrize("layout", ["km", "ekm"])
def bench_query(benchmark, stores, query, layout):
    store = stores[layout]
    run = benchmark(run_query, store, query.xpath)
    benchmark.extra_info["cost_units"] = run.cost
    benchmark.extra_info["cross_steps"] = run.cross_steps
    benchmark.extra_info["results"] = run.result_count
    benchmark.extra_info["paper_seconds"] = (
        query.paper_km_seconds if layout == "km" else query.paper_ekm_seconds
    )


def bench_table3_shape(benchmark, stores):
    """EKM beats KM on every query; KM occupies no more disk space."""

    def run():
        return {
            q.qid: (
                run_query(stores["km"], q.xpath).cost,
                run_query(stores["ekm"], q.xpath).cost,
            )
            for q in XPATHMARK_QUERIES
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    for qid, (km_cost, ekm_cost) in costs.items():
        assert ekm_cost < km_cost, qid
    assert (
        stores["km"].space_report().page_bytes
        <= stores["ekm"].space_report().page_bytes
    )
    benchmark.extra_info["speedups"] = {
        qid: round(km / ekm, 2) for qid, (km, ekm) in costs.items()
    }


@pytest.fixture(scope="module")
def indexed_store(stores):
    """The EKM store with its structural index built (windows active)."""
    store = stores["ekm"]
    store.build_index()
    yield store
    store.structural_index = None


@pytest.mark.parametrize("query", XPATHMARK_QUERIES, ids=lambda q: q.qid)
def bench_query_window(benchmark, indexed_store, query):
    run = benchmark(run_query, indexed_store, query.xpath)
    benchmark.extra_info["cost_units"] = run.cost
    benchmark.extra_info["results"] = run.result_count
    benchmark.extra_info["window_steps"] = run.window_steps
    benchmark.extra_info["partitions_pruned"] = run.partitions_pruned


def bench_window_shape(benchmark, stores, indexed_store):
    """Windows return navigation's exact ids at no higher simulated cost."""

    def run():
        out = {}
        for q in XPATHMARK_QUERIES:
            indexed_store.structural_index = None
            nav_ids = [n.node_id for n in evaluate(indexed_store, q.xpath)]
            nav_cost = run_query(indexed_store, q.xpath).cost
            indexed_store.build_index()
            win_ids = [n.node_id for n in evaluate(indexed_store, q.xpath)]
            win = run_query(indexed_store, q.xpath)
            out[q.qid] = (nav_ids, nav_cost, win_ids, win.cost, win.window_steps)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    windowed = 0
    for qid, (nav_ids, nav_cost, win_ids, win_cost, window_steps) in rows.items():
        assert win_ids == nav_ids, qid
        assert win_cost <= nav_cost, qid
        windowed += window_steps
    assert windowed > 0  # at least one query actually took the window path
    benchmark.extra_info["cost_ratios"] = {
        qid: round(win / nav, 3) if nav else 0.0
        for qid, (_ids, nav, _wids, win, _steps) in rows.items()
    }
