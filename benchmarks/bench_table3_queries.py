"""Table 3 — XPathMark query performance on KM vs EKM layouts.

One benchmark per (query, layout) pair times the navigational evaluation
against the warmed store; ``extra_info`` carries the simulated cost and
the paper's measured seconds. ``bench_table3_shape`` asserts the paper's
two headline observations.
"""

import pytest

from repro.datasets.xmark import xmark_document
from repro.partition import get_algorithm
from repro.query import XPATHMARK_QUERIES, run_query
from repro.storage import DocumentStore

LIMIT = 256
SCALE = 0.01


@pytest.fixture(scope="module")
def stores():
    tree = xmark_document(scale=SCALE, seed=2006)
    out = {}
    for name in ("km", "ekm"):
        partitioning = get_algorithm(name).partition(tree, LIMIT)
        store = DocumentStore.build(tree, partitioning)
        store.warm_up()
        out[name] = store
    return out


@pytest.mark.parametrize("query", XPATHMARK_QUERIES, ids=lambda q: q.qid)
@pytest.mark.parametrize("layout", ["km", "ekm"])
def bench_query(benchmark, stores, query, layout):
    store = stores[layout]
    run = benchmark(run_query, store, query.xpath)
    benchmark.extra_info["cost_units"] = run.cost
    benchmark.extra_info["cross_steps"] = run.cross_steps
    benchmark.extra_info["results"] = run.result_count
    benchmark.extra_info["paper_seconds"] = (
        query.paper_km_seconds if layout == "km" else query.paper_ekm_seconds
    )


def bench_table3_shape(benchmark, stores):
    """EKM beats KM on every query; KM occupies no more disk space."""

    def run():
        return {
            q.qid: (
                run_query(stores["km"], q.xpath).cost,
                run_query(stores["ekm"], q.xpath).cost,
            )
            for q in XPATHMARK_QUERIES
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    for qid, (km_cost, ekm_cost) in costs.items():
        assert ekm_cost < km_cost, qid
    assert (
        stores["km"].space_report().page_bytes
        <= stores["ekm"].space_report().page_bytes
    )
    benchmark.extra_info["speedups"] = {
        qid: round(km / ekm, 2) for qid, (km, ekm) in costs.items()
    }
