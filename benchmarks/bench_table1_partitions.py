"""Table 1 — number of generated partitions per document × algorithm.

Each benchmark times one algorithm on one corpus document and records
the partition count (the actual Table 1 payload) in ``extra_info``,
together with the paper's reference value for the full-size document.
Table 1's qualitative claims are asserted outright.
"""

import pytest

from repro.datasets.registry import PAPER_DOCUMENTS
from repro.partition import evaluate_partitioning, get_algorithm
from repro.partition.binpack import capacity_lower_bound

LIMIT = 256
HEURISTICS = ("ghdw", "ekm", "rs", "dfs", "km", "bfs")
DOCUMENTS = [spec.name for spec in PAPER_DOCUMENTS]
_SPEC = {spec.name: spec for spec in PAPER_DOCUMENTS}


@pytest.mark.parametrize("document", DOCUMENTS)
@pytest.mark.parametrize("algorithm", HEURISTICS)
def bench_partition_count(benchmark, bench_corpus, document, algorithm):
    tree = bench_corpus[document]
    partitioner = get_algorithm(algorithm)
    partitioning = benchmark(partitioner.partition, tree, LIMIT)
    report = evaluate_partitioning(tree, partitioning, LIMIT)
    assert report.feasible
    benchmark.extra_info["partitions"] = report.cardinality
    benchmark.extra_info["weight_over_k"] = capacity_lower_bound(tree, LIMIT)
    benchmark.extra_info["paper_partitions"] = _SPEC[document].paper_partitions[
        algorithm
    ]


@pytest.mark.parametrize("document", DOCUMENTS)
def bench_partition_count_dhw(benchmark, dhw_corpus, document):
    """The optimal algorithm, on the reduced corpus (O(n·K³) in Python)."""
    tree = dhw_corpus[document]
    partitioner = get_algorithm("dhw")
    partitioning = benchmark.pedantic(
        partitioner.partition, args=(tree, LIMIT), rounds=1, iterations=1
    )
    report = evaluate_partitioning(tree, partitioning, LIMIT)
    assert report.feasible
    benchmark.extra_info["partitions"] = report.cardinality
    benchmark.extra_info["paper_partitions"] = _SPEC[document].paper_partitions["dhw"]


@pytest.mark.parametrize("document", DOCUMENTS)
def bench_table1_shape(benchmark, dhw_corpus, document):
    """Assert the paper's Table 1 orderings on every document:
    DHW <= GHDW, sibling algorithms << KM, and KM/BFS trail the field."""

    tree = dhw_corpus[document]

    def run():
        return {
            name: get_algorithm(name).partition(tree, LIMIT).cardinality
            for name in ("dhw", "ghdw", "ekm", "rs", "km", "bfs")
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts["dhw"] <= counts["ghdw"]
    assert counts["dhw"] <= min(counts["ekm"], counts["rs"])
    for sibling in ("dhw", "ghdw", "ekm", "rs"):
        assert counts[sibling] < counts["km"]
        assert counts[sibling] < counts["bfs"]
    benchmark.extra_info.update(counts)
