#!/usr/bin/env python
"""Recovery scenario: WAL overhead, redo timing, and the crash-matrix gate.

Runs the same deterministic update workload twice — once on a bare
store, once with a write-ahead log attached — and reports the logging
overhead as a fraction of the bare run (best-of-``--repeats`` on both
sides, so scheduler noise cancels instead of accumulating). The two
runs must also end byte-identical (``identical_bytes``): attaching the
log may cost time but must never change what lands on the pages.

Then it measures what the log buys: the last batch is killed right
after its group commit (``updates.flush`` fault, no page touched), and
cold recovery (:func:`repro.recovery.recover_store`) must rebuild the
post-flush store from page images + log alone (``recovered_identical``)
— timed as ``recovery.seconds``. Finally the chaos crash-matrix runs a
smoke slice and every cell must pass.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--quick] [--check]
        [--seed N] [--repeats N] [--output BENCH.json]

``--check`` first validates the committed ``BENCH_PR8.json`` with the
same gate :mod:`benchmarks.compare` applies. The overhead budget
(``compare.WAL_OVERHEAD_BUDGET``, < 10%) is enforced on full-run
baselines; quick runs flush batches too small for the per-commit fsync
floor to amortize, so — like the service request floor and the fastpath
speedup floors — the budget does not gate them.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import tempfile
from pathlib import Path
from time import perf_counter  # the harness itself may read the clock

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import telemetry  # noqa: E402
from repro.bulkload import BulkLoader  # noqa: E402
from repro.datasets import xmark_document  # noqa: E402
from repro.errors import InjectedFaultError  # noqa: E402
from repro.faults import FaultPlan, FaultRule, active  # noqa: E402
from repro.faults.matrix import (  # noqa: E402
    _apply_batch,
    _surviving_pages,
    _update_script,
    run_update_crash_matrix,
    store_fingerprint,
)
from repro.recovery import WriteAheadLog, recover_store  # noqa: E402
from repro.storage import DocumentStore, StorageConfig  # noqa: E402
from repro.xmlio.serialize import tree_to_xml  # noqa: E402

SCHEMA = "repro-bench/1"
BASELINE = REPO_ROOT / "BENCH_PR8.json"
LIMIT = 64


def _fresh_store(base, config: StorageConfig) -> DocumentStore:
    return DocumentStore.build(copy.deepcopy(base.tree), base.partitioning, config)


def _timed_run(base, config, script, wal_path=None):
    """Apply the whole script batch-by-batch; returns (store, seconds).

    Only the updates are timed — store construction and log attachment
    happen before the clock starts, mirroring a warmed-up server.
    """
    store = _fresh_store(base, config)
    wal = None
    if wal_path is not None:
        wal = WriteAheadLog(wal_path).open()
        store.attach_wal(wal)
    start = perf_counter()
    for ops in script:
        _apply_batch(store, ops)
    seconds = perf_counter() - start
    if wal is not None:
        wal.close()
    return store, seconds


def _crash_and_recover(base, config, script, wal_path, final_fingerprint):
    """Kill the last batch after its commit; time the cold recovery."""
    store = _fresh_store(base, config)
    wal = WriteAheadLog(wal_path).open()
    store.attach_wal(wal)
    for ops in script[:-1]:
        _apply_batch(store, ops)
    rule = FaultRule("updates.flush", "raise", hit=1)
    with active(FaultPlan([rule], seed=0)):
        try:
            _apply_batch(store, script[-1])
            raise RuntimeError("crash fault never fired")
        except InjectedFaultError:
            pass
    wal.close()

    pages = _surviving_pages(store)
    start = perf_counter()
    recovered, report = recover_store(pages, wal_path, config)
    seconds = perf_counter() - start
    return {
        "seconds": seconds,
        "records_redone": report.records_redone,
        "replayed_transactions": report.replayed_transactions,
        "recovered_identical": store_fingerprint(recovered) == final_fingerprint,
    }


def run_scenario(quick: bool, seed: int, repeats: int) -> dict:
    scale = 0.004 if quick else 0.01
    batches = 3 if quick else 5
    ops_per_batch = 60 if quick else 120
    source = tree_to_xml(xmark_document(scale=scale, seed=seed))
    base = BulkLoader("ekm", LIMIT).load(source)
    config = StorageConfig(record_limit=LIMIT)
    script = _update_script(base.tree, seed, batches, ops_per_batch)

    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as tmp:
        plain_runs: list[float] = []
        wal_runs: list[float] = []
        plain_store = wal_store = None
        for repeat in range(repeats):
            plain_store, plain_seconds = _timed_run(base, config, script)
            plain_runs.append(plain_seconds)
            wal_store, wal_seconds = _timed_run(
                base, config, script, os.path.join(tmp, f"run-{repeat}.wal")
            )
            wal_runs.append(wal_seconds)
        plain_best = min(plain_runs)
        wal_best = min(wal_runs)
        final_fingerprint = store_fingerprint(plain_store)

        recovery = _crash_and_recover(
            base, config, script, os.path.join(tmp, "crash.wal"), final_fingerprint
        )

    matrix = run_update_crash_matrix(
        limit=LIMIT,
        seed=seed,
        batches=2,
        ops_per_batch=8,
        max_crash_points=2 if quick else 4,
        scale=0.002,
    )

    return {
        "seed": seed,
        "scale": scale,
        "limit": LIMIT,
        "batches": batches,
        "ops_per_batch": ops_per_batch,
        "repeats": repeats,
        "nodes": len(base.tree),
        "plain_seconds": plain_best,
        "wal_seconds": wal_best,
        "overhead_fraction": (
            (wal_best - plain_best) / plain_best if plain_best else 0.0
        ),
        "identical_bytes": store_fingerprint(wal_store) == final_fingerprint,
        "recovery": recovery,
        "crash_matrix": {
            "scenarios": len(matrix.scenarios),
            "passed": matrix.passed,
            "ok": matrix.ok,
            "failures": [s.name for s in matrix.failures()],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload (CI smoke)")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"also validate the committed baseline ({BASELINE.name})",
    )
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed runs per side; best-of wins (default: 3 quick, 5 full)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the run's JSON here (default: stdout)",
    )
    args = parser.parse_args(argv)
    if args.check:
        bench_dir = str(REPO_ROOT / "benchmarks")
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        from compare import check_recovery_baseline

        status = check_recovery_baseline(BASELINE)
        if status:
            return status
    repeats = args.repeats or (3 if args.quick else 5)
    print(f"[bench-recovery] {'quick' if args.quick else 'full'} workload ...", file=sys.stderr)
    scenario = run_scenario(args.quick, args.seed, repeats)
    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "environment": telemetry.environment_fingerprint(),
        "scenarios": {"recovery": scenario},
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        args.output.write_text(text)
        print(f"[bench-recovery] wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    print(
        f"[bench-recovery] plain={scenario['plain_seconds']:.3f}s "
        f"wal={scenario['wal_seconds']:.3f}s "
        f"(overhead {scenario['overhead_fraction'] * 100:+.1f}%), "
        f"recovery={scenario['recovery']['seconds'] * 1000:.1f}ms "
        f"({scenario['recovery']['records_redone']} record(s) redone), "
        f"matrix {scenario['crash_matrix']['passed']}/"
        f"{scenario['crash_matrix']['scenarios']}",
        file=sys.stderr,
    )
    problems = []
    if not scenario["identical_bytes"]:
        problems.append("WAL run diverged from the bare run (identical_bytes)")
    if not scenario["recovery"]["recovered_identical"]:
        problems.append("recovery did not rebuild the post-flush bytes")
    if not scenario["crash_matrix"]["ok"]:
        problems.append(
            f"crash-matrix failures: {scenario['crash_matrix']['failures']}"
        )
    if not args.quick and scenario["overhead_fraction"] >= 0.10:
        problems.append(
            f"WAL overhead {scenario['overhead_fraction'] * 100:.1f}% >= 10% budget"
        )
    for problem in problems:
        print(f"[bench-recovery] FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
