#!/usr/bin/env python
"""Bench regression gate: diff two harness baselines.

::

    python benchmarks/compare.py BENCH_PR2.json BENCH_PR4.json

Compares an *old* committed baseline against a *new* one and exits

* ``0`` — comparable and no regression,
* ``1`` — at least one regression (printed, one line each),
* ``2`` — the files are not comparable (missing, wrong schema, or
  produced by different scenario configurations).

Two metric classes are treated differently:

* **Deterministic metrics** (partition counts, root weights, DP cell
  counts, query costs/result counts, spill/event counts, the service
  load generator's request mix and query measurements) must match
  **exactly** — the corpus generators and algorithms are seeded and
  deterministic, so *any* drift is a behavior change that must be
  explained, not noise. Regenerating the baseline is the explicit way to
  accept one.
* **Wall-clock seconds** are compared with per-scenario relative
  thresholds plus an absolute floor (milliseconds of scheduler jitter on
  a fast scenario should not fail the gate). The telemetry ``overhead``
  scenario is additionally gated absolutely: the new baseline must keep
  the no-op instrumentation cost below ``OVERHEAD_BUDGET`` (the paper
  repo's < 3% acceptance bar).

Improvements never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro-bench/1"

#: relative wall-clock slowdown allowed per scenario (generous: the gate
#: must hold across unrelated machines and noisy CI runners)
TIME_THRESHOLDS = {
    "table1_table2": 0.60,
    "table3": 0.60,
    "bulkload": 0.60,
    "service": 0.60,
    "recovery": 0.60,
    "index": 0.60,
}
#: absolute seconds floor below which timing diffs are ignored entirely
#: (a ~10ms heuristic cell can double under scheduler jitter alone; real
#: regressions on the material cells are far above this)
TIME_FLOOR = 0.010
#: hard ceiling for the disabled-telemetry wrapper overhead fraction
OVERHEAD_BUDGET = 0.03
#: hard ceiling on the sampled-tracing overhead fraction a full-run
#: service baseline may report (quick fan-outs are seconds-scale noise,
#: so they are not gated)
TRACING_OVERHEAD_BUDGET = 0.03
#: fastpath speedup floors a full-run candidate baseline must clear
#: (mirrors harness.check_baseline; quick baselines are not gated)
FASTPATH_DUP_FLOOR = 2.0
FASTPATH_TABLE2_FLOOR = 1.3
#: minimum concurrent mixed requests a full-run service baseline must
#: have sustained (the PR acceptance bar; quick runs are not gated)
SERVICE_REQUEST_FLOOR = 1000
#: hard ceiling on the write-ahead-log overhead fraction a full-run
#: recovery baseline may report (quick runs flush batches too small for
#: the per-commit fsync floor to amortize, so they are not gated)
WAL_OVERHEAD_BUDGET = 0.10
#: minimum window-over-navigation speedup a full-run index baseline must
#: report on every descendant-axis query (quick corpora answer in
#: microseconds either way, so they are not gated)
INDEX_DESCENDANT_FLOOR = 3.0
#: hard ceiling on the batched heat-accounting overhead fraction a
#: full-run index baseline may report on a navigation-bound workload
#: (the per-hop callback this replaced cost ~50%)
HEAT_OVERHEAD_BUDGET = 0.10


class Comparison:
    """Accumulates per-metric verdicts and renders the report."""

    def __init__(self) -> None:
        self.regressions: list[str] = []
        self.notes: list[str] = []

    def exact(self, label: str, old, new) -> None:
        if old != new:
            self.regressions.append(f"{label}: expected {old!r}, got {new!r}")

    def seconds(self, label: str, old: float, new: float, threshold: float) -> None:
        delta = new - old
        if delta <= TIME_FLOOR:
            return
        if old > 0 and delta / old > threshold:
            self.regressions.append(
                f"{label}: {old:.4f}s -> {new:.4f}s "
                f"(+{delta / old * 100:.0f}% > {threshold * 100:.0f}% threshold)"
            )

    def bound(self, label: str, value: float, ceiling: float) -> None:
        if value >= ceiling:
            self.regressions.append(f"{label}: {value:.4f} >= budget {ceiling:.4f}")


class NotComparable(Exception):
    """Not-comparable condition (exit 2, distinct from a regression)."""


def _load(path: Path) -> dict:
    if not path.exists():
        raise NotComparable(f"missing baseline {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise NotComparable(f"{path}: invalid JSON: {exc}")
    if data.get("schema") != SCHEMA:
        raise NotComparable(
            f"{path}: schema {data.get('schema')!r} != expected {SCHEMA!r}"
        )
    return data


def _check_comparable(old: dict, new: dict) -> None:
    if old.get("quick") != new.get("quick"):
        raise NotComparable(
            f"baselines not comparable: quick={old.get('quick')} vs {new.get('quick')}"
        )
    old_sc = set(old.get("scenarios", {}))
    new_sc = set(new.get("scenarios", {}))
    if not old_sc <= new_sc:
        raise NotComparable(f"new baseline is missing scenarios: {sorted(old_sc - new_sc)}")


def compare_table1_table2(cmp: Comparison, old: dict, new: dict) -> None:
    cmp.exact("table1_table2.scale", old.get("scale"), new.get("scale"))
    cmp.exact("table1_table2.limit", old.get("limit"), new.get("limit"))
    new_docs = {d["document"]: d for d in new.get("documents", [])}
    for doc in old.get("documents", []):
        name = doc["document"]
        if name not in new_docs:
            cmp.regressions.append(f"table1_table2: document {name!r} disappeared")
            continue
        nd = new_docs[name]
        prefix = f"table1_table2[{name}]"
        cmp.exact(f"{prefix}.nodes", doc["nodes"], nd["nodes"])
        cmp.exact(f"{prefix}.total_weight", doc["total_weight"], nd["total_weight"])
        for alg, cell in doc.get("algorithms", {}).items():
            ncell = nd.get("algorithms", {}).get(alg)
            if ncell is None:
                cmp.regressions.append(f"{prefix}: algorithm {alg!r} disappeared")
                continue
            cmp.exact(f"{prefix}.{alg}.partitions", cell["partitions"], ncell["partitions"])
            cmp.exact(f"{prefix}.{alg}.root_weight", cell["root_weight"], ncell["root_weight"])
            if "dp_cells" in cell and "dp_cells" in ncell:
                cmp.exact(f"{prefix}.{alg}.dp_cells", cell["dp_cells"], ncell["dp_cells"])
            cmp.seconds(
                f"{prefix}.{alg}.seconds",
                cell["seconds"],
                ncell["seconds"],
                TIME_THRESHOLDS["table1_table2"],
            )


def compare_table3(cmp: Comparison, old: dict, new: dict) -> None:
    cmp.exact("table3.scale", old.get("scale"), new.get("scale"))
    cmp.exact("table3.nodes", old.get("nodes"), new.get("nodes"))
    cmp.exact("table3.partitions", old.get("partitions"), new.get("partitions"))
    for qid, runs in old.get("queries", {}).items():
        nruns = new.get("queries", {}).get(qid, {})
        for alg, run in runs.items():
            nrun = nruns.get(alg)
            if nrun is None:
                cmp.regressions.append(f"table3[{qid}]: layout {alg!r} disappeared")
                continue
            cmp.exact(f"table3[{qid}].{alg}.cost", run["cost"], nrun["cost"])
            cmp.exact(f"table3[{qid}].{alg}.results", run["results"], nrun["results"])


def compare_bulkload(cmp: Comparison, old: dict, new: dict) -> None:
    cmp.exact("bulkload.scale", old.get("scale"), new.get("scale"))
    new_runs = {r["spill_threshold"]: r for r in new.get("runs", [])}
    for run in old.get("runs", []):
        threshold = run["spill_threshold"]
        nrun = new_runs.get(threshold)
        if nrun is None:
            cmp.regressions.append(f"bulkload: threshold {threshold!r} run disappeared")
            continue
        prefix = f"bulkload[threshold={threshold}]"
        for key in ("partitions", "spills", "events", "peak_resident_weight"):
            cmp.exact(f"{prefix}.{key}", run[key], nrun[key])
        cmp.seconds(
            f"{prefix}.seconds",
            run["seconds"],
            nrun["seconds"],
            TIME_THRESHOLDS["bulkload"],
        )


def compare_overhead(cmp: Comparison, old: dict, new: dict) -> None:
    cmp.exact("overhead.nodes", old.get("nodes"), new.get("nodes"))
    cmp.bound("overhead.overhead_fraction", new["overhead_fraction"], OVERHEAD_BUDGET)


def check_fastpath(cmp: Comparison, new: dict, quick: bool) -> None:
    """Absolute gate on the candidate's fastpath scenario.

    Unlike the diff-style comparers this also runs when the *old*
    baseline predates the scenario: kernel/reference identity must always
    hold, and full-run baselines must clear the speedup floors.
    """
    for row in new.get("rows", []):
        label = f"fastpath[{row['document']}/{row['algorithm']}]"
        cmp.exact(f"{label}.identical", True, row.get("identical"))
        if quick or row["algorithm"] != "dhw":
            continue
        floor = (
            FASTPATH_DUP_FLOOR
            if row["workload"] == "duplicated_subtrees"
            else FASTPATH_TABLE2_FLOOR
        )
        if row["speedup"] < floor:
            cmp.regressions.append(
                f"{label}.speedup: {row['speedup']:.2f}x < {floor}x floor"
            )


def compare_service(cmp: Comparison, old: dict, new: dict) -> None:
    """Diff the service load-generator scenario (deterministic + timing)."""
    for key in ("seed", "concurrency", "requests", "shared_documents", "mix"):
        cmp.exact(f"service.{key}", old.get(key), new.get(key))
    if "tracing" in old:
        cmp.exact(
            "service.tracing.sample_rate",
            old["tracing"].get("sample_rate"),
            new.get("tracing", {}).get("sample_rate"),
        )
    for key, value in old.get("query_reference", {}).items():
        cmp.exact(
            f"service.query_reference.{key}",
            value,
            new.get("query_reference", {}).get(key),
        )
    cmp.seconds(
        "service.seconds",
        old["seconds"],
        new["seconds"],
        TIME_THRESHOLDS["service"],
    )


def check_service(cmp: Comparison, new: dict, quick: bool) -> None:
    """Absolute gate on the candidate's service scenario.

    The three load-generator invariants (zero failed requests, zero
    corrupt reads, lock-exact telemetry) must hold on *every* baseline;
    full-run baselines must additionally have sustained at least
    ``SERVICE_REQUEST_FLOOR`` concurrent mixed requests. When the
    baseline carries a ``tracing`` block (PR 9+), every sampled request
    of the traced re-run must have resolved to a single joined span tree
    with engine-level spans, and full-run baselines must keep the
    sampled-on overhead under ``TRACING_OVERHEAD_BUDGET``.
    """
    cmp.exact("service.failed", 0, new.get("failed"))
    cmp.exact("service.corrupt_reads", 0, new.get("corrupt_reads"))
    cmp.exact("service.telemetry_exact", True, new.get("telemetry_exact"))
    if not quick and new.get("requests", 0) < SERVICE_REQUEST_FLOOR:
        cmp.regressions.append(
            f"service.requests: {new.get('requests')} < "
            f"{SERVICE_REQUEST_FLOOR} full-run floor"
        )
    tracing = new.get("tracing")
    if tracing is not None:
        cmp.exact("service.tracing.unresolved", 0, tracing.get("unresolved"))
        cmp.exact(
            "service.tracing.joined_trees",
            tracing.get("resolved"),
            tracing.get("joined_trees"),
        )
        if not tracing.get("engine_spans"):
            cmp.regressions.append(
                "service.tracing.engine_spans: no engine spans joined "
                "any sampled trace"
            )
        if not quick:
            cmp.bound(
                "service.tracing.overhead_fraction",
                tracing.get("overhead_fraction", 1.0),
                TRACING_OVERHEAD_BUDGET,
            )


def compare_recovery(cmp: Comparison, old: dict, new: dict) -> None:
    """Diff the WAL/recovery scenario (deterministic + timing)."""
    for key in ("seed", "scale", "limit", "batches", "ops_per_batch", "nodes"):
        cmp.exact(f"recovery.{key}", old.get(key), new.get(key))
    old_rec = old.get("recovery", {})
    new_rec = new.get("recovery", {})
    cmp.exact(
        "recovery.recovery.records_redone",
        old_rec.get("records_redone"),
        new_rec.get("records_redone"),
    )
    cmp.exact(
        "recovery.recovery.replayed_transactions",
        old_rec.get("replayed_transactions"),
        new_rec.get("replayed_transactions"),
    )
    cmp.exact(
        "recovery.crash_matrix.scenarios",
        old.get("crash_matrix", {}).get("scenarios"),
        new.get("crash_matrix", {}).get("scenarios"),
    )
    for key in ("plain_seconds", "wal_seconds"):
        cmp.seconds(
            f"recovery.{key}",
            old[key],
            new[key],
            TIME_THRESHOLDS["recovery"],
        )


def check_recovery(cmp: Comparison, new: dict, quick: bool) -> None:
    """Absolute gate on the candidate's recovery scenario.

    Crash-safety invariants (byte-identity with and without the log,
    recovery rebuilding post-flush bytes, every crash-matrix cell
    passing) must hold on *every* baseline; full-run baselines must
    additionally keep the WAL overhead under ``WAL_OVERHEAD_BUDGET``.
    """
    cmp.exact("recovery.identical_bytes", True, new.get("identical_bytes"))
    cmp.exact(
        "recovery.recovery.recovered_identical",
        True,
        new.get("recovery", {}).get("recovered_identical"),
    )
    matrix = new.get("crash_matrix", {})
    cmp.exact("recovery.crash_matrix.ok", True, matrix.get("ok"))
    cmp.exact(
        "recovery.crash_matrix.passed",
        matrix.get("scenarios"),
        matrix.get("passed"),
    )
    if not quick:
        cmp.bound(
            "recovery.overhead_fraction",
            new.get("overhead_fraction", 1.0),
            WAL_OVERHEAD_BUDGET,
        )


def compare_index(cmp: Comparison, old: dict, new: dict) -> None:
    """Diff the structural-index scenario (deterministic + timing)."""
    for key in ("seed", "scale", "limit", "nodes", "records"):
        cmp.exact(f"index.{key}", old.get(key), new.get(key))
    for qid, row in old.get("queries", {}).items():
        nrow = new.get("queries", {}).get(qid)
        if nrow is None:
            cmp.regressions.append(f"index[{qid}]: query disappeared")
            continue
        prefix = f"index[{qid}]"
        for key in ("xpath", "results", "window_steps", "partitions_pruned"):
            cmp.exact(f"{prefix}.{key}", row.get(key), nrow.get(key))
        for key in ("navigation_seconds", "window_seconds"):
            cmp.seconds(
                f"{prefix}.{key}",
                row[key],
                nrow[key],
                TIME_THRESHOLDS["index"],
            )


def check_index(cmp: Comparison, new: dict, quick: bool) -> None:
    """Absolute gate on the candidate's index scenario.

    Window/navigation identity, partition pruning, and observed heat
    steps must hold on *every* baseline; full-run baselines must
    additionally clear the descendant-axis speedup floor and keep the
    batched heat accounting under ``HEAT_OVERHEAD_BUDGET``.
    """
    for qid, row in new.get("queries", {}).items():
        cmp.exact(f"index[{qid}].identical", True, row.get("identical"))
    if new.get("partitions_pruned_total", 0) <= 0:
        cmp.regressions.append(
            "index.partitions_pruned_total: no partitions pruned on the "
            "multi-partition scenario"
        )
    heat = new.get("heat", {})
    cmp.exact("index.heat.observed", True, heat.get("observed"))
    if not quick:
        floor = new.get("descendant_speedup_min", 0.0)
        if floor < INDEX_DESCENDANT_FLOOR:
            cmp.regressions.append(
                f"index.descendant_speedup_min: {floor:.2f}x < "
                f"{INDEX_DESCENDANT_FLOOR}x floor"
            )
        cmp.bound(
            "index.heat.overhead_fraction",
            heat.get("overhead_fraction", 1.0),
            HEAT_OVERHEAD_BUDGET,
        )


def check_index_baseline(path: Path) -> int:
    """Validate a committed index baseline (the bench CI smoke gate)."""
    try:
        data = _load(path)
    except NotComparable as exc:
        print(f"[compare] index baseline: {exc}", file=sys.stderr)
        return 1
    scenario = data.get("scenarios", {}).get("index")
    if scenario is None:
        print(f"[compare] {path.name}: scenario 'index' missing", file=sys.stderr)
        return 1
    cmp = Comparison()
    check_index(cmp, scenario, bool(data.get("quick")))
    for line in cmp.regressions:
        print(f"[compare] index baseline: {line}", file=sys.stderr)
    if not cmp.regressions:
        print(f"[compare] index baseline {path.name} OK ({SCHEMA})", file=sys.stderr)
    return 1 if cmp.regressions else 0


def check_recovery_baseline(path: Path) -> int:
    """Validate a committed recovery baseline (the bench CI smoke gate)."""
    try:
        data = _load(path)
    except NotComparable as exc:
        print(f"[compare] recovery baseline: {exc}", file=sys.stderr)
        return 1
    scenario = data.get("scenarios", {}).get("recovery")
    if scenario is None:
        print(f"[compare] {path.name}: scenario 'recovery' missing", file=sys.stderr)
        return 1
    cmp = Comparison()
    check_recovery(cmp, scenario, bool(data.get("quick")))
    for line in cmp.regressions:
        print(f"[compare] recovery baseline: {line}", file=sys.stderr)
    if not cmp.regressions:
        print(
            f"[compare] recovery baseline {path.name} OK ({SCHEMA})", file=sys.stderr
        )
    return 1 if cmp.regressions else 0


def check_service_baseline(path: Path) -> int:
    """Validate a committed service baseline (the bench CI smoke gate)."""
    try:
        data = _load(path)
    except NotComparable as exc:
        print(f"[compare] service baseline: {exc}", file=sys.stderr)
        return 1
    scenario = data.get("scenarios", {}).get("service")
    if scenario is None:
        print(f"[compare] {path.name}: scenario 'service' missing", file=sys.stderr)
        return 1
    cmp = Comparison()
    check_service(cmp, scenario, bool(data.get("quick")))
    for line in cmp.regressions:
        print(f"[compare] service baseline: {line}", file=sys.stderr)
    if not cmp.regressions:
        print(f"[compare] service baseline {path.name} OK ({SCHEMA})", file=sys.stderr)
    return 1 if cmp.regressions else 0


def compare_baselines(old: dict, new: dict) -> Comparison:
    _check_comparable(old, new)
    cmp = Comparison()
    comparers = {
        "table1_table2": compare_table1_table2,
        "table3": compare_table3,
        "bulkload": compare_bulkload,
        "overhead": compare_overhead,
        "service": compare_service,
        "recovery": compare_recovery,
        "index": compare_index,
    }
    for scenario, comparer in comparers.items():
        if scenario in old["scenarios"]:
            comparer(cmp, old["scenarios"][scenario], new["scenarios"][scenario])
    if "fastpath" in new.get("scenarios", {}):
        check_fastpath(cmp, new["scenarios"]["fastpath"], bool(new.get("quick")))
    if "service" in new.get("scenarios", {}):
        check_service(cmp, new["scenarios"]["service"], bool(new.get("quick")))
    if "recovery" in new.get("scenarios", {}):
        check_recovery(cmp, new["scenarios"]["recovery"], bool(new.get("quick")))
    if "index" in new.get("scenarios", {}):
        check_index(cmp, new["scenarios"]["index"], bool(new.get("quick")))
    return cmp


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="the previous committed baseline")
    parser.add_argument("new", type=Path, help="the candidate baseline")
    args = parser.parse_args(argv)
    try:
        old = _load(args.old)
        new = _load(args.new)
        cmp = compare_baselines(old, new)
    except NotComparable as exc:
        print(f"[compare] not comparable: {exc}", file=sys.stderr)
        return 2
    for line in cmp.regressions:
        print(f"[compare] REGRESSION {line}", file=sys.stderr)
    if cmp.regressions:
        print(
            f"[compare] {args.old.name} -> {args.new.name}: "
            f"{len(cmp.regressions)} regression(s)",
            file=sys.stderr,
        )
        return 1
    print(f"[compare] {args.old.name} -> {args.new.name}: no regressions", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
