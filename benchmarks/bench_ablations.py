"""Ablations A1–A4 (DESIGN.md experiment index) as benchmarks.

* A1: partitions and runtime as K sweeps 32→1024.
* A2: memoized DP table occupancy (paper Sec. 3.3.6 reports <4 of 256
  possible s-values touched per inner node).
* A3: optimality gap of the heuristics vs DHW, and how often DHW's
  nearly-optimal machinery fires.
* A4: bulkload spill threshold vs memory and quality (Sec. 4.3).
"""

import pytest

from repro.bench.ablations import (
    run_gap_ablation,
    run_k_sweep,
    run_memoization_ablation,
    run_spill_ablation,
)

K_VALUES = (32, 64, 128, 256, 512, 1024)


@pytest.mark.parametrize("limit", K_VALUES)
def bench_a1_k_sweep(benchmark, limit):
    rows = benchmark.pedantic(
        run_k_sweep,
        kwargs=dict(document="mondial", limits=(limit,), scale=0.3),
        rounds=1,
        iterations=1,
    )
    (row,) = rows
    # Sibling packing tracks the capacity bound within a small factor at
    # every K; KM's parent-child-only model falls behind as K grows.
    assert row.partitions["ekm"] <= 2.1 * row.lower_bound
    assert row.partitions["km"] >= row.partitions["ekm"]
    benchmark.extra_info["partitions"] = row.partitions
    benchmark.extra_info["lower_bound"] = row.lower_bound


def bench_a2_memoization(benchmark):
    rows = benchmark.pedantic(
        run_memoization_ablation,
        kwargs=dict(documents=("sigmod", "xmark"), scale=0.3, include_dhw=True),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        # The memoized table touches a tiny fraction of the full
        # O(n·K) cell space — the Sec. 3.3.6 observation.
        assert row.occupancy < 0.25
        assert row.avg_s_values < 40
    benchmark.extra_info["rows"] = [
        (r.document, r.algorithm, round(r.avg_s_values, 2), round(r.occupancy, 4))
        for r in rows
    ]


def bench_a3_gap(benchmark):
    rows = benchmark.pedantic(
        run_gap_ablation,
        kwargs=dict(documents=("sigmod", "mondial"), scale=0.15),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        # Paper Sec. 6.2: GHDW within 4% of optimal; EKM close behind.
        assert row.gap("ghdw") <= 0.08
        assert row.gap("ekm") <= 0.12
        assert row.gap("km") > row.gap("ekm")
    benchmark.extra_info["gaps"] = [
        (r.document, {a: round(r.gap(a), 4) for a in r.partitions}) for r in rows
    ]


@pytest.mark.parametrize("threshold", [None, 16384, 4096, 1024])
def bench_a4_spill(benchmark, threshold):
    rows = benchmark.pedantic(
        run_spill_ablation,
        kwargs=dict(document="xmark", thresholds=(threshold,), scale=0.3),
        rounds=1,
        iterations=1,
    )
    (row,) = rows
    if threshold is not None:
        assert row.peak_fraction < 1.0
    benchmark.extra_info["partitions"] = row.partitions
    benchmark.extra_info["peak_fraction"] = round(row.peak_fraction, 4)
    benchmark.extra_info["spills"] = row.spills


def bench_a5_workload(benchmark):
    """A5: workload-aware Lukes reduces traversal crossings for the
    profiled workload compared to unit-weight Lukes (Sec. 5)."""
    from repro.datasets import xmark_document
    from repro.partition.evaluate import assignment_from_partitioning
    from repro.partition.lukes import lukes_partition
    from repro.partition.workload import profile_workload, workload_aware_lukes

    tree = xmark_document(scale=0.004, seed=2006)
    queries = ["/site/regions/namerica/item", "/site/people/person"]

    def run():
        counts = profile_workload(tree, queries)
        _, aware = workload_aware_lukes(tree, 256, queries)
        _, unit = lukes_partition(tree, 256)

        def crossings(partitioning):
            assignment = assignment_from_partitioning(tree, partitioning)
            return sum(
                count
                for (pid, cid), count in counts.items()
                if assignment[pid] != assignment[cid]
            )

        return crossings(aware), crossings(unit)

    aware_cross, unit_cross = benchmark.pedantic(run, rounds=1, iterations=1)
    assert aware_cross <= unit_cross
    benchmark.extra_info["workload_crossings"] = {
        "aware": aware_cross,
        "unit": unit_cross,
    }
