#!/usr/bin/env python3
"""Quickstart: partition a small weighted tree with every algorithm.

Uses the running example from the paper (Fig. 3) with weight limit K=5
and shows how the algorithms differ in partition count and root weight.

Run: python examples/quickstart.py
"""

from repro import available_algorithms, evaluate_partitioning, partition_tree, tree_from_spec

# The paper's Fig. 3 example: node "a" (weight 3) with children b,c,f,g,h;
# c has children d,e. Sibling order is the list order.
TREE_SPEC = (
    "a", 3, [
        ("b", 2),
        ("c", 1, [("d", 2), ("e", 2)]),
        ("f", 1),
        ("g", 1),
        ("h", 2),
    ],
)

LIMIT = 5


def main() -> None:
    tree = tree_from_spec(TREE_SPEC)
    print(f"tree: {len(tree)} nodes, total weight {tree.total_weight()}, K={LIMIT}\n")
    print(f"{'algorithm':10s} {'partitions':>10s} {'root weight':>12s}  intervals")
    for name in available_algorithms():
        if name == "fdw":
            continue  # FDW only accepts flat trees; see tests/partition/test_fdw.py
        partitioning = partition_tree(tree, LIMIT, algorithm=name)
        report = evaluate_partitioning(tree, partitioning, LIMIT)
        assert report.feasible
        pretty = " ".join(
            f"({tree.node(iv.left).label}..{tree.node(iv.right).label})"
            for iv in partitioning.sorted_intervals()
        )
        print(f"{name:10s} {report.cardinality:10d} {report.root_weight:12d}  {pretty}")

    print(
        "\nDHW is provably optimal (minimal partition count, then minimal root"
        "\nweight); EKM gets the same count here at a fraction of the cost —"
        "\nwhich is exactly the paper's conclusion."
    )

    from repro.partition.render import render_partitioning

    print("\nThe optimal (DHW) layout:")
    print(render_partitioning(tree, partition_tree(tree, LIMIT, "dhw"), LIMIT))


if __name__ == "__main__":
    main()
