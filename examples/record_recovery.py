#!/usr/bin/env python3
"""Recovery: rebuilding a document from record bytes alone.

The record format stores everything needed to reassemble the document —
intra-record parent slots, sibling positions, and proxy parent ids for
fragment roots. This example partitions a document, throws away every
in-memory structure except the raw record blobs and the label dictionary,
rebuilds the tree, and verifies it is identical.

Run: python examples/record_recovery.py
"""

from repro.datasets import xmark_document
from repro.partition import get_algorithm
from repro.storage import DocumentStore
from repro.storage.navigator import RecordNavigator
from repro.storage.reconstruct import reconstruct_tree
from repro.xmlio import tree_to_xml

LIMIT = 256


def main() -> None:
    tree = xmark_document(scale=0.003)
    partitioning = get_algorithm("ekm").partition(tree, LIMIT)
    store = DocumentStore.build(tree, partitioning)
    print(
        f"stored {len(tree)} nodes as {store.record_count} records on "
        f"{store.space_report().pages} pages"
    )

    # Simulate recovery: only the decoded records + label dictionary.
    records = [store.fetch_record(rid) for rid in range(store.record_count)]
    blob_bytes = sum(len(store.codec.encode(r)) for r in records)
    print(f"recovering from {blob_bytes} record payload bytes …")

    rebuilt = reconstruct_tree(records, store.labels)
    rebuilt.validate()
    assert len(rebuilt) == len(tree)
    assert tree_to_xml(rebuilt) == tree_to_xml(tree)
    print(f"rebuilt {len(rebuilt)} nodes — serialized XML is byte-identical")

    # Navigation also works straight off the records (proxy index):
    navigator = RecordNavigator(store)
    scan = sum(1 for _ in navigator.root().descendants_or_self())
    print(
        f"record-level scan visited {scan} nodes with "
        f"{navigator.stats.cross_steps} record crossings"
    )


if __name__ == "__main__":
    main()
