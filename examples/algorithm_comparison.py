#!/usr/bin/env python3
"""Compare all partitioning algorithms across the paper corpus.

A miniature of the paper's Tables 1+2: for each synthetic corpus
document, run every heuristic (and optionally DHW, the optimal but slow
algorithm), and report partition counts, gap to the capacity lower bound,
and runtime.

Run: python examples/algorithm_comparison.py [--with-dhw]
"""

import sys
import time

from repro.datasets import PAPER_DOCUMENTS
from repro.partition import evaluate_partitioning, get_algorithm
from repro.partition.binpack import capacity_lower_bound

LIMIT = 256


def main() -> None:
    with_dhw = "--with-dhw" in sys.argv
    algorithms = ["ghdw", "ekm", "rs", "dfs", "km", "bfs"]
    if with_dhw:
        algorithms.insert(0, "dhw")

    for spec in PAPER_DOCUMENTS:
        tree = spec.generate(scale=0.5)
        bound = capacity_lower_bound(tree, LIMIT)
        print(f"\n{spec.name} — {len(tree)} nodes, Weight/K = {bound}")
        print(f"  {'algorithm':9s} {'parts':>6s} {'vs bound':>9s} {'seconds':>9s}")
        for name in algorithms:
            start = time.perf_counter()
            partitioning = get_algorithm(name).partition(tree, LIMIT)
            elapsed = time.perf_counter() - start
            report = evaluate_partitioning(tree, partitioning, LIMIT)
            assert report.feasible
            print(
                f"  {name:9s} {report.cardinality:6d} "
                f"{report.cardinality / bound:8.2f}x {elapsed:9.3f}"
            )


if __name__ == "__main__":
    main()
