#!/usr/bin/env python3
"""Node-at-a-time maintenance: inserting into an already-loaded store.

The bulkload algorithms of the paper decide the initial layout; Natix'
node-at-a-time algorithm (paper ref [9]) keeps it clustered as the
document evolves. This example loads a document, then appends new
auction items one at a time, showing how the updater prefers the
parent's record, falls back to adjacent siblings' records, and splits
full records while the partitioning stays feasible throughout.

Run: python examples/incremental_updates.py
"""

from repro.datasets import xmark_document
from repro.partition import evaluate_partitioning, get_algorithm
from repro.storage import DocumentStore, StoreUpdater
from repro.tree.node import NodeKind

LIMIT = 256


def main() -> None:
    tree = xmark_document(scale=0.003)
    partitioning = get_algorithm("ekm").partition(tree, LIMIT)
    store = DocumentStore.build(tree, partitioning)
    updater = StoreUpdater(store)
    print(
        f"loaded {len(tree)} nodes into {partitioning.cardinality} records "
        f"(K={LIMIT})\n"
    )

    # Append 200 new items under namerica, each a small subtree.
    namerica = next(n for n in tree if n.label == "namerica")
    for i in range(200):
        item = updater.insert_node(namerica.node_id, "item")
        updater.insert_node(item, "name", kind=NodeKind.TEXT, content=f"late item {i}")
        updater.insert_node(
            item, "description", kind=NodeKind.TEXT, content="inserted after bulkload " * 3
        )
    updater.flush()

    current = updater.current_partitioning()
    report = evaluate_partitioning(store.tree, current, LIMIT)
    assert report.feasible, "updates must preserve feasibility"
    stats = updater.stats
    print(f"after {stats.inserts} inserts:")
    print(f"  partitions: {partitioning.cardinality} -> {report.cardinality}")
    print(
        f"  placements: {stats.placed_with_parent} with parent, "
        f"{stats.placed_with_sibling} with sibling, "
        f"{stats.new_records} new records, {stats.record_splits} splits"
    )
    space = store.space_report()
    print(f"  disk: {space.records} records on {space.pages} pages ({space.kib:.0f} KiB)")

    # Queries see the new content immediately, in document order.
    from repro.query import evaluate

    items = evaluate(store, "/site/regions/namerica/item")
    print(f"  /site/regions/namerica/item now returns {len(items)} items")


if __name__ == "__main__":
    main()
