#!/usr/bin/env python3
"""Main-memory friendliness: importing with a hard memory budget.

The paper's Sec. 4.3 worst case is a root with an enormous fan-out (the
relational ``partsupp``/``orders`` dumps): bottom-up algorithms normally
hold the whole document until the root closes. The spill threshold fixes
this — at a partitioning-quality price this example quantifies.

Run: python examples/memory_bounded_import.py
"""

from repro.bulkload import BulkLoader
from repro.datasets import partsupp_document
from repro.partition import evaluate_partitioning
from repro.xmlio import tree_to_xml

LIMIT = 256


def main() -> None:
    tree = partsupp_document(rows=1000)
    xml = tree_to_xml(tree)
    print(
        f"partsupp document: {len(tree)} nodes, weight {tree.total_weight()} "
        f"slots — all tuples under one root\n"
    )
    print(f"{'threshold':>10s} {'partitions':>10s} {'peak resident':>14s} {'spills':>7s}")
    for threshold in (None, 65536, 16384, 4096, 1024):
        loader = BulkLoader(algorithm="ekm", limit=LIMIT, spill_threshold=threshold)
        result = loader.load(xml)
        report = evaluate_partitioning(result.tree, result.partitioning, LIMIT)
        assert report.feasible
        label = "unbounded" if threshold is None else str(threshold)
        print(
            f"{label:>10s} {report.cardinality:10d} "
            f"{result.peak_resident_fraction * 100:13.1f}% {result.spills:7d}"
        )
    print(
        "\nWithout a threshold the importer holds 100% of the document"
        "\n(the root never closes); with one, memory is capped and the"
        "\npartition count degrades gracefully."
    )


if __name__ == "__main__":
    main()
