#!/usr/bin/env python3
"""Streaming bulk import of a real XML file into the document store.

The workload the paper's introduction motivates: a document arrives as a
parser event stream and must be cut into weight-limited storage records
on the fly. This example

1. generates an XMark auction document and serializes it to disk,
2. streams it back through the :class:`~repro.bulkload.BulkLoader`
   (EKM strategy, the Natix default since this paper) with a bounded
   memory budget,
3. materializes the partitions as records on slotted pages, and
4. prints storage statistics and a record-level integrity check.

Run: python examples/document_import.py [path.xml]
"""

import os
import sys
import tempfile

from repro.bulkload import BulkLoader
from repro.datasets import xmark_document
from repro.partition import evaluate_partitioning
from repro.storage import DocumentStore
from repro.xmlio import write_xml

LIMIT = 256  # slots of 8 bytes -> 2 KB records, the paper's setting
SPILL = 8 * LIMIT  # keep at most ~8 records' worth of nodes in memory


def main() -> None:
    if len(sys.argv) > 1:
        path = sys.argv[1]
        print(f"importing {path}")
    else:
        tree = xmark_document(scale=0.005)
        fd, path = tempfile.mkstemp(suffix=".xml")
        os.close(fd)
        write_xml(tree, path)
        print(f"generated XMark sample: {path} ({os.path.getsize(path)} bytes)")

    loader = BulkLoader(algorithm="ekm", limit=LIMIT, spill_threshold=SPILL)
    result = loader.load(path)
    report = evaluate_partitioning(result.tree, result.partitioning, LIMIT)
    print(
        f"imported {len(result.tree)} nodes (total weight {result.total_weight}) "
        f"into {report.cardinality} partitions"
    )
    print(
        f"peak resident weight: {result.peak_resident_weight} slots "
        f"({result.peak_resident_fraction * 100:.1f}% of the document), "
        f"{result.spills} spills"
    )
    assert report.feasible, "every partition must fit a 2KB record"

    store = DocumentStore.build(result.tree, result.partitioning)
    space = store.space_report()
    print(
        f"storage: {space.records} records on {space.pages} pages "
        f"({space.kib:.0f} KiB, {space.utilization * 100:.0f}% utilized)"
    )

    # Integrity: decode one record from its page bytes.
    record = store.fetch_record(0)
    print(
        f"record 0 decodes to {record.node_count} nodes, "
        f"{len(record.fragment_roots())} fragment root(s)"
    )


if __name__ == "__main__":
    main()
