#!/usr/bin/env python3
"""Why sibling partitioning matters: XPath queries on two layouts.

Reproduces the paper's Table 3 experiment in miniature: the same XMark
document is stored once under KM (parent-child partitions only) and once
under EKM (sibling partitions); the XPathMark queries then run on both
stores, counting intra- vs cross-record navigation steps.

Run: python examples/query_performance.py
"""

from repro.datasets import xmark_document
from repro.partition import get_algorithm
from repro.query import XPATHMARK_QUERIES, run_query
from repro.storage import DocumentStore

LIMIT = 256


def main() -> None:
    tree = xmark_document(scale=0.01)
    print(f"XMark document: {len(tree)} nodes, weight {tree.total_weight()}\n")

    stores = {}
    for name in ("km", "ekm"):
        partitioning = get_algorithm(name).partition(tree, LIMIT)
        store = DocumentStore.build(tree, partitioning)
        store.warm_up()
        stores[name] = store
        space = store.space_report()
        print(
            f"{name.upper():4s}: {partitioning.cardinality:5d} partitions, "
            f"{space.pages} pages, {space.kib:.0f} KiB"
        )

    print(f"\n{'query':4s} {'results':>7s} {'KM cross':>9s} {'EKM cross':>9s} "
          f"{'KM cost':>9s} {'EKM cost':>9s} {'speedup':>8s}")
    for query in XPATHMARK_QUERIES:
        km = run_query(stores["km"], query.xpath)
        ekm = run_query(stores["ekm"], query.xpath)
        assert km.result_count == ekm.result_count
        print(
            f"{query.qid:4s} {km.result_count:7d} {km.cross_steps:9d} "
            f"{ekm.cross_steps:9d} {km.cost:9.0f} {ekm.cost:9.0f} "
            f"{km.cost / ekm.cost:7.2f}x"
        )
    print(
        "\nEKM's sibling partitions keep child sequences in one record, so"
        "\nnavigational query evaluation crosses far fewer record borders."
    )


if __name__ == "__main__":
    main()
