"""repro.telemetry — instrumentation, tracing and perf baselines.

The measurement substrate of the repo (see ``docs/TELEMETRY.md``):

* a metrics core (:class:`Counter` / :class:`Gauge` / :class:`Histogram`
  in a :class:`MetricRegistry`) with a **no-op fast path** while
  disabled,
* nestable, thread-local, exception-safe trace :class:`Span`s,
* pluggable sinks (in-memory registry, streaming
  :class:`JsonLinesSink`) and schema-versioned exports
  (:func:`snapshot`, :func:`export_jsonl`, :func:`load_jsonl`),
* an environment fingerprint for baseline files
  (:func:`environment_fingerprint`).

Instrumentation hooks live in the hot layers themselves —
``Partitioner.partition``, the storage engine's buffer pool and record
manager, ``bulkload.BulkLoader`` and ``query.run_query`` — and all
route through the helpers here (``count`` / ``observe`` / ``gauge_set``
/ ``gauge_max`` / ``span``). Manual ``time.time()`` timing outside this
package is rejected by ``repro-lint`` rule OBS001.

Enable with ``REPRO_TELEMETRY=1``, or::

    from repro import telemetry

    with telemetry.capture() as reg:
        partition_tree(tree, 256, "ekm")
    print(telemetry.format_metrics(reg))
"""

from repro.telemetry.core import (
    Counter,
    Gauge,
    Histogram,
    JsonLinesSink,
    MetricRegistry,
    Sink,
    Span,
    SpanRecord,
    TraceContext,
    capture,
    clock,
    count,
    current_span,
    current_trace,
    disable,
    enable,
    enabled,
    enabled_scope,
    gauge_max,
    gauge_set,
    next_span_id,
    observe,
    registry,
    reset_trace,
    set_registry,
    set_trace,
    span,
    trace_scope,
)
from repro.telemetry.env import environment_fingerprint
from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    SCHEMA,
    export_jsonl,
    format_metrics,
    load_jsonl,
    prometheus_text,
    snapshot,
)
from repro.telemetry.heat import DocumentHeat, HeatAccumulator, HeatProfile
from repro.telemetry.trace import (
    SlowQuery,
    Trace,
    Tracer,
    format_trace,
    parse_traceparent,
)

__all__ = [
    "Counter",
    "DocumentHeat",
    "Gauge",
    "HeatAccumulator",
    "HeatProfile",
    "Histogram",
    "JsonLinesSink",
    "MetricRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "SCHEMA",
    "Sink",
    "SlowQuery",
    "Span",
    "SpanRecord",
    "Trace",
    "TraceContext",
    "Tracer",
    "capture",
    "clock",
    "count",
    "current_span",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "environment_fingerprint",
    "export_jsonl",
    "format_metrics",
    "format_trace",
    "gauge_max",
    "gauge_set",
    "load_jsonl",
    "next_span_id",
    "observe",
    "parse_traceparent",
    "prometheus_text",
    "registry",
    "reset_trace",
    "set_registry",
    "set_trace",
    "snapshot",
    "span",
    "trace_scope",
]
