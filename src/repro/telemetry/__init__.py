"""repro.telemetry — instrumentation, tracing and perf baselines.

The measurement substrate of the repo (see ``docs/TELEMETRY.md``):

* a metrics core (:class:`Counter` / :class:`Gauge` / :class:`Histogram`
  in a :class:`MetricRegistry`) with a **no-op fast path** while
  disabled,
* nestable, thread-local, exception-safe trace :class:`Span`s,
* pluggable sinks (in-memory registry, streaming
  :class:`JsonLinesSink`) and schema-versioned exports
  (:func:`snapshot`, :func:`export_jsonl`, :func:`load_jsonl`),
* an environment fingerprint for baseline files
  (:func:`environment_fingerprint`).

Instrumentation hooks live in the hot layers themselves —
``Partitioner.partition``, the storage engine's buffer pool and record
manager, ``bulkload.BulkLoader`` and ``query.run_query`` — and all
route through the helpers here (``count`` / ``observe`` / ``gauge_set``
/ ``gauge_max`` / ``span``). Manual ``time.time()`` timing outside this
package is rejected by ``repro-lint`` rule OBS001.

Enable with ``REPRO_TELEMETRY=1``, or::

    from repro import telemetry

    with telemetry.capture() as reg:
        partition_tree(tree, 256, "ekm")
    print(telemetry.format_metrics(reg))
"""

from repro.telemetry.core import (
    Counter,
    Gauge,
    Histogram,
    JsonLinesSink,
    MetricRegistry,
    Sink,
    Span,
    SpanRecord,
    capture,
    clock,
    count,
    current_span,
    disable,
    enable,
    enabled,
    enabled_scope,
    gauge_max,
    gauge_set,
    observe,
    registry,
    set_registry,
    span,
)
from repro.telemetry.env import environment_fingerprint
from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    SCHEMA,
    export_jsonl,
    format_metrics,
    load_jsonl,
    prometheus_text,
    snapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "SCHEMA",
    "Sink",
    "Span",
    "SpanRecord",
    "capture",
    "clock",
    "count",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "environment_fingerprint",
    "export_jsonl",
    "format_metrics",
    "gauge_max",
    "gauge_set",
    "load_jsonl",
    "observe",
    "prometheus_text",
    "registry",
    "set_registry",
    "snapshot",
    "span",
]
