"""Environment fingerprinting for perf baselines.

``BENCH_*.json`` numbers are only comparable between runs on comparable
machines; the fingerprint written next to every baseline records enough
of the execution environment to judge whether a diff is signal or a
hardware change.
"""

from __future__ import annotations

import os
import platform
from datetime import datetime, timezone
from typing import Any


def environment_fingerprint() -> dict[str, Any]:
    """Describe the machine and interpreter producing a measurement."""
    from repro import __version__  # local import: keep module import cycle-free

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
