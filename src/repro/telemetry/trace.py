"""Request-correlated tracing: ring buffer, head sampling, slow-query log.

The :class:`Tracer` closes the gap between per-span telemetry (PR 2/4)
and per-request observability: the service middleware mints one
:class:`~repro.telemetry.core.TraceContext` per request, the tracer
decides deterministically whether that request is *sampled*, and — being
attached to the :class:`~repro.telemetry.core.MetricRegistry` as a sink
— it collects every completed span that carries the request's trace id.
When the middleware finishes the request it hands the tracer the root
record; the assembled :class:`Trace` (root + engine spans, one joined
tree) lands in a bounded ring buffer served by ``GET /debug/traces``.

Head sampling is **seeded and deterministic**: the keep/drop decision is
``crc32(f"{seed}:{trace_id}") % sample_rate == 0``, so a given trace id
is sampled or not identically across runs and processes — benchmark
baselines and the smoke script rely on that. Sampling only gates
*retention*; span linkage (trace/span ids on records) happens for every
traced request, so an unsampled request still produces a single joined
span tree for anything else observing the stream.

Independently of sampling, any request slower than ``slow_threshold``
seconds is appended to the slow-query log with its query text, document
id, wall time and (when sampled) the captured span tree.

Everything here is off the hot path: with tracing disabled the service
never constructs a context and the sink is never attached, so the cost
is exactly the pre-existing no-op fast path of :mod:`repro.telemetry`.
"""

from __future__ import annotations

import re
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.telemetry.core import SpanRecord, TraceContext, next_span_id

#: ``00-<32 hex trace id>-<16 hex parent span>-<2 hex flags>``
_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def parse_traceparent(value: str) -> Optional[tuple[str, str, bool]]:
    """Parse a W3C ``traceparent`` header.

    Returns ``(trace_id, parent_span_id, sampled_flag)`` or ``None`` when
    the header is absent/malformed (malformed headers are ignored, per
    spec: the request simply starts a fresh trace).
    """
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    trace_id, parent_id, flags = match.groups()
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id, bool(int(flags, 16) & 0x01)


@dataclass(frozen=True)
class Trace:
    """One completed, sampled request: the root span plus every engine
    span that joined its tree."""

    trace_id: str
    root: SpanRecord
    spans: tuple[SpanRecord, ...]

    @property
    def seconds(self) -> float:
        return self.root.seconds

    def summary(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "seconds": self.root.seconds,
            "spans": len(self.spans),
            "error": self.root.error,
            "attrs": dict(self.root.attrs),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "seconds": self.root.seconds,
            "spans": [record.as_dict() for record in self.spans],
        }


@dataclass(frozen=True)
class SlowQuery:
    """One request that exceeded the slow threshold."""

    trace_id: str
    seconds: float
    #: XPath text for query requests, ``None`` for other routes
    query: Optional[str]
    #: document id the request touched, when known
    doc: Optional[str]
    route: str
    error: Optional[str] = None
    #: captured span tree — empty unless the request was also sampled
    spans: tuple[SpanRecord, ...] = field(default=())

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "seconds": self.seconds,
            "query": self.query,
            "doc": self.doc,
            "route": self.route,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.spans:
            out["spans"] = [record.as_dict() for record in self.spans]
        return out


#: hard cap on in-flight (begun, unfinished) traces — a leaked context
#: must never grow memory without bound
_PENDING_CAP = 4096


class Tracer:
    """Registry sink that assembles per-request span trees.

    Thread-safe: ``emit`` fires from executor threads while ``begin`` /
    ``finish`` run on the event loop, and the debug endpoints read
    concurrently.
    """

    def __init__(
        self,
        capacity: int = 256,
        sample_rate: int = 1,
        seed: int = 2006,
        slow_threshold: Optional[float] = None,
        slow_capacity: int = 64,
    ):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.seed = seed
        self.slow_threshold = slow_threshold
        self.slow_capacity = slow_capacity
        self._lock = threading.Lock()
        #: sampled, in-flight traces: trace_id -> collected records
        self._pending: dict[str, list[SpanRecord]] = {}  # repro: guarded-by(_lock)
        #: completed sampled traces, oldest first
        self._traces: OrderedDict[str, Trace] = OrderedDict()  # repro: guarded-by(_lock)
        self._slow: list[SlowQuery] = []  # repro: guarded-by(_lock)
        self.started = 0  # repro: guarded-by(_lock)
        self.sampled = 0  # repro: guarded-by(_lock)
        self.evicted = 0  # repro: guarded-by(_lock)
        self.dropped_pending = 0  # repro: guarded-by(_lock)

    # sampling ---------------------------------------------------------------

    def should_sample(self, trace_id: str) -> bool:
        """Deterministic seeded head-sampling decision for ``trace_id``."""
        if self.sample_rate <= 0:
            return False
        if self.sample_rate == 1:
            return True
        digest = zlib.crc32(f"{self.seed}:{trace_id}".encode("utf-8"))
        return digest % self.sample_rate == 0

    # lifecycle --------------------------------------------------------------

    def begin(
        self,
        trace_id: str,
        path: str = "service.request",
        remote_parent: Optional[str] = None,
    ) -> TraceContext:
        """Open a trace for one request; returns its context to install."""
        sampled = self.should_sample(trace_id)
        ctx = TraceContext(
            trace_id=trace_id,
            span_id=next_span_id(),
            path=path,
            depth=0,
            sampled=sampled,
            remote_parent=remote_parent,
        )
        with self._lock:
            self.started += 1
            if sampled:
                self.sampled += 1
                if len(self._pending) >= _PENDING_CAP:
                    # drop the arbitrary oldest insertion to stay bounded
                    self._pending.pop(next(iter(self._pending)))
                    self.dropped_pending += 1
                self._pending[trace_id] = []
        return ctx

    def emit(self, record: SpanRecord) -> None:
        """Sink hook: collect spans belonging to a pending sampled trace."""
        trace_id = record.trace_id
        if trace_id is None:
            return
        with self._lock:
            bucket = self._pending.get(trace_id)
            if bucket is not None:
                bucket.append(record)

    def finish(
        self,
        ctx: TraceContext,
        root: SpanRecord,
        query: Optional[str] = None,
        doc: Optional[str] = None,
    ) -> Optional[Trace]:
        """Seal the request: assemble its tree, retire it to the buffers.

        ``root`` is the request-level record the middleware built (it has
        already been through ``record_span``, so if the trace is sampled
        it is sitting in the pending bucket too — spans are deduplicated
        by span id). Returns the stored :class:`Trace` when sampled.
        """
        trace = None
        with self._lock:
            records = self._pending.pop(ctx.trace_id, None)
            if ctx.sampled and records is not None:
                seen: set[Optional[int]] = set()
                ordered: list[SpanRecord] = []
                for record in [root, *records]:
                    if record.span_id in seen:
                        continue
                    seen.add(record.span_id)
                    ordered.append(record)
                # chronological after the root, for readable trees
                ordered[1:] = sorted(ordered[1:], key=lambda r: (r.start, r.depth))
                trace = Trace(
                    trace_id=ctx.trace_id, root=root, spans=tuple(ordered)
                )
                self._traces[ctx.trace_id] = trace
                self._traces.move_to_end(ctx.trace_id)
                while len(self._traces) > self.capacity:
                    self._traces.popitem(last=False)
                    self.evicted += 1
            if (
                self.slow_threshold is not None
                and root.seconds >= self.slow_threshold
            ):
                entry = SlowQuery(
                    trace_id=ctx.trace_id,
                    seconds=root.seconds,
                    query=query,
                    doc=doc,
                    route=str(root.attrs.get("route", root.name)),
                    error=root.error,
                    spans=trace.spans if trace is not None else (),
                )
                self._slow.append(entry)
                if len(self._slow) > self.slow_capacity:
                    del self._slow[: len(self._slow) - self.slow_capacity]
        return trace

    # accessors --------------------------------------------------------------

    def traces(self) -> list[Trace]:
        """Completed sampled traces, most recent last."""
        with self._lock:
            return list(self._traces.values())

    def trace(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(trace_id)

    def slow(self) -> list[SlowQuery]:
        with self._lock:
            return list(self._slow)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "started": self.started,
                "sampled": self.sampled,
                "buffered": len(self._traces),
                "evicted": self.evicted,
                "pending": len(self._pending),
                "dropped_pending": self.dropped_pending,
                "slow": len(self._slow),
            }


def format_trace(trace: Trace) -> str:
    """Render a trace as an indented text tree (for ``repro-stats``)."""
    lines = [
        f"trace {trace.trace_id}  {trace.seconds * 1000:.3f} ms  "
        f"{len(trace.spans)} spans"
    ]
    children: dict[Optional[int], list[SpanRecord]] = {}
    for record in trace.spans:
        children.setdefault(record.parent_id, []).append(record)

    root = trace.spans[0] if trace.spans else trace.root
    # explicit stack: trace depth tracks query nesting, not the C stack
    stack: list[tuple[SpanRecord, int]] = [(root, 1)]
    while stack:
        record, indent = stack.pop()
        attrs = ""
        if record.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(record.attrs.items())
            )
        error = f"  !{record.error}" if record.error else ""
        lines.append(
            f"{'  ' * indent}- {record.name}  "
            f"{record.seconds * 1000:.3f} ms{error}{attrs}"
        )
        for child in reversed(children.get(record.span_id, [])):
            stack.append((child, indent + 1))
    return "\n".join(lines)
