"""Registry snapshots, JSON-lines export and human-readable rendering.

The on-disk formats are **schema-versioned** so baseline files
(``BENCH_*.json``) and exported metric streams can be validated instead
of rotting silently:

* :func:`snapshot` — one JSON-safe dict of the whole registry, tagged
  with :data:`SCHEMA`;
* :func:`export_jsonl` / :func:`load_jsonl` — a line-oriented stream
  (one metric or span per line, ``meta`` header first) that round-trips
  back into the snapshot shape;
* :func:`format_metrics` — the table the ``repro stats`` subcommand
  prints;
* :func:`prometheus_text` — the Prometheus/OpenMetrics text exposition
  served by ``GET /metrics`` and ``repro-stats --prom``.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TextIO

from repro.errors import ReproError
from repro.telemetry.core import MetricRegistry, registry as _default_registry

#: bump when the snapshot/JSONL layout changes incompatibly
SCHEMA = "repro-telemetry/1"


def snapshot(
    reg: Optional[MetricRegistry] = None, include_trace: bool = False
) -> dict[str, Any]:
    """A JSON-safe view of every metric in ``reg`` (default: global)."""
    reg = reg if reg is not None else _default_registry()
    out: dict[str, Any] = {
        "schema": SCHEMA,
        "counters": {name: c.value for name, c in sorted(reg.counters.items())},
        "gauges": {
            name: {"value": g.value, "max": g.max}
            for name, g in sorted(reg.gauges.items())
        },
        "histograms": {
            name: h.as_dict() for name, h in sorted(reg.histograms.items())
        },
    }
    if include_trace:
        out["trace"] = [record.as_dict() for record in reg.trace]
        out["dropped_spans"] = reg.dropped_spans
    return out


def export_jsonl(
    stream: TextIO, reg: Optional[MetricRegistry] = None, include_trace: bool = True
) -> int:
    """Write the registry as JSON lines; returns the number of lines."""
    reg = reg if reg is not None else _default_registry()
    lines = 0

    def emit(obj: dict[str, Any]) -> None:
        nonlocal lines
        stream.write(json.dumps(obj, sort_keys=True) + "\n")
        lines += 1

    emit({"kind": "meta", "schema": SCHEMA})
    for name, counter in sorted(reg.counters.items()):
        emit({"kind": "counter", "name": name, "value": counter.value})
    for name, gauge in sorted(reg.gauges.items()):
        emit({"kind": "gauge", "name": name, "value": gauge.value, "max": gauge.max})
    for name, histogram in sorted(reg.histograms.items()):
        emit({"kind": "histogram", "name": name, **histogram.as_dict()})
    if include_trace:
        for record in reg.trace:
            emit({"kind": "span", **record.as_dict()})
    return lines


def load_jsonl(stream: TextIO) -> dict[str, Any]:
    """Parse a JSON-lines export back into the :func:`snapshot` shape.

    Raises :class:`ReproError` on a missing/mismatched schema header, so
    stale exports fail loudly instead of being silently misread.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, Any] = {}
    histograms: dict[str, Any] = {}
    trace: list[dict[str, Any]] = []
    schema: Optional[str] = None
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid telemetry JSONL at line {lineno}: {exc}") from None
        kind = obj.get("kind")
        if kind == "meta":
            schema = obj.get("schema")
            if schema != SCHEMA:
                raise ReproError(
                    f"telemetry schema mismatch: file has {schema!r}, reader expects {SCHEMA!r}"
                )
        elif kind == "counter":
            counters[obj["name"]] = obj["value"]
        elif kind == "gauge":
            gauges[obj["name"]] = {"value": obj["value"], "max": obj["max"]}
        elif kind == "histogram":
            histograms[obj["name"]] = {
                key: obj[key]
                for key in ("count", "total", "mean", "min", "max", "last", "p50", "p95", "p99")
                if key in obj  # quantiles are absent in pre-quantile exports
            }
        elif kind == "span":
            trace.append({key: value for key, value in obj.items() if key != "kind"})
        else:
            raise ReproError(f"unknown telemetry record kind {kind!r} at line {lineno}")
    if schema is None:
        raise ReproError("telemetry JSONL has no meta/schema header line")
    out: dict[str, Any] = {
        "schema": schema,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }
    if trace:
        out["trace"] = trace
    return out


#: Content-Type a Prometheus scraper expects for the text exposition
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: quantile labels emitted per histogram (matching the JSON p50/p95/p99)
_PROM_QUANTILES = (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99))


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a registry metric name into a Prometheus metric name.

    Prometheus names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; our dotted
    names (``service.requests``, ``span.query.run``) map every
    disallowed character to ``_``. The mapping is not injective in
    general, but registry names only use ``[a-z0-9._-]`` in practice,
    and the sorted rendering keeps any collision deterministic.
    """
    safe = "".join(
        ch if (ch.isascii() and ch.isalnum()) or ch == "_" else "_" for ch in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return prefix + safe


def _prom_value(value: float) -> str:
    """Render a sample value; ``repr`` keeps floats round-trippable."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError(f"non-numeric metric value: {value!r}")
    return repr(value)


def prometheus_text(reg: Optional[MetricRegistry] = None) -> str:
    """Render the registry in the Prometheus text exposition format.

    Deterministic: metric names are sorted within each kind and the
    float rendering is ``repr``-stable, so the same registry state
    always yields byte-identical output (pinned by tests).

    * counters → ``<name>_total`` counter samples,
    * gauges → ``<name>`` plus a ``<name>_max`` high-water-mark gauge,
    * histograms → Prometheus *summaries*: ``{quantile="0.5|0.95|0.99"}``
      samples from the deterministic reservoir plus ``_sum``/``_count``.

    A histogram carrying an exemplar (the trace id of the request behind
    its latest annotated observation) additionally emits an
    exemplar-style comment line — summaries cannot carry OpenMetrics
    ``#``-exemplar syntax proper, and a comment keeps the exposition
    parseable by every scraper while still surfacing the trace id::

        # EXEMPLAR repro_service_request_seconds trace_id="req-0001" value=0.0123

    Registries without exemplars render byte-identically to before.

    Registry names are sanitized via :func:`_prom_name` (dots become
    underscores, everything gains a ``repro_`` prefix).
    """
    reg = reg if reg is not None else _default_registry()
    lines: list[str] = []
    for name, counter in sorted(reg.counters.items()):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter.value)}")
    for name, gauge in sorted(reg.gauges.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge.value)}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {_prom_value(gauge.max)}")
    for name, histogram in sorted(reg.histograms.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        for label, q in _PROM_QUANTILES:
            value = histogram.quantile(q)
            if value is not None:
                lines.append(f'{metric}{{quantile="{label}"}} {_prom_value(value)}')
        lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
        lines.append(f"{metric}_count {_prom_value(histogram.count)}")
        exemplar = histogram.exemplar
        if exemplar is not None:
            trace_id, value = exemplar
            lines.append(
                f'# EXEMPLAR {metric} trace_id="{trace_id}" '
                f"value={_prom_value(value)}"
            )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def format_metrics(reg: Optional[MetricRegistry] = None) -> str:
    """Render the registry as aligned text (the ``repro stats`` output)."""
    reg = reg if reg is not None else _default_registry()
    sections: list[str] = []
    if reg.counters:
        width = max(len(name) for name in reg.counters)
        lines = [
            f"  {name:<{width}}  {counter.value}"
            for name, counter in sorted(reg.counters.items())
        ]
        sections.append("counters:\n" + "\n".join(lines))
    if reg.gauges:
        width = max(len(name) for name in reg.gauges)
        lines = [
            f"  {name:<{width}}  {gauge.value:g} (max {gauge.max:g})"
            for name, gauge in sorted(reg.gauges.items())
        ]
        sections.append("gauges:\n" + "\n".join(lines))
    if reg.histograms:
        width = max(len(name) for name in reg.histograms)
        lines = []
        for name, h in sorted(reg.histograms.items()):
            p50, p95, p99 = h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
            lines.append(
                f"  {name:<{width}}  n={h.count}  mean={h.mean:.6f}  "
                f"min={0.0 if h.min is None else h.min:.6f}  "
                f"max={0.0 if h.max is None else h.max:.6f}  "
                f"p50={0.0 if p50 is None else p50:.6f}  "
                f"p95={0.0 if p95 is None else p95:.6f}  "
                f"p99={0.0 if p99 is None else p99:.6f}"
            )
        sections.append("histograms (seconds for span.*):\n" + "\n".join(lines))
    if not sections:
        return "no metrics recorded (is telemetry enabled?)"
    return "\n\n".join(sections)
