"""Access-heat accounting per ``(document, partition)``.

The ROADMAP's "close the loop from query telemetry to placement" item
needs one missing ingredient: *observed* axis-traversal counts, per
document, in the units of the paper's navigation cost model (intra
steps, cross-record steps, page faults). This module collects them live:

* :class:`HeatAccumulator` attaches a per-document hook to
  ``DocumentStore.heat_sink`` (the same zero-cost pattern as the
  existing ``edge_recorder``: a single ``is not None`` branch on the
  navigation hot path when heat is off). The hook does the absolute
  minimum per hop — one ``list.append`` of the raw ``(source_id,
  target_id, fault)`` triple into a bounded buffer (appends are atomic
  under the GIL, so the hot path takes **no lock**); a lock is only
  touched every :data:`_FLUSH_AT` hops, when the buffer drains into the
  ``Counter`` tallies.

* :meth:`HeatAccumulator.profile` does everything expensive lazily, at
  read time: hops are *oriented* onto parent→child tree edges (sibling
  hops credit both endpoints' parent edges, exactly like
  :func:`repro.partition.workload.profile_workload`) and aggregated per
  partition via the store's record assignment.

The resulting :class:`HeatProfile` is the bridge to repartitioning:
:meth:`HeatProfile.edge_counts` returns a ``Counter`` keyed
``(parent_id, child_id)`` — the exact shape
:func:`repro.partition.workload.workload_edge_weight` consumes — so
observed heat feeds Lukes' DP verbatim (see
:func:`repro.partition.workload.heat_aware_lukes`).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional


#: hops buffered per document before a locked drain into the tallies —
#: bounds both the buffer memory and the amortized per-hop lock cost
_FLUSH_AT = 8192


class _DocHeat:
    """Raw hop tallies for one attached document.

    ``buffer`` is the only structure the navigation hot path touches:
    executor threads ``append`` concurrently without the lock (list
    appends are atomic under the GIL; the drain below only ever removes
    a prefix it has already copied, so concurrent tail appends survive).
    """

    __slots__ = ("store", "lock", "buffer", "hops", "fault_hops")

    def __init__(self, store):
        self.store = store
        self.lock = threading.Lock()
        #: undrained (source_id, target_id, fault) hops, append-only
        self.buffer: list = []
        #: (source_id, target_id) -> hop count
        self.hops: Counter = Counter()  # repro: guarded-by(lock)
        #: (source_id, target_id) -> page-fault count
        self.fault_hops: Counter = Counter()  # repro: guarded-by(lock)

    def drain(self) -> None:
        """Fold the buffered hops into the counters (locked, amortized)."""
        with self.lock:
            n = len(self.buffer)
            if not n:
                return
            batch = self.buffer[:n]
            del self.buffer[:n]
            hops = self.hops
            fault_hops = self.fault_hops
            for source_id, target_id, fault in batch:
                hops[(source_id, target_id)] += 1
                if fault:
                    fault_hops[(source_id, target_id)] += 1


@dataclass(frozen=True)
class DocumentHeat:
    """Oriented, partition-aggregated heat for one document."""

    doc: str
    steps: int
    cross_steps: int
    faults: int
    #: parent→child edge traversal counts, ``(parent_id, child_id)`` keyed
    edges: Counter
    #: partition (record) id -> {"touches", "cross", "faults"}
    partitions: dict[int, dict[str, int]] = field(default_factory=dict)

    def as_dict(self, include_edges: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "doc": self.doc,
            "steps": self.steps,
            "cross_steps": self.cross_steps,
            "faults": self.faults,
            "partitions": {
                str(pid): dict(stats)
                for pid, stats in sorted(self.partitions.items())
            },
        }
        if include_edges:
            out["edges"] = [
                {"parent": parent, "child": child, "count": count}
                for (parent, child), count in sorted(
                    self.edges.items(), key=lambda item: (-item[1], item[0])
                )
            ]
        return out


@dataclass(frozen=True)
class HeatProfile:
    """A point-in-time snapshot of observed access heat, per document."""

    docs: dict[str, DocumentHeat]

    def edge_counts(self, doc: str) -> Counter:
        """Traversal counts for ``doc``, keyed ``(parent_id, child_id)`` —
        the exact input shape of
        :func:`repro.partition.workload.workload_edge_weight`."""
        heat = self.docs.get(doc)
        return Counter(heat.edges) if heat is not None else Counter()

    def hottest(self, top: int = 10) -> list[tuple[str, int, int]]:
        """The ``top`` hottest (doc, partition) pairs by touch count."""
        pairs = [
            (heat.doc, pid, stats["touches"])
            for heat in self.docs.values()
            for pid, stats in heat.partitions.items()
        ]
        pairs.sort(key=lambda item: (-item[2], item[0], item[1]))
        return pairs[:top]

    def as_dict(
        self, top: Optional[int] = None, include_edges: bool = False
    ) -> dict[str, Any]:
        return {
            "documents": {
                doc: heat.as_dict(include_edges=include_edges)
                for doc, heat in sorted(self.docs.items())
            },
            "hottest": [
                {"doc": doc, "partition": pid, "touches": touches}
                for doc, pid, touches in self.hottest(top if top else 10)
            ],
        }


class HeatAccumulator:
    """Live per-document access-heat collection over attached stores."""

    def __init__(self):
        self._lock = threading.Lock()
        self._docs: dict[str, _DocHeat] = {}  # repro: guarded-by(_lock)

    def attach(self, doc: str, store) -> None:
        """Start accounting navigation heat for ``store`` under ``doc``.

        Re-attaching the same doc id (re-ingest) resets its tallies.
        """
        heat = _DocHeat(store)
        buffer = heat.buffer
        append = buffer.append
        drain = heat.drain

        def sink(source_id: int, target_id: int, fault: bool) -> None:
            append((source_id, target_id, fault))
            if len(buffer) >= _FLUSH_AT:
                drain()

        with self._lock:
            self._docs[doc] = heat
        store.heat_sink = sink

    def detach(self, doc: str) -> None:
        """Stop accounting for ``doc`` and drop its tallies."""
        with self._lock:
            heat = self._docs.pop(doc, None)
        if heat is not None and heat.store.heat_sink is not None:
            heat.store.heat_sink = None

    def docs(self) -> list[str]:
        with self._lock:
            return sorted(self._docs)

    def profile(self) -> HeatProfile:
        """Orient and aggregate the raw tallies (the expensive part —
        deliberately off the navigation hot path)."""
        with self._lock:
            entries = list(self._docs.items())
        profiles: dict[str, DocumentHeat] = {}
        for doc, heat in entries:
            heat.drain()
            with heat.lock:
                hops = Counter(heat.hops)
                fault_hops = Counter(heat.fault_hops)
            steps = sum(hops.values())
            faults = sum(fault_hops.values())
            store = heat.store
            nodes = store.tree.nodes
            record_of = store.record_of
            size = len(nodes)
            edges: Counter = Counter()
            partitions: dict[int, dict[str, int]] = {}
            cross_steps = 0
            for (source_id, target_id), count in hops.items():
                if source_id >= size or target_id >= size:
                    continue  # structural update raced the snapshot
                source, target = nodes[source_id], nodes[target_id]
                if target.parent is source:
                    edges[(source_id, target_id)] += count
                elif source.parent is target:
                    edges[(target_id, source_id)] += count
                else:
                    # sibling hop: benefits both endpoints' parent edges
                    for node in (source, target):
                        if node.parent is not None:
                            edges[(node.parent.node_id, node.node_id)] += count
                target_record = record_of[target_id]
                stats = partitions.setdefault(
                    target_record, {"touches": 0, "cross": 0, "faults": 0}
                )
                stats["touches"] += count
                if record_of[source_id] != target_record:
                    stats["cross"] += count
                    cross_steps += count
            for (source_id, target_id), count in fault_hops.items():
                if target_id >= size:
                    continue
                stats = partitions.setdefault(
                    record_of[target_id], {"touches": 0, "cross": 0, "faults": 0}
                )
                stats["faults"] += count
            profiles[doc] = DocumentHeat(
                doc=doc,
                steps=steps,
                cross_steps=cross_steps,
                faults=faults,
                edges=edges,
                partitions=partitions,
            )
        return HeatProfile(docs=profiles)
