"""Access-heat accounting per ``(document, partition)``.

The ROADMAP's "close the loop from query telemetry to placement" item
needs one missing ingredient: *observed* axis-traversal counts, per
document, in the units of the paper's navigation cost model (intra
steps, cross-record steps, page faults). This module collects them live:

* :class:`HeatAccumulator` hands each attached document's raw hop
  buffer to the store (``DocumentStore.heat_append`` is the *pre-bound*
  ``list.append`` of that buffer; same zero-cost-when-off idea as the
  profiler's ``edge_buffer``: a single ``is not None`` branch on the
  navigation hot path when heat is off). The hot path does the absolute
  minimum per hop — one bare append of the hop *packed into a single
  int* (``source_id << 32 | target_id``, see :func:`pack_hop`), **no
  callback frame** (a per-hop Python call cost ~50% on navigation-bound
  queries; lint rule PERF002 now guards against reintroducing one).
  Packed ints beat ``(source, target)`` tuples twice over: they are not
  gc-tracked (half a million buffered tuples per query drove visible
  gen-0 collection pressure) and they hash/compare as single machine
  words when the drain folds them. Page faults are rare, so they ride
  the already-expensive cross-record branch into a second buffer.
  Appends are atomic under the GIL, so the hot path takes no lock
  either; a lock is only touched when ``heat_drain`` moves the buffers
  aside — at end of query (the engine drains there) or every
  :data:`_FLUSH_AT` hops on the cross-record path. The drain is a
  prefix copy, not a fold: batches park in a pending list and are
  folded into the ``Counter`` tallies lazily (``Counter.update``,
  i.e. C-speed ``_count_elements`` over int keys) at
  :meth:`HeatAccumulator.profile` time, or once :data:`_FOLD_AT`
  pending hops pile up. Both the per-hop Python fold this design
  replaced (~15% of navigation-bound wall-clock) and an eager
  per-query batch fold (~7%) were measurable; the copy is ~1%.

* :meth:`HeatAccumulator.profile` does everything expensive lazily, at
  read time: hops are *oriented* onto parent→child tree edges (sibling
  hops credit both endpoints' parent edges, exactly like
  :func:`repro.partition.workload.profile_workload`) and aggregated per
  partition via the store's record assignment.

The resulting :class:`HeatProfile` is the bridge to repartitioning:
:meth:`HeatProfile.edge_counts` returns a ``Counter`` keyed
``(parent_id, child_id)`` — the exact shape
:func:`repro.partition.workload.workload_edge_weight` consumes — so
observed heat feeds Lukes' DP verbatim (see
:func:`repro.partition.workload.heat_aware_lukes`).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional


#: hops buffered per document before a locked drain into the tallies —
#: bounds both the buffer memory and the amortized per-hop lock cost
_FLUSH_AT = 8192

#: pending (drained-but-unfolded) hops per document before a drain folds
#: them into the ``Counter`` tallies eagerly — bounds pending-batch
#: memory when nobody reads :meth:`HeatAccumulator.profile` for a while
_FOLD_AT = 1 << 19

#: bit width of the target-id half of a packed hop
_PACK_SHIFT = 32
_PACK_MASK = (1 << _PACK_SHIFT) - 1


def pack_hop(source_id: int, target_id: int) -> int:
    """Pack one hop into the single-int form the hot path buffers."""
    return source_id << _PACK_SHIFT | target_id


class _DocHeat:
    """Raw hop tallies for one attached document.

    ``buffer`` (every hop) and ``fault_buffer`` (faulted hops only) are
    the only structures the navigation hot path touches: executor
    threads ``append`` concurrently without the lock (list appends are
    atomic under the GIL; the drain below only ever removes a prefix it
    has already copied, so concurrent tail appends survive).
    """

    __slots__ = (
        "store",
        "lock",
        "buffer",
        "fault_buffer",
        "pending",
        "fault_pending",
        "pending_hops",
        "hops",
        "fault_hops",
    )

    def __init__(self, store):
        self.store = store
        self.lock = threading.Lock()
        #: undrained packed hops (:func:`pack_hop`), append-only
        self.buffer: list = []
        #: undrained packed page-fault hops, append-only
        self.fault_buffer: list = []
        #: drained-but-unfolded hop batches  # repro: guarded-by(lock)
        self.pending: list[list] = []
        #: drained-but-unfolded fault batches  # repro: guarded-by(lock)
        self.fault_pending: list[list] = []
        #: total hops across ``pending``  # repro: guarded-by(lock)
        self.pending_hops: int = 0
        #: packed hop -> hop count
        self.hops: Counter = Counter()  # repro: guarded-by(lock)
        #: packed hop -> page-fault count
        self.fault_hops: Counter = Counter()  # repro: guarded-by(lock)

    def drain(self) -> None:
        """Move the buffered hops into the pending batches (locked, cheap).

        The drain the engine runs at end of query is a prefix *copy*
        (~10ns/hop), not a fold: ``Counter.update`` over a 100k-hop
        batch costs ~100ns/hop, which put the fold right back on the
        navigation-bound wall-clock the batching was meant to protect.
        Folding happens lazily in :meth:`_fold_locked` — at
        :meth:`HeatAccumulator.profile` time, or here once the pending
        batches exceed :data:`_FOLD_AT` hops (a memory bound for stores
        whose heat nobody reads for a while).
        """
        with self.lock:
            n = len(self.buffer)
            if n:
                self.pending.append(self.buffer[:n])
                del self.buffer[:n]
                self.pending_hops += n
            m = len(self.fault_buffer)
            if m:
                self.fault_pending.append(self.fault_buffer[:m])
                del self.fault_buffer[:m]
            if self.pending_hops >= _FOLD_AT:
                self._fold_locked()

    def _fold_locked(self) -> None:  # repro: holds(lock)
        """Fold pending batches into the tallies; caller holds ``lock``.

        Each fold is ``Counter.update`` over a packed-int batch — the C
        ``_count_elements`` loop over machine-word keys, not a
        Python-level one.
        """
        for batch in self.pending:
            self.hops.update(batch)
        self.pending.clear()
        self.pending_hops = 0
        for batch in self.fault_pending:
            self.fault_hops.update(batch)
        self.fault_pending.clear()


@dataclass(frozen=True)
class DocumentHeat:
    """Oriented, partition-aggregated heat for one document."""

    doc: str
    steps: int
    cross_steps: int
    faults: int
    #: parent→child edge traversal counts, ``(parent_id, child_id)`` keyed
    edges: Counter
    #: partition (record) id -> {"touches", "cross", "faults"}
    partitions: dict[int, dict[str, int]] = field(default_factory=dict)

    def as_dict(self, include_edges: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "doc": self.doc,
            "steps": self.steps,
            "cross_steps": self.cross_steps,
            "faults": self.faults,
            "partitions": {
                str(pid): dict(stats)
                for pid, stats in sorted(self.partitions.items())
            },
        }
        if include_edges:
            out["edges"] = [
                {"parent": parent, "child": child, "count": count}
                for (parent, child), count in sorted(
                    self.edges.items(), key=lambda item: (-item[1], item[0])
                )
            ]
        return out


@dataclass(frozen=True)
class HeatProfile:
    """A point-in-time snapshot of observed access heat, per document."""

    docs: dict[str, DocumentHeat]

    def edge_counts(self, doc: str) -> Counter:
        """Traversal counts for ``doc``, keyed ``(parent_id, child_id)`` —
        the exact input shape of
        :func:`repro.partition.workload.workload_edge_weight`."""
        heat = self.docs.get(doc)
        return Counter(heat.edges) if heat is not None else Counter()

    def hottest(self, top: int = 10) -> list[tuple[str, int, int]]:
        """The ``top`` hottest (doc, partition) pairs by touch count."""
        pairs = [
            (heat.doc, pid, stats["touches"])
            for heat in self.docs.values()
            for pid, stats in heat.partitions.items()
        ]
        pairs.sort(key=lambda item: (-item[2], item[0], item[1]))
        return pairs[:top]

    def as_dict(
        self, top: Optional[int] = None, include_edges: bool = False
    ) -> dict[str, Any]:
        return {
            "documents": {
                doc: heat.as_dict(include_edges=include_edges)
                for doc, heat in sorted(self.docs.items())
            },
            "hottest": [
                {"doc": doc, "partition": pid, "touches": touches}
                for doc, pid, touches in self.hottest(top if top else 10)
            ],
        }


class HeatAccumulator:
    """Live per-document access-heat collection over attached stores."""

    def __init__(self):
        self._lock = threading.Lock()
        self._docs: dict[str, _DocHeat] = {}  # repro: guarded-by(_lock)

    def attach(self, doc: str, store) -> None:
        """Start accounting navigation heat for ``store`` under ``doc``.

        The store's hot paths call the pre-bound ``heat_append``
        straight into this doc's buffer — no per-hop callback frame
        (the old closure sink cost ~50% on navigation-bound queries) —
        and ``heat_drain`` folds it at end of query, or every
        ``heat_flush_at`` hops on the cross-record path. Re-attaching
        the same doc id (re-ingest) resets its tallies.
        """
        heat = _DocHeat(store)
        with self._lock:
            self._docs[doc] = heat
        store.heat_drain = heat.drain
        store.heat_flush_at = _FLUSH_AT
        store.heat_buffer = heat.buffer
        store.heat_fault_append = heat.fault_buffer.append
        store.heat_append = heat.buffer.append

    def detach(self, doc: str) -> None:
        """Stop accounting for ``doc`` and drop its tallies."""
        with self._lock:
            heat = self._docs.pop(doc, None)
        if heat is not None and heat.store.heat_buffer is heat.buffer:
            heat.store.heat_append = None
            heat.store.heat_fault_append = None
            heat.store.heat_buffer = None
            heat.store.heat_drain = None

    def docs(self) -> list[str]:
        with self._lock:
            return sorted(self._docs)

    def flush(self) -> None:
        """Drain and fold every attached document's buffers now.

        Callers that want pending memory bounded at a quiet moment of
        their own choosing (between requests, between benchmark samples)
        use this instead of waiting for the :data:`_FOLD_AT` safety
        valve to fire mid-query or paying :meth:`profile`'s full
        orientation pass.
        """
        with self._lock:
            entries = list(self._docs.values())
        for heat in entries:
            heat.drain()
            with heat.lock:
                heat._fold_locked()

    def profile(self) -> HeatProfile:
        """Orient and aggregate the raw tallies (the expensive part —
        deliberately off the navigation hot path)."""
        with self._lock:
            entries = list(self._docs.items())
        profiles: dict[str, DocumentHeat] = {}
        for doc, heat in entries:
            heat.drain()
            with heat.lock:
                heat._fold_locked()
                hops = Counter(heat.hops)
                fault_hops = Counter(heat.fault_hops)
            steps = sum(hops.values())
            faults = sum(fault_hops.values())
            store = heat.store
            nodes = store.tree.nodes
            record_of = store.record_of
            size = len(nodes)
            edges: Counter = Counter()
            partitions: dict[int, dict[str, int]] = {}
            cross_steps = 0
            for packed, count in hops.items():
                source_id = packed >> _PACK_SHIFT
                target_id = packed & _PACK_MASK
                if source_id >= size or target_id >= size:
                    continue  # structural update raced the snapshot
                source, target = nodes[source_id], nodes[target_id]
                if target.parent is source:
                    edges[(source_id, target_id)] += count
                elif source.parent is target:
                    edges[(target_id, source_id)] += count
                else:
                    # sibling hop: benefits both endpoints' parent edges
                    for node in (source, target):
                        if node.parent is not None:
                            edges[(node.parent.node_id, node.node_id)] += count
                target_record = record_of[target_id]
                stats = partitions.setdefault(
                    target_record, {"touches": 0, "cross": 0, "faults": 0}
                )
                stats["touches"] += count
                if record_of[source_id] != target_record:
                    stats["cross"] += count
                    cross_steps += count
            for packed, count in fault_hops.items():
                target_id = packed & _PACK_MASK
                if target_id >= size:
                    continue
                stats = partitions.setdefault(
                    record_of[target_id], {"touches": 0, "cross": 0, "faults": 0}
                )
                stats["faults"] += count
            profiles[doc] = DocumentHeat(
                doc=doc,
                steps=steps,
                cross_steps=cross_steps,
                faults=faults,
                edges=edges,
                partitions=partitions,
            )
        return HeatProfile(docs=profiles)
