"""Low-overhead metrics and tracing core.

Three metric kinds live in a :class:`MetricRegistry`:

* :class:`Counter` — monotonically increasing totals (events, cells,
  page hits),
* :class:`Gauge` — last/maximum observed values (peak resident weight,
  root weight of the last partitioning),
* :class:`Histogram` — count/total/min/max summaries of repeated
  observations; every finished span feeds one automatically.

Trace :class:`Span`s nest through a **thread-local** stack, so
concurrent sessions never interleave paths. A span always measures its
wall time (``.elapsed`` is available to the caller either way) but only
*records* — registry histogram, trace buffer, sinks — while telemetry is
enabled.

The whole module is built around a **no-op fast path**: one module-level
boolean, checked first by every helper. With telemetry disabled (the
default) an instrumented hot loop pays a single attribute load and a
falsy branch per hook — the property the disabled-overhead guard in the
test suite and the ``overhead`` scenario of ``benchmarks/harness.py``
pin down.

Enable globally with ``REPRO_TELEMETRY=1`` in the environment, or
programmatically via :func:`enable` / :func:`enabled_scope` /
:func:`capture`. Recording sinks are pluggable: the in-memory registry
is always on; attach a :class:`JsonLinesSink` to stream completed spans
as JSON lines (see :mod:`repro.telemetry.export` for whole-registry
exports).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Iterator, Optional, Protocol, TextIO


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
        "no",
    )


#: global on/off switch — the no-op fast path checks this first
_enabled: bool = _env_enabled()


def enabled() -> bool:
    """Is telemetry currently recording?"""
    return _enabled


def enable() -> None:
    """Turn recording on for the whole process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn recording off (hooks fall back to the no-op fast path)."""
    global _enabled
    _enabled = False


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force telemetry on (or off); restores the prior state."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing integer total.

    ``inc`` is atomic: ``self.value += n`` alone compiles to separate
    load and store bytecodes, so two threads interleaving there lose
    updates (repro-lint rule CC003). Metrics created through a
    :class:`MetricRegistry` share that registry's lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.RLock] = None):
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self.value = 0  # repro: guarded-by(_lock)

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value; tracks the maximum it ever held.

    ``set``/``set_max`` are compare-and-update sequences, so they hold
    the (per-registry) lock to keep the value/max pair consistent under
    concurrent writers.
    """

    __slots__ = ("name", "value", "max", "_lock")

    def __init__(self, name: str, lock: Optional[threading.RLock] = None):
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self.value: float = 0  # repro: guarded-by(_lock)
        self.max: float = 0  # repro: guarded-by(_lock)

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def set_max(self, value: float) -> None:
        """Keep only the high-water mark (``value`` if it is a new peak)."""
        with self._lock:
            if value > self.max:
                self.max = value
            self.value = self.max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value}, max={self.max})"


#: quantile reservoir size bound; decimation keeps memory constant beyond it
_SAMPLE_CAP = 1024


class Histogram:
    """Streaming count/total/min/max/last summary plus quantile estimates.

    Mean and extrema are exact and constant-memory. Quantiles come from a
    **deterministic decimating reservoir**: every ``stride``-th observation
    is retained; when the reservoir hits :data:`_SAMPLE_CAP` entries, every
    other retained sample is dropped and the stride doubles. No randomness
    — the same observation sequence always yields the same estimates, so
    repeated ``repro-stats`` runs stay diffable.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "last", "_samples", "_stride",
        "_tick", "_lock", "exemplar",
    )

    def __init__(self, name: str, lock: Optional[threading.RLock] = None):
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self.count = 0  # repro: guarded-by(_lock)
        self.total: float = 0.0  # repro: guarded-by(_lock)
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self._samples: list[float] = []  # repro: guarded-by(_lock)
        self._stride = 1  # repro: guarded-by(_lock)
        self._tick = 0  # repro: guarded-by(_lock)
        #: latest ``(trace_id, value)`` annotation, exemplar-style — ties
        #: the aggregate back to one concrete sampled request
        self.exemplar: Optional[tuple[str, float]] = None  # repro: guarded-by(_lock)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.last = value
            if exemplar is not None:
                self.exemplar = (exemplar, value)
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._tick += 1
            if self._tick >= self._stride:
                self._tick = 0
                self._samples.append(value)
                if len(self._samples) >= _SAMPLE_CAP:
                    del self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile estimate over the retained reservoir.

        ``q`` is a fraction in ``[0, 1]``; returns ``None`` before the
        first observation. Exact while ``count < _SAMPLE_CAP``, an
        evenly-decimated approximation afterwards.
        """
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return None
        rank = -(-int(q * 1000) * len(ordered) // 1000)  # ceil without floats drifting
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


# ---------------------------------------------------------------------------
# Trace context — request correlation across threads and the event loop
# ---------------------------------------------------------------------------


#: process-wide span-id mint; ids only need to be unique, not dense
_span_id_lock = threading.Lock()
_span_id_next = 0


def next_span_id() -> int:
    """A fresh process-unique span id (monotonic, thread-safe)."""
    global _span_id_next
    with _span_id_lock:
        _span_id_next += 1
        return _span_id_next


@dataclass(frozen=True)
class TraceContext:
    """The request-scoped identity a span tree hangs from.

    Created once per request (by the service middleware, or by
    :func:`trace_scope` in CLI sessions) and carried in a
    :class:`~contextvars.ContextVar`, so it follows a logical request
    across ``await`` points — unlike the thread-local span stack, which
    is per-OS-thread. ``DocumentService.run_blocking`` copies the
    current context onto the executor thread, so engine spans opened on
    a worker thread still see the request's :class:`TraceContext` and
    join its span tree instead of forming an orphan per-thread trace.

    ``sampled`` is the head-sampling decision: linkage (trace/span ids
    on records) happens for *every* traced request; only retention in
    the :class:`~repro.telemetry.trace.Tracer` ring buffer is gated.
    """

    trace_id: str
    #: span id of the request root (spans opened with no local parent
    #: attach here)
    span_id: int
    #: root span path; child paths extend it slash-joined
    path: str
    depth: int = 0
    sampled: bool = True
    #: span id carried in an inbound ``traceparent`` header, if any
    remote_parent: Optional[str] = None

    def child_of(self, span_id: int, path: str, depth: int) -> "TraceContext":
        """Rebase the context under an already-open span (executor hop)."""
        return replace(self, span_id=span_id, path=path, depth=depth)


_trace_var: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> Optional[TraceContext]:
    """The :class:`TraceContext` of the logical request, if one is active."""
    return _trace_var.get()


def set_trace(ctx: Optional[TraceContext]) -> Token:
    """Install ``ctx`` for the current logical context; returns the reset
    token."""
    return _trace_var.set(ctx)


def reset_trace(token: Token) -> None:
    """Undo a matching :func:`set_trace`."""
    _trace_var.reset(token)


@contextmanager
def trace_scope(ctx: TraceContext) -> Iterator[TraceContext]:
    """Run a block under ``ctx``; restores the previous context on exit."""
    token = _trace_var.set(ctx)
    try:
        yield ctx
    finally:
        _trace_var.reset(token)


# ---------------------------------------------------------------------------
# Spans and sinks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as handed to the registry and the sinks."""

    name: str
    #: slash-joined nesting path, e.g. ``cli.partition/partition.ekm``
    path: str
    seconds: float
    depth: int
    #: ``perf_counter()`` reading at span entry — same arbitrary epoch for
    #: every span of a process, so *offsets* between spans are meaningful
    #: (the Chrome-trace exporter relies on this)
    start: float = 0.0
    error: Optional[str] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: request correlation — set only when the span ran under an active
    #: :class:`TraceContext`
    trace_id: Optional[str] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "path": self.path,
            "seconds": self.seconds,
            "depth": self.depth,
            "start": self.start,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attrs:
            out["attrs"] = self.attrs
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            out["parent_id"] = self.parent_id
        return out


class Sink(Protocol):
    """Anything that wants completed spans pushed to it."""

    def emit(self, record: SpanRecord) -> None: ...  # pragma: no cover


class JsonLinesSink:
    """Streams every completed span as one JSON object per line."""

    def __init__(self, stream: TextIO):
        self.stream = stream
        self.emitted = 0

    def emit(self, record: SpanRecord) -> None:
        import json

        self.stream.write(json.dumps({"kind": "span", **record.as_dict()}) + "\n")
        self.emitted += 1


class MetricRegistry:
    """In-memory sink: all metrics plus a bounded trace of spans."""

    def __init__(self, max_trace: int = 10_000):
        #: reentrant so ``record_span`` can call the locked accessors;
        #: every metric this registry creates shares it
        self._lock = threading.RLock()
        self.counters: dict[str, Counter] = {}  # repro: guarded-by(_lock)
        self.gauges: dict[str, Gauge] = {}  # repro: guarded-by(_lock)
        self.histograms: dict[str, Histogram] = {}  # repro: guarded-by(_lock)
        self.trace: list[SpanRecord] = []  # repro: guarded-by(_lock)
        self.max_trace = max_trace
        self.dropped_spans = 0  # repro: guarded-by(_lock)
        self.sinks: list[Sink] = []  # repro: guarded-by(_lock)
        self.sink_errors = 0  # repro: guarded-by(_lock)

    # get-or-create accessors ------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self.counters.get(name)
            if metric is None:
                metric = self.counters[name] = Counter(name, lock=self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self.gauges.get(name)
            if metric is None:
                metric = self.gauges[name] = Gauge(name, lock=self._lock)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self.histograms.get(name)
            if metric is None:
                metric = self.histograms[name] = Histogram(name, lock=self._lock)
            return metric

    # span intake ------------------------------------------------------------

    def record_span(self, record: SpanRecord) -> None:
        """Fold a finished span into the duration histogram ``span.<name>``,
        keep it in the (bounded) trace, and fan it out to the sinks.

        A sink raising mid-emit must never crash the instrumented
        application (the span fires inside ``__exit__`` of arbitrary hot
        paths), so sink failures are counted in :attr:`sink_errors` and
        the remaining sinks still receive the record.
        """
        with self._lock:
            self.histogram(f"span.{record.name}").observe(record.seconds)
            if len(self.trace) < self.max_trace:
                self.trace.append(record)
            else:
                self.dropped_spans += 1
            sinks = list(self.sinks)
        for sink in sinks:
            try:
                sink.emit(record)
            except Exception:
                with self._lock:
                    self.sink_errors += 1

    def add_sink(self, sink: Sink) -> None:
        with self._lock:
            self.sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        with self._lock:
            self.sinks.remove(sink)

    # lifecycle --------------------------------------------------------------

    def reset(self) -> None:
        """Drop every metric and the trace (sinks stay attached)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.trace.clear()
            self.dropped_spans = 0
            self.sink_errors = 0

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.trace)


#: the process-wide default registry (swappable for tests / CLI sessions)
_registry = MetricRegistry()


def registry() -> MetricRegistry:
    """The registry hooks currently record into."""
    return _registry


def set_registry(new: MetricRegistry) -> MetricRegistry:
    """Swap the global registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = new
    return previous


@contextmanager
def capture(enabled_: bool = True) -> Iterator[MetricRegistry]:
    """A measurement session: fresh registry + telemetry on (by default).

    Restores both the previous registry and the previous enabled state,
    so tests and CLI commands can measure without leaking global state::

        with telemetry.capture() as reg:
            partition_tree(tree, 256, "ekm")
        print(reg.counters["partition.ekm.runs"].value)
    """
    fresh = MetricRegistry()
    previous = set_registry(fresh)
    with enabled_scope(enabled_):
        try:
            yield fresh
        finally:
            set_registry(previous)


# ---------------------------------------------------------------------------
# Module-level helpers — the instrumentation surface used by hooks.
# Each begins with the disabled fast path.
# ---------------------------------------------------------------------------


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (no-op while disabled)."""
    if not _enabled:
        return
    _registry.counter(name).inc(n)


def observe(name: str, value: float, exemplar: Optional[str] = None) -> None:
    """Feed ``value`` into histogram ``name`` (no-op while disabled).

    ``exemplar`` optionally annotates the histogram with the trace id of
    the request that produced this observation (Prometheus
    exemplar-style; surfaced by :func:`prometheus_text`).
    """
    if not _enabled:
        return
    _registry.histogram(name).observe(value, exemplar=exemplar)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if not _enabled:
        return
    _registry.gauge(name).set(value)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if it is a new peak (no-op while
    disabled)."""
    if not _enabled:
        return
    _registry.gauge(name).set_max(value)


def clock() -> float:
    """A monotonic clock reading in seconds (arbitrary epoch).

    The sanctioned escape hatch for code that cannot scope a
    :class:`Span` around the region it measures. The span stack is
    **thread-local**, which is exactly right for threads but wrong for
    asyncio: one event-loop thread interleaves many logical requests, so
    a span opened before an ``await`` would adopt whatever request
    happens to be on top of the stack when it closes. Such callers take
    two :func:`clock` readings and feed the difference to
    :func:`observe` — keeping OBS001's property that only
    :mod:`repro.telemetry` ever reads the process clock.
    """
    return perf_counter()


# thread-local span stack
_tls = threading.local()


def _span_stack() -> list["Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread, if any is being recorded."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class Span:
    """A nestable timed section, used as a context manager.

    Always measures wall time — ``.elapsed`` is valid after exit whether
    or not telemetry records anything — so callers that need the duration
    (CLI output, benchmark tables) never fall back to manual
    ``time.perf_counter()`` pairs (which ``repro-lint`` rule OBS001
    forbids outside this package).

    Exception-safe: the thread-local stack is unwound in ``__exit__``
    even when the body raises, and the resulting :class:`SpanRecord`
    carries the exception class name in ``error``. Exceptions are never
    swallowed.
    """

    __slots__ = (
        "name", "attrs", "path", "depth", "elapsed", "_recording", "_start",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self.elapsed: float = 0.0
        self._recording = False
        self._start: float = 0.0
        self.trace_id: Optional[str] = None
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    def __enter__(self) -> "Span":
        self._recording = _enabled
        if self._recording:
            stack = _span_stack()
            if stack:
                parent = stack[-1]
                self.path = f"{parent.path}/{self.name}"
                self.depth = len(stack)
                if parent.trace_id is not None:
                    self.trace_id = parent.trace_id
                    self.parent_id = parent.span_id
                    self.span_id = next_span_id()
            else:
                ctx = _trace_var.get()
                if ctx is not None:
                    # Root of a thread-local subtree under an active
                    # request: hang it off the request's context so the
                    # whole tree joins one trace.
                    self.path = f"{ctx.path}/{self.name}"
                    self.depth = ctx.depth + 1
                    self.trace_id = ctx.trace_id
                    self.parent_id = ctx.span_id
                    self.span_id = next_span_id()
            stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = perf_counter() - self._start
        if self._recording:
            stack = _span_stack()
            # Unwind defensively: this span may not be on top if an inner
            # span escaped its `with` block through an exception.
            while stack:
                top = stack.pop()
                if top is self:
                    break
            _registry.record_span(
                SpanRecord(
                    name=self.name,
                    path=self.path,
                    seconds=self.elapsed,
                    depth=self.depth,
                    start=self._start,
                    error=exc_type.__name__ if exc_type is not None else None,
                    attrs=self.attrs,
                    trace_id=self.trace_id,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                )
            )
        return False  # never swallow exceptions


def span(name: str, **attrs: Any) -> Span:
    """Open a trace span: ``with telemetry.span("query.run") as sp: ...``."""
    return Span(name, attrs)
