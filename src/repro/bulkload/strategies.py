"""Streaming cut strategies: the per-close logic of KM, RS and EKM.

Each strategy consumes a closing element's *frame* (its weight plus
summaries of its already-closed children) and decides which partitions to
emit right now, returning the summary the parent will see. This is the
core of main-memory friendliness: everything an emitted partition needs
has already been seen, and nothing about it is needed later.

The strategies replicate their batch counterparts' decisions exactly
(same orders, same tie-breaks); tests assert equality of the resulting
partitionings.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import InfeasiblePartitioningError
from repro.partition.interval import SiblingInterval

#: callback: (interval, freed_weight) -> None
EmitFn = Callable[[SiblingInterval, int], None]


@dataclass
class ChildSummary:
    """What a parent remembers about a closed child subtree."""

    node_id: int
    own_weight: int
    #: KM/RS: residual subtree weight (uncut part); EKM: binary residual,
    #: filled in when the parent closes.
    residual: int = 0
    #: True once the child's component was emitted (close cut or spill).
    emitted: bool = False
    # EKM bookkeeping for the left (first-child) binary edge:
    first_child: int = -1
    first_chain_end: int = -1
    res_first: int = 0


@dataclass
class Frame:
    """An open element: weight so far plus closed-children summaries."""

    node_id: int
    weight: int
    children: list[ChildSummary] = field(default_factory=list)

    def uncut_children(self) -> list[ChildSummary]:
        return [c for c in self.children if not c.emitted]


class StreamStrategy(abc.ABC):
    """One streaming partitioning algorithm."""

    name: str = "abstract"

    def __init__(self, limit: int, emit: EmitFn):
        self.limit = limit
        self.emit = emit

    @abc.abstractmethod
    def close(self, frame: Frame) -> ChildSummary:
        """Handle a closing element; emit partitions; return its summary."""

    @abc.abstractmethod
    def spill(self, frame: Frame) -> int:
        """Emit one partition from an *open* frame to free memory.

        Returns the freed weight (0 if nothing can be spilled here).
        """

    def leaf_summary(self, node_id: int, weight: int) -> ChildSummary:
        """Summary for text/attribute leaves (never cut on their own
        unless a parent decides so)."""
        return ChildSummary(node_id=node_id, own_weight=weight, residual=weight)

    def spillable_weight(self, frame: Frame) -> int:
        """Weight a spill on this frame could free (for frame selection)."""
        return sum(c.residual for c in frame.uncut_children())


class KMStreamStrategy(StreamStrategy):
    """Streaming Kundu-Misra: cut heaviest closed child until it fits."""

    name = "km"

    def close(self, frame: Frame) -> ChildSummary:
        rest = frame.weight + sum(c.residual for c in frame.uncut_children())
        if rest > self.limit:
            for child in sorted(
                frame.uncut_children(), key=lambda c: -c.residual
            ):
                if rest <= self.limit:
                    break
                self.emit(SiblingInterval(child.node_id, child.node_id), child.residual)
                rest -= child.residual
                child.emitted = True
        if rest > self.limit:
            raise InfeasiblePartitioningError(
                f"node {frame.node_id} cannot be reduced below K={self.limit}",
                node_id=frame.node_id,
            )
        return ChildSummary(frame.node_id, frame.weight, residual=rest)

    def spill(self, frame: Frame) -> int:
        candidates = frame.uncut_children()
        if not candidates:
            return 0
        child = max(candidates, key=lambda c: c.residual)
        self.emit(SiblingInterval(child.node_id, child.node_id), child.residual)
        child.emitted = True
        return child.residual


class RSStreamStrategy(StreamStrategy):
    """Streaming rightmost-siblings: pack maximal right-to-left runs."""

    name = "rs"

    def close(self, frame: Frame) -> ChildSummary:
        rest = frame.weight + sum(c.residual for c in frame.uncut_children())
        while rest > self.limit:
            freed = self._pack_rightmost_run(frame, rest)
            if freed == 0:
                raise InfeasiblePartitioningError(
                    f"node {frame.node_id} cannot be reduced below K={self.limit}",
                    node_id=frame.node_id,
                )
            rest -= freed
        return ChildSummary(frame.node_id, frame.weight, residual=rest)

    def _pack_rightmost_run(self, frame: Frame, rest: int) -> int:
        """One right-to-left run, mirroring the batch RS inner loop."""
        kids = frame.children
        end = len(kids) - 1
        while end >= 0 and kids[end].emitted:
            end -= 1
        if end < 0:
            return 0
        weight = kids[end].residual
        remaining = rest - weight
        begin = end
        while remaining > self.limit and begin > 0:
            prev = kids[begin - 1]
            if prev.emitted or weight + prev.residual > self.limit:
                break
            begin -= 1
            weight += prev.residual
            remaining -= prev.residual
        for i in range(begin, end + 1):
            kids[i].emitted = True
        self.emit(SiblingInterval(kids[begin].node_id, kids[end].node_id), weight)
        return weight

    def spill(self, frame: Frame) -> int:
        """Spill one run packed to the limit (no residual target)."""
        kids = frame.children
        end = len(kids) - 1
        while end >= 0 and kids[end].emitted:
            end -= 1
        if end < 0:
            return 0
        weight = kids[end].residual
        begin = end
        while begin > 0:
            prev = kids[begin - 1]
            if prev.emitted or weight + prev.residual > self.limit:
                break
            begin -= 1
            weight += prev.residual
        for i in range(begin, end + 1):
            kids[i].emitted = True
        self.emit(SiblingInterval(kids[begin].node_id, kids[end].node_id), weight)
        return weight


class EKMStreamStrategy(StreamStrategy):
    """Streaming enhanced Kundu-Misra: binary cuts at parent close.

    When an element closes, its children are processed right-to-left —
    exactly binary postorder for that sibling group — computing each
    child's binary residual and cutting the heavier binary edge while the
    residual exceeds the limit (ties prefer the left/first-child edge,
    like the batch implementation).
    """

    name = "ekm"

    def close(self, frame: Frame) -> ChildSummary:
        kids = frame.children
        res_next = 0  # binary residual of the (uncut) right sibling chain
        chain_end_next = -1  # last node of that chain
        for i in range(len(kids) - 1, -1, -1):
            child = kids[i]
            if child.emitted:
                if res_next > 0:
                    # Siblings that arrived *after* a spill emitted this
                    # component are orphans: their binary parent edge
                    # leads into an already-emitted partition, so no later
                    # cut could ever detach them. Emit the group as its
                    # own partition (this only happens after spills; pure
                    # close-time EKM never creates orphans).
                    self.emit(
                        SiblingInterval(kids[i + 1].node_id, chain_end_next),
                        res_next,
                    )
                    kids[i + 1].emitted = True
                # The right edge of this child's left neighbour is
                # effectively cut.
                res_next = 0
                chain_end_next = -1
                continue
            rest = child.own_weight + child.res_first + res_next
            while rest > self.limit:
                left, right = child.res_first, res_next
                if left == 0 and right == 0:
                    raise InfeasiblePartitioningError(
                        f"node {child.node_id} cannot be reduced below "
                        f"K={self.limit}",
                        node_id=child.node_id,
                    )
                if left >= right:
                    self.emit(
                        SiblingInterval(child.first_child, child.first_chain_end),
                        left,
                    )
                    child.res_first = 0
                else:
                    nxt = kids[i + 1]
                    self.emit(SiblingInterval(nxt.node_id, chain_end_next), right)
                    nxt.emitted = True
                    res_next = 0
                    chain_end_next = -1
                rest = child.own_weight + child.res_first + res_next
            child.residual = rest
            if res_next == 0 or chain_end_next == -1:
                chain_end_next = child.node_id
            res_next = rest
        summary = ChildSummary(frame.node_id, frame.weight)
        first = kids[0] if kids else None
        if first is not None and not first.emitted:
            summary.first_child = first.node_id
            summary.first_chain_end = chain_end_next
            summary.res_first = res_next
        summary.residual = summary.own_weight + summary.res_first
        return summary

    def spill(self, frame: Frame) -> int:
        """Pack the rightmost run of closed children into one partition.

        Unlike close-time EKM the right-sibling chain is still growing, so
        the spilled run can never profit from siblings yet to come — the
        quality-for-memory trade of Sec. 4.3. Each child contributes its
        whole component (itself plus its uncut first-child chain); a child
        whose component alone exceeds the limit first sheds that chain as
        a separate partition.
        """
        kids = frame.children
        end = len(kids) - 1
        while end >= 0 and kids[end].emitted:
            end -= 1
        if end < 0:
            return 0
        last = kids[end]
        weight = last.own_weight + last.res_first
        if weight > self.limit:
            # The component is only over the limit because of its left
            # chain (own_weight <= K is checked upstream): emit the chain.
            self.emit(
                SiblingInterval(last.first_child, last.first_chain_end),
                last.res_first,
            )
            freed = last.res_first
            last.res_first = 0
            return freed
        begin = end
        while begin > 0:
            prev = kids[begin - 1]
            if prev.emitted:
                break
            prev_weight = prev.own_weight + prev.res_first
            if weight + prev_weight > self.limit:
                break
            begin -= 1
            weight += prev_weight
        for i in range(begin, end + 1):
            kids[i].emitted = True
        self.emit(SiblingInterval(kids[begin].node_id, kids[end].node_id), weight)
        return weight

    def spillable_weight(self, frame: Frame) -> int:
        return sum(c.own_weight + c.res_first for c in frame.uncut_children())


STRATEGY_CLASSES: dict[str, type[StreamStrategy]] = {
    cls.name: cls
    for cls in (KMStreamStrategy, RSStreamStrategy, EKMStreamStrategy)
}
