"""Crash-safe bulk load: the append-only import journal and resume.

A multi-gigabyte import that dies at 90% should not start over from
nothing — and, worse, must never leave a store that *looks* complete.
The journal makes the streaming importer's progress durable:

* ``begin`` — one header line (format version, algorithm, weight limit,
  spill threshold, a fingerprint of the source document), fsync'd before
  any partition is considered sealed;
* ``seal`` — appended at every **spill boundary** with the parse-event
  high-water mark and the sibling intervals emitted since the previous
  seal, then fsync'd — everything up to this line survives any crash;
* ``commit`` — the final line, written only after the last partition was
  decided; its absence is how :func:`resume_import` recognizes an
  interrupted run.

Records are JSON lines, so a torn final line (a crash between ``write``
and ``fsync``) is recognizable and ignored; torn or reordered *interior*
lines raise :class:`~repro.errors.JournalError`.

Resume is **verified deterministic replay**: the streaming strategies
are pure functions of the event stream (pinned by the batch-equivalence
tests), so :func:`resume_import` re-runs the import with the journaled
parameters and cross-checks every sealed interval against the journal as
it passes the corresponding boundary. Any divergence — a changed source
document, a corrupted journal, nondeterminism — fails loudly instead of
producing a silently different store; agreement guarantees the resumed
result (and the store built from it) is byte-identical to an
uninterrupted run, which the fault matrix (:mod:`repro.faults.matrix`)
asserts at every crash point.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from typing import IO, Optional

from repro.errors import JournalError
from repro.partition.interval import SiblingInterval

#: journal format identifier (first line of every journal)
JOURNAL_SCHEMA = "repro-journal/1"


def source_fingerprint(source) -> Optional[str]:
    """SHA-256 of the source document, when it is cheaply re-readable.

    Paths and in-memory documents hash their full contents; unseekable
    streams return ``None`` (they cannot be resumed anyway — replay
    needs to re-read the document from the start).
    """
    if isinstance(source, bytes):
        return hashlib.sha256(source).hexdigest()
    if isinstance(source, str):
        if source.lstrip()[:1] == "<":  # document text (parser heuristic)
            return hashlib.sha256(source.encode("utf-8")).hexdigest()
        return _hash_file(source)
    if isinstance(source, os.PathLike):
        return _hash_file(os.fspath(source))
    return None


def _hash_file(path: str) -> Optional[str]:
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 16), b""):
                digest.update(chunk)
    except OSError:
        return None
    return digest.hexdigest()


class ImportJournal:
    """Append-only writer for one bulk-load run.

    Every record is one JSON line; ``seal`` and ``commit`` flush and
    ``os.fsync`` before returning, so a crash immediately after a fault
    point finds the sealed prefix on disk.

    **Single-writer, fork-unsafe.** ``_handle`` is an open file
    descriptor: sharing one journal across threads interleaves half
    lines, and inheriting it across ``fork`` (repro-lint rule CC002)
    leaves parent and child racing the same file offset. The streaming
    importer honors this by journaling only from the coordinating
    process — :mod:`repro.fastpath.parallel` workers never see it; they
    return results and the coordinator appends.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._handle: Optional[IO[str]] = None
        self.seals = 0

    def open(self) -> "ImportJournal":
        self._handle = io.open(self.path, "a", encoding="utf-8")
        return self

    def begin(
        self,
        *,
        algorithm: str,
        limit: int,
        spill_threshold: Optional[int],
        strip_whitespace: bool,
        source_sha256: Optional[str],
    ) -> None:
        self._append(
            {
                "kind": "begin",
                "schema": JOURNAL_SCHEMA,
                "algorithm": algorithm,
                "limit": limit,
                "spill_threshold": spill_threshold,
                "strip_whitespace": strip_whitespace,
                "source_sha256": source_sha256,
            }
        )

    def seal(self, events: int, intervals: list[SiblingInterval]) -> None:
        """Make every partition emitted so far durable (spill boundary)."""
        self.seals += 1
        self._append(
            {
                "kind": "seal",
                "events": events,
                "intervals": [[iv.left, iv.right] for iv in intervals],
            }
        )

    def commit(self, events: int, intervals: list[SiblingInterval], nodes: int) -> None:
        self._append(
            {
                "kind": "commit",
                "events": events,
                "intervals": [[iv.left, iv.right] for iv in intervals],
                "nodes": nodes,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is not open")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())


@dataclass
class JournalState:
    """Everything :func:`read_journal` recovered from a journal file."""

    path: str
    header: dict
    #: cumulative sealed intervals, in emission order
    sealed_intervals: list[SiblingInterval] = field(default_factory=list)
    #: per-seal (event high-water mark, number of intervals sealed so far)
    seal_marks: list[tuple[int, int]] = field(default_factory=list)
    committed: bool = False
    commit: Optional[dict] = None

    @property
    def sealed_events(self) -> int:
        """Parse-event high-water mark of the last durable seal."""
        return self.seal_marks[-1][0] if self.seal_marks else 0


def read_journal(path: str | os.PathLike) -> JournalState:
    """Parse a (possibly crash-truncated) journal into a
    :class:`JournalState`.

    A torn **final** line is ignored — that is the expected shape of a
    crash between ``write`` and ``fsync``. Anything else malformed
    (missing header, torn interior line, seal after commit, regressing
    event marks) raises :class:`~repro.errors.JournalError`.
    """
    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().split("\n")
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    if lines and lines[-1] == "":
        lines.pop()
    records: list[dict] = []
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                break  # torn tail from a crash mid-write; the prefix rules
            raise JournalError(
                f"journal {path}: corrupt interior line {index + 1}"
            ) from None
        if not isinstance(record, dict) or "kind" not in record:
            raise JournalError(f"journal {path}: line {index + 1} is not a record")
        records.append(record)
    if not records or records[0].get("kind") != "begin":
        raise JournalError(f"journal {path}: missing begin header")
    header = records[0]
    if header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"journal {path}: unsupported schema {header.get('schema')!r}"
        )
    state = JournalState(path=path, header=header)
    for record in records[1:]:
        kind = record.get("kind")
        if state.committed:
            raise JournalError(f"journal {path}: records after commit")
        if kind not in ("seal", "commit"):
            raise JournalError(f"journal {path}: unknown record kind {kind!r}")
        try:
            events = int(record["events"])
            intervals = [SiblingInterval(int(l), int(r)) for l, r in record["intervals"]]
        except (KeyError, TypeError, ValueError):
            raise JournalError(f"journal {path}: malformed {kind} record") from None
        if events < state.sealed_events:
            raise JournalError(f"journal {path}: event high-water mark regressed")
        state.sealed_intervals.extend(intervals)
        if kind == "seal":
            state.seal_marks.append((events, len(state.sealed_intervals)))
        else:
            state.committed = True
            state.commit = record
    return state


def resume_import(source, journal_path: str | os.PathLike):
    """Resume (or verify) a journaled bulk load after a crash.

    Re-runs the import with the parameters recorded in the journal
    header, verifying the deterministic replay against every sealed
    interval; new spill boundaries past the old high-water mark are
    appended to the same journal, and the commit record is written at
    the end — so a resumed run leaves exactly the journal an
    uninterrupted run would have.

    Returns the completed :class:`~repro.bulkload.importer.ImportResult`
    (marked ``resumed=True``). Raises
    :class:`~repro.errors.JournalError` when the journal disagrees with
    the source document or the replay.
    """
    from repro.bulkload.importer import BulkLoader

    state = read_journal(journal_path)
    header = state.header
    fingerprint = source_fingerprint(source)
    recorded = header.get("source_sha256")
    if fingerprint is not None and recorded is not None and fingerprint != recorded:
        raise JournalError(
            f"journal {state.path}: source document changed since the "
            f"interrupted run (sha256 {fingerprint[:12]} != {recorded[:12]})"
        )
    loader = BulkLoader(
        algorithm=header["algorithm"],
        limit=header["limit"],
        spill_threshold=header["spill_threshold"],
        strip_whitespace=header.get("strip_whitespace", True),
    )
    return loader.load(source, journal_path=journal_path, _resume_state=state)
