"""The streaming bulkloader: events in, partitions out.

:class:`BulkLoader` consumes a parse-event stream exactly like the
:func:`~repro.xmlio.parser.tree_from_events` builder (same node-id
assignment, same whitespace handling — tests pin this equivalence), but
pushes every closing subtree through a streaming cut strategy
(:mod:`repro.bulkload.strategies`). Partitions are *emitted* the moment
they are decided; the loader tracks the resident weight a real importer
would hold — everything parsed but not yet emitted — and reports its
peak.

The spill threshold implements Sec. 4.3's memory bound: whenever the
resident weight exceeds it, the loader forces partitions out of the open
frames (largest accumulation first) until it fits again. Spilling
degrades partition quality but caps memory at roughly
``threshold + K × document_height``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro import telemetry
from repro.errors import (
    InfeasiblePartitioningError,
    JournalError,
    ReproError,
    XmlFormatError,
)
from repro.bulkload.journal import ImportJournal, JournalState, source_fingerprint
from repro.bulkload.strategies import (
    ChildSummary,
    Frame,
    STRATEGY_CLASSES,
    StreamStrategy,
)
from repro.faults import plan as faults
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import NodeKind, Tree
from repro.xmlio.events import (
    Characters,
    EndDocument,
    EndElement,
    ParseEvent,
    StartDocument,
    StartElement,
)
from repro.xmlio.parser import Source, iter_events
from repro.xmlio.weights import SlotWeightModel

#: streaming algorithms available to the loader
STREAMING_STRATEGIES = tuple(STRATEGY_CLASSES)


@dataclass
class ImportResult:
    """Everything the bulkloader learned while importing."""

    partitioning: Partitioning
    tree: Tree
    peak_resident_weight: int
    final_resident_weight: int
    total_weight: int
    emitted_partitions: int
    spills: int
    events: int
    #: seal boundaries made durable in the journal (0 without one)
    seals: int = 0
    #: True when this result came from :func:`~repro.bulkload.journal.resume_import`
    resumed: bool = False

    @property
    def peak_resident_fraction(self) -> float:
        """Peak resident weight relative to the whole document."""
        return self.peak_resident_weight / self.total_weight if self.total_weight else 0.0


class BulkLoader:
    """Streaming document import with a pluggable cut strategy.

    Parameters
    ----------
    algorithm:
        ``"km"``, ``"rs"`` or ``"ekm"`` (the main-memory-friendly
        heuristics; EKM is the paper's recommendation).
    limit:
        Partition weight limit ``K``.
    spill_threshold:
        Optional resident-weight bound; ``None`` disables spilling, in
        which case the result is identical to the batch algorithm.
    """

    def __init__(
        self,
        algorithm: str = "ekm",
        limit: int = 256,
        spill_threshold: Optional[int] = None,
        weight_model: Optional[SlotWeightModel] = None,
        strip_whitespace: bool = True,
    ):
        if algorithm not in STRATEGY_CLASSES:
            raise ReproError(
                f"unknown streaming algorithm {algorithm!r}; "
                f"available: {', '.join(STRATEGY_CLASSES)}"
            )
        if spill_threshold is not None and spill_threshold < limit:
            raise ReproError("spill threshold must be at least the weight limit K")
        self.algorithm = algorithm
        self.limit = limit
        self.spill_threshold = spill_threshold
        self.wm = weight_model or SlotWeightModel()
        self.strip_whitespace = strip_whitespace

    def load(
        self,
        source: Source,
        journal_path: Optional[str] = None,
        _resume_state: Optional[JournalState] = None,
    ) -> ImportResult:
        """Import from any XML source (path, text, bytes, stream).

        With ``journal_path`` the import is crash-safe: progress is made
        durable at every spill boundary (see
        :mod:`repro.bulkload.journal`), and an interrupted run can be
        completed with :func:`~repro.bulkload.journal.resume_import`.
        """
        if journal_path is None:
            return self.load_events(iter_events(source))
        journal = ImportJournal(journal_path)
        if _resume_state is None:
            if os.path.exists(journal.path) and os.path.getsize(journal.path) > 0:
                raise JournalError(
                    f"journal {journal.path} already exists; an interrupted "
                    "run must be completed with resume_import()"
                )
            journal.open()
            journal.begin(
                algorithm=self.algorithm,
                limit=self.limit,
                spill_threshold=self.spill_threshold,
                strip_whitespace=self.strip_whitespace,
                source_sha256=source_fingerprint(source),
            )
        else:
            journal.open()
        try:
            return self.load_events(
                iter_events(source), journal=journal, resume=_resume_state
            )
        finally:
            journal.close()

    def load_events(
        self,
        events: Iterable[ParseEvent],
        journal: Optional[ImportJournal] = None,
        resume: Optional[JournalState] = None,
    ) -> ImportResult:
        with telemetry.span("bulkload.import", algorithm=self.algorithm):
            state = _LoadState(self, journal=journal, resume=resume)
            for event in events:
                state.handle(event)
            result = state.finish()
        if telemetry.enabled():
            telemetry.count("bulkload.runs")
            telemetry.count("bulkload.events", result.events)
            telemetry.count("bulkload.spills", result.spills)
            telemetry.count("bulkload.partitions", result.emitted_partitions)
            telemetry.count("bulkload.nodes", len(result.tree))
            telemetry.gauge_max(
                "bulkload.peak_resident_weight", result.peak_resident_weight
            )
        return result


def bulk_import(
    source: Source,
    algorithm: str = "ekm",
    limit: int = 256,
    spill_threshold: Optional[int] = None,
    journal_path: Optional[str] = None,
) -> ImportResult:
    """One-call streaming import."""
    return BulkLoader(algorithm, limit, spill_threshold).load(
        source, journal_path=journal_path
    )


class _LoadState:
    """Mutable per-import state (tree under construction, frames, stats)."""

    def __init__(
        self,
        loader: BulkLoader,
        journal: Optional[ImportJournal] = None,
        resume: Optional[JournalState] = None,
    ):
        self.loader = loader
        self.journal = journal
        self.resume = resume
        self.intervals: list[SiblingInterval] = []
        self.resident = 0
        self.peak_resident = 0
        self.total_weight = 0
        self.spills = 0
        self.events = 0
        self.seals = 0
        #: intervals already covered by a seal (or seal verification)
        self._sealed_intervals = 0
        self.tree: Optional[Tree] = None
        self.frames: list[Frame] = []
        self.pending_text: list[str] = []
        self.strategy: StreamStrategy = STRATEGY_CLASSES[loader.algorithm](
            loader.limit, self._emit
        )
        self.root_summary: Optional[ChildSummary] = None

    # -- emission & memory accounting -------------------------------------

    def _emit(self, interval: SiblingInterval, freed_weight: int) -> None:
        resume = self.resume
        if resume is not None:
            index = len(self.intervals)
            if index < len(resume.sealed_intervals):
                sealed = resume.sealed_intervals[index]
                if sealed != interval:
                    raise JournalError(
                        f"journal {resume.path}: replay diverged at partition "
                        f"{index}: journal sealed {sealed}, replay emitted "
                        f"{interval} — the source document or journal changed"
                    )
        self.intervals.append(interval)
        self.resident -= freed_weight

    def _grow(self, weight: int) -> None:
        if weight > self.loader.limit:
            raise InfeasiblePartitioningError(
                f"a node of weight {weight} exceeds K={self.loader.limit}"
            )
        self.resident += weight
        self.total_weight += weight
        if self.resident > self.peak_resident:
            self.peak_resident = self.resident

    def _maybe_spill(self) -> None:
        threshold = self.loader.spill_threshold
        if threshold is None:
            return
        spilled = False
        while self.resident > threshold:
            frame = max(
                self.frames,
                key=self.strategy.spillable_weight,
                default=None,
            )
            if frame is None or self.strategy.spillable_weight(frame) == 0:
                break  # nothing spillable; open nodes dominate
            freed = self.strategy.spill(frame)
            if freed <= 0:
                break
            self.spills += 1
            spilled = True
        if spilled:
            self._seal_boundary()

    def _seal_boundary(self) -> None:
        """Make every partition emitted so far durable, then give the
        fault plan its crash window.

        During resume, boundaries inside the journal's sealed prefix are
        *verified* against the recorded seal instead of re-appended; a
        mismatch means the replay is not the run the journal describes.
        The ``bulkload.spill`` fault point fires after the seal fsync'd —
        a crash here is exactly what resume must recover from.
        """
        self.seals += 1
        resume = self.resume
        if (
            resume is not None
            and self.journal is not None
            and self.seals <= len(resume.seal_marks)
        ):
            mark_events, mark_count = resume.seal_marks[self.seals - 1]
            if mark_events != self.events or mark_count != len(self.intervals):
                raise JournalError(
                    f"journal {resume.path}: replay seal {self.seals} at "
                    f"event {self.events} with {len(self.intervals)} "
                    f"partitions does not match the journaled boundary "
                    f"(event {mark_events}, {mark_count} partitions)"
                )
        elif self.journal is not None:
            self.journal.seal(self.events, self.intervals[self._sealed_intervals:])
        self._sealed_intervals = len(self.intervals)
        if faults.armed():
            faults.check("bulkload.spill", seal=self.seals, events=self.events)

    # -- event handling ----------------------------------------------------

    def handle(self, event: ParseEvent) -> None:
        self.events += 1
        if isinstance(event, StartElement):
            self._flush_text()
            self._start_element(event)
        elif isinstance(event, EndElement):
            self._flush_text()
            self._end_element()
        elif isinstance(event, Characters):
            self.pending_text.append(event.text)
        elif isinstance(event, (StartDocument, EndDocument)):
            pass

    def _start_element(self, event: StartElement) -> None:
        wm = self.loader.wm
        weight = wm.element_weight()
        if self.tree is None:
            self.tree = Tree(event.name, weight, NodeKind.ELEMENT)
            node = self.tree.root
        else:
            if not self.frames:
                raise XmlFormatError("multiple document elements")
            parent = self.tree.node(self.frames[-1].node_id)
            node = self.tree.add_child(parent, event.name, weight, NodeKind.ELEMENT)
        self._grow(weight)
        frame = Frame(node_id=node.node_id, weight=weight)
        self.frames.append(frame)
        for name, value in event.attributes:
            aw = wm.attribute_weight(value)
            attr = self.tree.add_child(node, name, aw, NodeKind.ATTRIBUTE, value)
            self._grow(aw)
            frame.children.append(self.strategy.leaf_summary(attr.node_id, aw))
        self._maybe_spill()

    def _flush_text(self) -> None:
        if not self.pending_text:
            return
        text = "".join(self.pending_text)
        self.pending_text.clear()
        if self.loader.strip_whitespace and not text.strip():
            return
        if self.tree is None or not self.frames:
            raise XmlFormatError("character data outside the document element")
        weight = self.loader.wm.text_weight(text)
        parent = self.tree.node(self.frames[-1].node_id)
        node = self.tree.add_child(parent, "#text", weight, NodeKind.TEXT, text)
        self._grow(weight)
        self.frames[-1].children.append(self.strategy.leaf_summary(node.node_id, weight))
        self._maybe_spill()

    def _end_element(self) -> None:
        if not self.frames:
            raise XmlFormatError("unbalanced closing tag")
        frame = self.frames.pop()
        summary = self.strategy.close(frame)
        if self.frames:
            self.frames[-1].children.append(summary)
        else:
            self.root_summary = summary
        self._maybe_spill()

    # -- completion ---------------------------------------------------------

    def finish(self) -> ImportResult:
        if self.tree is None:
            raise XmlFormatError("document contains no elements")
        if self.frames:
            raise XmlFormatError("document ended with unclosed elements")
        summary = self.root_summary
        assert summary is not None
        # EKM: the root's own binary residual check happens here, because
        # the root has no parent-close to do it (see strategies module).
        if summary.own_weight + summary.res_first > self.loader.limit and summary.res_first:
            self._emit(
                SiblingInterval(summary.first_child, summary.first_chain_end),
                summary.res_first,
            )
        root_iv = SiblingInterval(self.tree.root.node_id, self.tree.root.node_id)
        self.intervals.append(root_iv)
        self.resident = max(0, self.resident)
        # The finalize fault point fires *before* the commit record: a
        # crash here leaves a sealed-but-uncommitted journal, the state
        # resume_import() exists to recover from.
        if faults.armed():
            faults.check("bulkload.finalize", events=self.events)
        self._commit_journal()
        return ImportResult(
            partitioning=Partitioning(self.intervals),
            tree=self.tree,
            peak_resident_weight=self.peak_resident,
            final_resident_weight=self.resident,
            total_weight=self.total_weight,
            emitted_partitions=len(self.intervals),
            spills=self.spills,
            events=self.events,
            seals=self.seals,
            resumed=self.resume is not None,
        )

    def _commit_journal(self) -> None:
        if self.journal is None:
            return
        tail = self.intervals[self._sealed_intervals:]
        nodes = len(self.tree) if self.tree is not None else 0
        resume = self.resume
        if resume is not None and resume.committed:
            # Resuming an already-committed journal: pure verification.
            commit = resume.commit or {}
            recorded = [
                SiblingInterval(int(lo), int(hi))
                for lo, hi in commit.get("intervals", [])
            ]
            if (
                int(commit.get("events", -1)) != self.events
                or int(commit.get("nodes", -1)) != nodes
                or recorded != tail
            ):
                raise JournalError(
                    f"journal {resume.path}: committed run does not match "
                    "the replay — the source document or journal changed"
                )
            return
        self.journal.commit(self.events, tail, nodes)
