"""Streaming document import (paper Sec. 4.1, 4.3 and ref. [10]).

A *main-memory friendly* partitioning algorithm can assign nodes to
partitions before it has seen the whole document. This package contains
streaming implementations of the bottom-up heuristics (KM, RS, EKM) that
consume a parse-event stream, emit partitions as soon as subtrees close,
and — via the spill threshold of Sec. 4.3 — bound peak memory even for
the worst case of one giant fan-out under the root, at some cost in
partitioning quality (ablation A4).

Without a spill threshold the streaming algorithms produce *bit-identical*
partitionings to their batch counterparts (enforced by tests).
"""

from repro.bulkload.importer import (
    BulkLoader,
    ImportResult,
    STREAMING_STRATEGIES,
    bulk_import,
)
from repro.bulkload.journal import (
    ImportJournal,
    JournalState,
    read_journal,
    resume_import,
    source_fingerprint,
)

__all__ = [
    "BulkLoader",
    "ImportResult",
    "STREAMING_STRATEGIES",
    "bulk_import",
    "ImportJournal",
    "JournalState",
    "read_journal",
    "resume_import",
    "source_fingerprint",
]
