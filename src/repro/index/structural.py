"""The structural index: pre/post/level columns + partition windows.

All columns are typed ``array('q')`` vectors indexed by **node id** (or,
for ``node_at``, by preorder rank), built in a single iterative DFS over
the store's tree — O(n) time, ~8 bytes per column per node, no Python
object per node. The index is a *secondary* structure: it never owns
document data, so dropping or rebuilding it is always safe.

Validity: the index describes one exact (tree, record-assignment) state.
Structural inserts and record splits/moves call
:meth:`StructuralIndex.invalidate`; the query engine then falls back to
navigation until someone rebuilds (``DocumentStore.build_index``).
Content-only updates don't touch structure or placement, so they leave
the index valid — the equivalence suite pins both behaviours.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Optional, Sequence

from repro import telemetry
from repro.errors import StorageError
from repro.tree.node import NodeKind


def _zeros(n: int) -> array:
    return array("q", bytes(8 * n))


class StructuralIndex:
    """Pre/post-order columns and partition windows for one document."""

    __slots__ = (
        "node_count",
        "record_count",
        "valid",
        # per-node columns (indexed by node id)
        "pre_of",
        "post_of",
        "level_of",
        "size_of",
        "parent_of",
        "pos_of",
        "kind_of",
        "label_id_of",
        # preorder rank -> node id
        "node_at",
        # CSR child lists (+ leading-attribute counts)
        "child_offset",
        "child_ids",
        "attr_count",
        # label dictionary + per-label sorted preorder postings (elements)
        "_label_ids",
        "_label_pre",
        # partition (record) windows
        "rec_min_pre",
        "rec_max_pre",
        "rec_min_post",
        "rec_max_post",
        "_rec_by_min_pre",
        "_sorted_min_pre",
    )

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, store) -> "StructuralIndex":
        """Index ``store``'s current tree + record assignment (one DFS)."""
        with telemetry.span("index.build"):
            index = cls._build(store)
        if telemetry.enabled():
            telemetry.count("index.builds")
        return index

    @classmethod
    def _build(cls, store) -> "StructuralIndex":
        tree = store.tree
        nodes = tree.nodes
        n = len(nodes)
        self = cls.__new__(cls)
        self.node_count = n
        self.valid = True

        pre_of = self.pre_of = _zeros(n)
        post_of = self.post_of = _zeros(n)
        level_of = self.level_of = _zeros(n)
        size_of = self.size_of = _zeros(n)
        parent_of = self.parent_of = _zeros(n)
        kind_of = self.kind_of = _zeros(n)
        label_id_of = self.label_id_of = _zeros(n)
        node_at = self.node_at = _zeros(n)
        label_ids: dict[str, int] = {}
        label_pre: dict[int, array] = {}
        self._label_ids = label_ids
        self._label_pre = label_pre

        element = int(NodeKind.ELEMENT)
        pre_counter = 0
        post_counter = 0
        stack: list[tuple[object, bool]] = [(tree.root, False)]
        while stack:
            node, exiting = stack.pop()
            nid = node.node_id
            if exiting:
                post_of[nid] = post_counter
                post_counter += 1
                size_of[nid] = pre_counter - pre_of[nid]
                continue
            pre_of[nid] = pre_counter
            node_at[pre_counter] = nid
            pre_counter += 1
            parent = node.parent
            if parent is None:
                parent_of[nid] = -1
            else:
                parent_of[nid] = parent.node_id
                level_of[nid] = level_of[parent.node_id] + 1
            kind = int(node.kind)
            kind_of[nid] = kind
            lid = label_ids.setdefault(node.label, len(label_ids))
            label_id_of[nid] = lid
            if kind == element:
                postings = label_pre.get(lid)
                if postings is None:
                    postings = label_pre[lid] = array("q")
                postings.append(pre_of[nid])
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
        if pre_counter != n:
            raise StorageError(
                f"tree has {n} nodes but only {pre_counter} are reachable "
                "from the root; refusing to build a structural index"
            )

        # CSR child lists, sibling positions, leading-attribute counts
        child_offset = self.child_offset = _zeros(n + 1)
        child_ids = self.child_ids = _zeros(n - 1) if n > 1 else array("q")
        attr_count = self.attr_count = _zeros(n)
        pos_of = self.pos_of = _zeros(n)
        attribute = int(NodeKind.ATTRIBUTE)
        off = 0
        for nid in range(n):
            child_offset[nid] = off
            leading = 0
            counting = True
            for pos, child in enumerate(nodes[nid].children):
                cid = child.node_id
                child_ids[off] = cid
                pos_of[cid] = pos
                if counting and kind_of[cid] == attribute:
                    leading += 1
                else:
                    counting = False
                off += 1
            attr_count[nid] = leading
        child_offset[n] = off

        # record-aware partition map: min/max pre/post window per record
        record_of = store.record_of
        count = store.record_count
        self.record_count = count
        rec_min_pre = self.rec_min_pre = array("q", [n] * count)
        rec_max_pre = self.rec_max_pre = array("q", [-1] * count)
        rec_min_post = self.rec_min_post = array("q", [n] * count)
        rec_max_post = self.rec_max_post = array("q", [-1] * count)
        for nid in range(n):
            rid = record_of[nid]
            pre = pre_of[nid]
            post = post_of[nid]
            if pre < rec_min_pre[rid]:
                rec_min_pre[rid] = pre
            if pre > rec_max_pre[rid]:
                rec_max_pre[rid] = pre
            if post < rec_min_post[rid]:
                rec_min_post[rid] = post
            if post > rec_max_post[rid]:
                rec_max_post[rid] = post
        order = sorted(range(count), key=rec_min_pre.__getitem__)
        self._rec_by_min_pre = array("q", order)
        self._sorted_min_pre = array("q", [rec_min_pre[r] for r in order])
        return self

    # -- lifecycle ---------------------------------------------------------

    def invalidate(self) -> None:
        """Mark stale (structural update / record move); the engine falls
        back to navigation until the owner rebuilds."""
        if self.valid:
            self.valid = False
            if telemetry.enabled():
                telemetry.count("index.invalidations")

    def describe(self) -> dict:
        """Summary block for ``/healthz`` and ``repro-stats --index``."""
        return {
            "valid": self.valid,
            "nodes": self.node_count,
            "records": self.record_count,
            "labels": len(self._label_ids),
        }

    # -- column lookups ----------------------------------------------------

    def label_id(self, label: str) -> Optional[int]:
        return self._label_ids.get(label)

    def parent_id(self, node_id: int) -> int:
        """Parent node id, ``-1`` for the document root."""
        return self.parent_of[node_id]

    # -- axis windows (orders match navigation's axis orders exactly) -----

    def children_of(self, node_id: int) -> Sequence[int]:
        """Child ids in sibling order (attributes lead, as stored)."""
        lo = self.child_offset[node_id]
        return self.child_ids[lo : self.child_offset[node_id + 1]]

    def attributes_of(self, node_id: int) -> Sequence[int]:
        """The leading ATTRIBUTE-kind children (the attribute axis)."""
        lo = self.child_offset[node_id]
        return self.child_ids[lo : lo + self.attr_count[node_id]]

    def ancestor_ids(self, node_id: int, or_self: bool) -> list[int]:
        """Ancestor chain in proximity order (parent first)."""
        out = [node_id] if or_self else []
        parent_of = self.parent_of
        pid = parent_of[node_id]
        while pid >= 0:
            out.append(pid)
            pid = parent_of[pid]
        return out

    def descendant_window(self, node_id: int, or_self: bool) -> tuple[int, int]:
        """Half-open preorder window ``[lo, hi)`` of the descendant axis."""
        pre = self.pre_of[node_id]
        lo = pre if or_self else pre + 1
        return lo, pre + self.size_of[node_id]

    def ids_in_window(self, lo: int, hi: int) -> Sequence[int]:
        """All node ids with preorder rank in ``[lo, hi)``, document order."""
        return self.node_at[lo:hi]

    def label_ids_in_window(self, label_id: int, lo: int, hi: int) -> list[int]:
        """Element ids with ``label_id`` and preorder rank in ``[lo, hi)``
        — one bisect window over the label's sorted preorder postings."""
        postings = self._label_pre.get(label_id)
        if not postings:
            return []
        node_at = self.node_at
        start = bisect_left(postings, lo)
        stop = bisect_left(postings, hi)
        return [node_at[rank] for rank in postings[start:stop]]

    def following_siblings(self, node_id: int) -> Sequence[int]:
        pid = self.parent_of[node_id]
        if pid < 0:
            return ()
        lo = self.child_offset[pid]
        return self.child_ids[lo + self.pos_of[node_id] + 1 : self.child_offset[pid + 1]]

    def preceding_siblings(self, node_id: int) -> Sequence[int]:
        """Preceding siblings in proximity (reverse-document) order."""
        pid = self.parent_of[node_id]
        if pid < 0:
            return ()
        lo = self.child_offset[pid]
        run = self.child_ids[lo : lo + self.pos_of[node_id]]
        return run[::-1]

    # -- partition pruning -------------------------------------------------

    def records_overlapping(self, lo: int, hi: int) -> list[int]:
        """Record ids whose pre window intersects ``[lo, hi]`` (inclusive)
        — the partitions a descendant-window step must decode. A bisect
        over records sorted by ``min_pre`` bounds the candidate set."""
        cut = bisect_right(self._sorted_min_pre, hi)
        rec_max_pre = self.rec_max_pre
        return [
            rid for rid in self._rec_by_min_pre[:cut] if rec_max_pre[rid] >= lo
        ]

    def records_for_ancestors(
        self, pre: int, post: int, or_self: bool
    ) -> list[int]:
        """Record ids that may hold ancestors of the node at ``(pre,
        post)``: their window must reach before it in preorder *and*
        after it in postorder."""
        rec_min_pre = self.rec_min_pre
        rec_max_post = self.rec_max_post
        if or_self:
            return [
                rid
                for rid in range(self.record_count)
                if rec_min_pre[rid] <= pre and rec_max_post[rid] >= post
            ]
        return [
            rid
            for rid in range(self.record_count)
            if rec_min_pre[rid] < pre and rec_max_post[rid] > post
        ]

    # -- structural predicates (used by tests / cross-checks) --------------

    def is_ancestor(self, ancestor_id: int, node_id: int) -> bool:
        return (
            self.pre_of[ancestor_id] < self.pre_of[node_id]
            and self.post_of[ancestor_id] > self.post_of[node_id]
        )
