"""repro.index — per-document structural indexes for the XPath engine.

The XPath-accelerator observation (Grust; also the DMR-XPath exemplar in
SNIPPETS.md): once every node carries its **preorder rank**, **postorder
rank** and **level**, the recursive axes become interval predicates —

* ``descendant(v)``   = nodes with ``pre(v) < pre  ≤ pre(v)+size(v)-1``
  (a *contiguous preorder window*, because preorder visits a subtree as
  one run),
* ``ancestor(v)``     = nodes with ``pre < pre(v)`` and ``post > post(v)``
  (equivalently: the ``parent`` chain, which the index stores directly).

:class:`~repro.index.structural.StructuralIndex` materializes those
columns as typed ``array('q')`` vectors in one DFS over the document,
plus two things the paper's storage model adds on top:

* **per-label preorder postings** — ``//keyword`` inside any subtree is
  one ``bisect`` window over the sorted preorder ranks of ``keyword``
  elements, instead of an O(subtree) navigation walk;
* a **record-aware partition map** — min/max pre/post windows per
  record (partition), so a window axis only *decodes* the partitions
  whose windows overlap the query window. This is what makes the
  partitioner's cost model observable in query latency: partitions the
  sibling partitioning kept out of a subtree are pruned without a page
  touch, and the savings are charged against the same
  :class:`~repro.storage.store.NavigationStats` cost model navigation
  uses.

``repro.query.engine`` dispatches every axis step through the index
when ``store.structural_index`` is present and valid, and falls back to
hop-by-hop navigation otherwise (counted as ``index.fallbacks``); an
equivalence suite pins both paths to bit-identical node-id results.
Structural updates and record moves invalidate the index
(:meth:`DocumentStore.invalidate_index`); crash recovery adopts stores
without one, so recovered documents navigate until re-indexed.
"""

from repro.index.structural import StructuralIndex

__all__ = ["StructuralIndex"]
