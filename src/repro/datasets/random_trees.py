"""Random and pathological trees for property-based testing.

These generators are the fuzzing backbone of the test suite: DHW is
checked against the brute-force oracle on thousands of small random
trees, and the heuristics are checked for feasibility/validity on larger
ones. The pathological shapes (stars, combs, heavy children) reproduce
the "peculiar partitioning decisions" the paper observed with the legacy
RS heuristic.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.tree.node import Tree


def random_tree(
    n: int,
    max_weight: int = 5,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    attach_bias: float = 0.5,
) -> Tree:
    """A random ordered tree with ``n`` nodes.

    Each new node attaches as the rightmost child of a random existing
    node; ``attach_bias`` interpolates between preferring recent nodes
    (deep trees, bias→1) and uniform choice (bushy trees, bias→0).
    """
    rng = rng or random.Random(seed)
    tree = Tree("n0", rng.randint(1, max_weight))
    for i in range(1, n):
        if rng.random() < attach_bias:
            parent = tree.nodes[rng.randint(max(0, i - 5), i - 1)]
        else:
            parent = tree.nodes[rng.randrange(i)]
        tree.add_child(parent, f"n{i}", rng.randint(1, max_weight))
    return tree


def random_flat_tree(
    n_children: int,
    max_weight: int = 5,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Tree:
    """A flat tree (root + leaves) with random weights."""
    rng = rng or random.Random(seed)
    tree = Tree("t", rng.randint(1, max_weight))
    for i in range(n_children):
        tree.add_child(tree.root, f"c{i + 1}", rng.randint(1, max_weight))
    return tree


def star_tree(children: int, child_weight: int = 1, root_weight: int = 1) -> Tree:
    """Maximal fan-out: the worst case for main-memory friendliness."""
    tree = Tree("hub", root_weight)
    for i in range(children):
        tree.add_child(tree.root, f"s{i}", child_weight)
    return tree


def comb_tree(teeth: int, tooth_weight: int = 1, spine_weight: int = 1) -> Tree:
    """A spine where every spine node has one leaf tooth — deep and thin."""
    tree = Tree("spine0", spine_weight)
    cur = tree.root
    for i in range(teeth):
        tree.add_child(cur, f"tooth{i}", tooth_weight)
        cur = tree.add_child(cur, f"spine{i + 1}", spine_weight)
    return tree


def heavy_child_tree(light_children: int, heavy_weight: int, light_weight: int = 1) -> Tree:
    """One heavy child among many light ones: trips greedy right-to-left
    packing (the RS failure mode)."""
    tree = Tree("r", 1)
    mid = light_children // 2
    for i in range(light_children + 1):
        if i == mid:
            tree.add_child(tree.root, "heavy", heavy_weight)
        else:
            tree.add_child(tree.root, f"l{i}", light_weight)
    return tree


def duplicated_subtree_tree(
    copies: int,
    template_size: int = 40,
    max_weight: int = 5,
    seed: Optional[int] = None,
    distinct_templates: int = 4,
) -> Tree:
    """A document dominated by repeated subtree shapes.

    Real XML exports repeat a handful of record templates thousands of
    times ("XML Compression via DAGs"); this generator reproduces that
    regime: ``distinct_templates`` random subtree shapes are stamped out
    round-robin ``copies`` times under a light spine. The fast-path shape
    cache should solve each template once and replay it for every other
    copy, so this is the headline benchmark input for DAG memoization.
    """
    rng = random.Random(seed)
    templates = [
        random_tree(template_size, max_weight=max_weight, rng=rng)
        for _ in range(max(1, distinct_templates))
    ]
    tree = Tree("catalog", 1)
    for i in range(copies):
        template = templates[i % len(templates)]
        anchor = tree.add_child(tree.root, f"record{i}", template.root.weight)
        # Graft the template below the anchor; template ids are creation-
        # ordered so parents map before their children.
        mapping = {template.root.node_id: anchor}
        for node in template.nodes[1:]:
            mapping[node.node_id] = tree.add_child(
                mapping[node.parent.node_id], node.label, node.weight
            )
    return tree


def layered_trap_tree(levels: int, limit: int) -> Tree:
    """A generalization of the paper's Fig. 6: at every level, the locally
    optimal choice wastes exactly the slack the level above needs, so
    GHDW pays one extra partition per level while DHW stays optimal."""
    assert limit >= 5
    tree = Tree("a", limit)
    parent = tree.root
    for level in range(levels):
        tree.add_child(parent, f"b{level}", 1)
        c = tree.add_child(parent, f"c{level}", 1)
        f = tree.add_child(parent, f"f{level}", 1)
        half = (limit - 1) // 2
        tree.add_child(c, f"d{level}", half)
        e = tree.add_child(c, f"e{level}", limit - 1 - half)
        parent = f if level % 2 == 0 else e
    return tree
