"""uwm.xml-shaped document (UW-Milwaukee course catalogue).

The UW repository's ``uwm.xml`` lists course offerings: many small,
regular ``course_listing`` subtrees with short text fields and a nested
section/lab substructure. It is the corpus' "many tiny subtrees under one
huge fan-out" case. Paper reference: 189 542 nodes, 2 338 KB.
"""

from __future__ import annotations

import random

from repro.datasets.builder import DocBuilder
from repro.datasets.words import person_name, sentence, words
from repro.tree.node import Tree


def uwm_document(courses: int = 440, seed: int = 2006) -> Tree:
    """Course catalogue with ``courses`` listings (default ≈ 1/10 scale)."""
    rng = random.Random(seed)
    doc = DocBuilder("root")
    subjects = [words(rng, 1).upper()[:7] for _ in range(40)]
    for _ in range(courses):
        listing = doc.element(doc.root, "course_listing")
        doc.leaf(listing, "note", sentence(rng, 2, 6))
        doc.leaf(
            listing, "course", f"{rng.choice(subjects)} {rng.randint(100, 999)}"
        )
        doc.leaf(listing, "title", words(rng, rng.randint(2, 7)).title())
        doc.leaf(listing, "credits", rng.choice(["1", "2", "3", "3 - 4", "4", "1 - 6"]))
        doc.leaf(listing, "level", rng.choice(["U", "G", "U/G"]))
        if rng.random() < 0.4:
            restrictions = doc.element(listing, "restrictions")
            doc.text(restrictions, "Prereq: " + sentence(rng, 3, 10))
        sections = doc.element(listing, "sections")
        for si in range(rng.randint(1, 4)):
            section = doc.element(sections, "section_listing")
            doc.leaf(section, "section_note", sentence(rng, 1, 4))
            doc.leaf(section, "section", f"{rng.choice('LS')}EC {si + 1:03d}")
            doc.leaf(
                section,
                "days",
                rng.choice(["M", "T", "W", "R", "F", "MW", "TR", "MWF"]),
            )
            doc.leaf(
                section,
                "hours",
                f"{rng.randint(8, 17)}:{rng.choice(['00', '30'])}",
            )
            if rng.random() < 0.7:
                doc.leaf(section, "instructor", person_name(rng))
            if rng.random() < 0.2:
                labs = doc.element(section, "labs")
                for li in range(rng.randint(1, 2)):
                    lab = doc.element(labs, "lab_listing")
                    doc.leaf(lab, "lab", f"LAB {li + 801}")
                    doc.leaf(lab, "lab_hours", f"{rng.randint(8, 17)}:00")
    return doc.tree
