"""mondial-3.0.xml-shaped document.

Mondial is a geographic database: countries with attribute-heavy
elements, nested provinces and cities, plus flat sections for
organizations, seas, rivers and mountains. Unlike the relational dumps it
has *deeply nested structures with larger subtrees* (the paper calls this
out explicitly), which makes the deep-tree machinery of GHDW/DHW earn its
keep. Paper reference: 152 218 nodes, 1 785 KB.
"""

from __future__ import annotations

import random

from repro.datasets.builder import DocBuilder
from repro.datasets.words import city_name, country_name, sentence, words
from repro.tree.node import Tree


def mondial_document(countries: int = 17, seed: int = 2006) -> Tree:
    """Mondial-style geography: ``countries`` countries plus flat sections.

    The default of 17 countries yields roughly a tenth of the original's
    node count.
    """
    rng = random.Random(seed)
    doc = DocBuilder("mondial")
    for ci in range(countries):
        country = doc.element(doc.root, "country")
        doc.attr(country, "car_code", f"C{ci:03d}")
        doc.attr(country, "area", str(rng.randint(1000, 2000000)))
        doc.attr(country, "capital", f"cty-{ci:03d}-0")
        doc.attr(country, "memberships", " ".join(f"org-{rng.randint(1, 60)}" for _ in range(rng.randint(1, 8))))
        doc.leaf(country, "name", country_name(rng).title())
        doc.leaf(country, "population", str(rng.randint(100000, 90000000)))
        doc.leaf(country, "population_growth", f"{rng.uniform(-1, 4):.2f}")
        doc.leaf(country, "infant_mortality", f"{rng.uniform(2, 90):.1f}")
        doc.leaf(country, "gdp_total", str(rng.randint(1000, 8000000)))
        doc.leaf(country, "inflation", f"{rng.uniform(0, 30):.1f}")
        for _ in range(rng.randint(1, 4)):
            eg = doc.element(country, "ethnicgroups")
            doc.attr(eg, "percentage", f"{rng.uniform(1, 99):.1f}")
            doc.text(eg, words(rng, 1).title())
        for _ in range(rng.randint(1, 3)):
            rel = doc.element(country, "religions")
            doc.attr(rel, "percentage", f"{rng.uniform(1, 99):.1f}")
            doc.text(rel, words(rng, 1).title())
        for _ in range(rng.randint(0, 3)):
            border = doc.element(country, "border")
            doc.attr(border, "country", f"C{rng.randrange(countries):03d}")
            doc.attr(border, "length", str(rng.randint(10, 4000)))
        for pi in range(rng.randint(3, 14)):
            province = doc.element(country, "province")
            doc.attr(province, "id", f"prov-{ci:03d}-{pi}")
            doc.attr(province, "country", f"C{ci:03d}")
            doc.leaf(province, "name", city_name(rng) + " Province")
            doc.leaf(province, "area", str(rng.randint(100, 200000)))
            doc.leaf(province, "population", str(rng.randint(10000, 9000000)))
            for yi in range(rng.randint(1, 8)):
                city = doc.element(province, "city")
                doc.attr(city, "id", f"cty-{ci:03d}-{pi}-{yi}")
                doc.attr(city, "country", f"C{ci:03d}")
                doc.attr(city, "province", f"prov-{ci:03d}-{pi}")
                doc.leaf(city, "name", city_name(rng))
                doc.leaf(city, "longitude", f"{rng.uniform(-180, 180):.2f}")
                doc.leaf(city, "latitude", f"{rng.uniform(-90, 90):.2f}")
                for year in (87, 95):
                    pop = doc.element(city, "population")
                    doc.attr(pop, "year", str(year))
                    doc.text(pop, str(rng.randint(5000, 4000000)))
                if rng.random() < 0.3:
                    doc.leaf(city, "located_at", sentence(rng, 2, 5))
    for oi in range(60):
        org = doc.element(doc.root, "organization")
        doc.attr(org, "id", f"org-{oi + 1}")
        doc.attr(org, "headq", f"cty-{rng.randrange(countries):03d}-0-0")
        doc.leaf(org, "name", words(rng, rng.randint(2, 6)).title())
        doc.leaf(org, "abbrev", "".join(w[0] for w in words(rng, 3).split()).upper())
        doc.leaf(org, "established", f"19{rng.randint(10, 99)}-01-01")
    for _ in range(40):
        sea = doc.element(doc.root, "sea")
        doc.attr(sea, "id", f"sea-{rng.randint(1, 999)}")
        doc.leaf(sea, "name", words(rng, 1).title() + " Sea")
        doc.leaf(sea, "depth", str(rng.randint(100, 11000)))
    for _ in range(60):
        river = doc.element(doc.root, "river")
        doc.attr(river, "id", f"river-{rng.randint(1, 999)}")
        doc.leaf(river, "name", words(rng, 1).title())
        doc.leaf(river, "length", str(rng.randint(50, 7000)))
    for _ in range(40):
        mountain = doc.element(doc.root, "mountain")
        doc.attr(mountain, "id", f"mount-{rng.randint(1, 999)}")
        doc.leaf(mountain, "name", words(rng, 1).title())
        doc.leaf(mountain, "height", str(rng.randint(500, 8900)))
    return doc.tree
