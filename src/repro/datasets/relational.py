"""Relational-shaped documents: ``partsupp.xml`` and ``orders.xml``.

The UW repository versions are straight XML dumps of the TPC-H
``PARTSUPP`` and ``ORDERS`` relations: a root element with one ``T``
(tuple) child per row and one field element (with a text child) per
column. This is the paper's "very simple structure" case — a huge flat
fan-out under the root — where sibling partitioning shines: KM must give
every tuple subtree its own partition-ish treatment while sibling
algorithms pack ~90 % fewer partitions (Table 1).

Paper reference sizes: partsupp.xml 96 005 nodes (16 000 rows),
orders.xml 300 005 nodes (25 000 rows). ``rows`` scales the synthetic
versions; defaults are a tenth of the originals so the full benchmark
suite runs in minutes of pure Python.
"""

from __future__ import annotations

import random

from repro.datasets.builder import DocBuilder
from repro.datasets.words import sentence, date_string, money
from repro.tree.node import Tree


def partsupp_document(rows: int = 870, seed: int = 2006) -> Tree:
    """TPC-H PARTSUPP as XML: 5 fields per tuple + a free-text comment."""
    rng = random.Random(seed)
    doc = DocBuilder("partsupp")
    for i in range(rows):
        t = doc.element(doc.root, "T")
        doc.leaf(t, "PS_PARTKEY", str(i + 1))
        doc.leaf(t, "PS_SUPPKEY", str(rng.randint(1, 1000)))
        doc.leaf(t, "PS_AVAILQTY", str(rng.randint(1, 9999)))
        doc.leaf(t, "PS_SUPPLYCOST", money(rng, 1.0, 1000.0))
        doc.leaf(t, "PS_COMMENT", sentence(rng, 8, 20))
    return doc.tree


def orders_document(rows: int = 1580, seed: int = 2006) -> Tree:
    """TPC-H ORDERS as XML: 9 fields per tuple."""
    rng = random.Random(seed)
    doc = DocBuilder("table")
    for i in range(rows):
        t = doc.element(doc.root, "T")
        doc.leaf(t, "O_ORDERKEY", str(i + 1))
        doc.leaf(t, "O_CUSTKEY", str(rng.randint(1, 15000)))
        doc.leaf(t, "O_ORDERSTATUS", rng.choice("OFP"))
        doc.leaf(t, "O_TOTALPRICE", money(rng, 800.0, 400000.0))
        doc.leaf(t, "O_ORDERDATE", date_string(rng))
        doc.leaf(
            t,
            "O_ORDERPRIORITY",
            rng.choice(["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]),
        )
        doc.leaf(t, "O_CLERK", f"Clerk#{rng.randint(1, 1000):09d}")
        doc.leaf(t, "O_SHIPPRIORITY", "0")
        doc.leaf(t, "O_COMMENT", sentence(rng, 6, 16))
    return doc.tree
