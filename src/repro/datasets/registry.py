"""The paper corpus: named documents with paper-reference metadata.

``paper_corpus(scale=1.0)`` regenerates the whole Sec. 6.1 document suite
at a configurable fraction of the defaults (which are themselves about a
tenth of the originals, keeping the pure-Python experiments laptop-fast).
Paper-reported figures for every document are carried along so benchmark
reports can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.datasets.mondial import mondial_document
from repro.datasets.relational import orders_document, partsupp_document
from repro.datasets.sigmod import sigmod_record_document
from repro.datasets.uwm import uwm_document
from repro.datasets.xmark import xmark_document
from repro.tree.node import Tree


@dataclass(frozen=True)
class DocumentSpec:
    """One corpus document: how to build it and what the paper measured.

    ``paper_partitions`` maps algorithm name → Table 1 partition count;
    ``paper_runtime`` maps algorithm name → Table 2 CPU seconds (``0.01``
    stands for the paper's "<0.01").
    """

    name: str
    builder: Callable[..., Tree]
    scale_param: str
    default_scale: float
    paper_size_kb: int
    paper_nodes: int
    paper_weight_over_k: int
    paper_partitions: Mapping[str, int] = field(default_factory=dict)
    paper_runtime: Mapping[str, float] = field(default_factory=dict)

    def generate(self, scale: float = 1.0, seed: int = 2006) -> Tree:
        """Build the document at ``scale`` × the default size."""
        value = self.default_scale * scale
        if self.scale_param != "scale":
            value = max(1, round(value))
        return self.builder(**{self.scale_param: value, "seed": seed})


_ALGOS = ("dhw", "ghdw", "ekm", "rs", "dfs", "km", "bfs")


def _t1(*counts: int) -> dict[str, int]:
    return dict(zip(_ALGOS, counts))


def _t2(*secs: float) -> dict[str, float]:
    return dict(zip(_ALGOS, secs))


PAPER_DOCUMENTS: tuple[DocumentSpec, ...] = (
    DocumentSpec(
        name="SigmodRecord.xml",
        builder=sigmod_record_document,
        scale_param="issues",
        default_scale=5,
        paper_size_kb=477,
        paper_nodes=42054,
        paper_weight_over_k=352,
        paper_partitions=_t1(382, 384, 402, 405, 1153, 1294, 2987),
        paper_runtime=_t2(24.83, 0.28, 0.01, 0.01, 0.01, 0.05, 0.01),
    ),
    DocumentSpec(
        name="mondial-3.0.xml",
        builder=mondial_document,
        scale_param="countries",
        default_scale=17,
        paper_size_kb=1785,
        paper_nodes=152218,
        paper_weight_over_k=1236,
        paper_partitions=_t1(1358, 1376, 1407, 1433, 3268, 11625, 17312),
        paper_runtime=_t2(184.17, 6.02, 0.01, 0.01, 0.01, 0.11, 0.02),
    ),
    DocumentSpec(
        name="partsupp.xml",
        builder=partsupp_document,
        scale_param="rows",
        default_scale=870,
        paper_size_kb=2242,
        paper_nodes=96005,
        paper_weight_over_k=1026,
        paper_partitions=_t1(1083, 1083, 1091, 1091, 2282, 15876, 8192),
        paper_runtime=_t2(474.13, 5.55, 0.01, 0.01, 0.01, 0.16, 0.02),
    ),
    DocumentSpec(
        name="uwm.xml",
        builder=uwm_document,
        scale_param="courses",
        default_scale=440,
        paper_size_kb=2338,
        paper_nodes=189542,
        paper_weight_over_k=1446,
        paper_partitions=_t1(1727, 1790, 1746, 1817, 4345, 5449, 11039),
        paper_runtime=_t2(401.38, 1.18, 0.01, 0.01, 0.01, 0.21, 0.04),
    ),
    DocumentSpec(
        name="orders.xml",
        builder=orders_document,
        scale_param="rows",
        default_scale=1580,
        paper_size_kb=5379,
        paper_nodes=300005,
        paper_weight_over_k=2247,
        paper_partitions=_t1(2476, 2476, 2482, 2482, 5832, 29876, 15474),
        paper_runtime=_t2(565.01, 9.73, 0.01, 0.01, 0.01, 0.35, 0.07),
    ),
    DocumentSpec(
        name="xmark0p1.xml",
        builder=xmark_document,
        scale_param="scale",
        default_scale=0.02,
        paper_size_kb=11670,
        paper_nodes=549213,
        paper_weight_over_k=7532,
        paper_partitions=_t1(8603, 8838, 8975, 9631, 25046, 20519, 42155),
        paper_runtime=_t2(2041.18, 6.24, 0.02, 0.03, 0.01, 0.63, 0.11),
    ),
)

_BY_NAME = {spec.name: spec for spec in PAPER_DOCUMENTS}
# Short aliases: "partsupp" for "partsupp.xml" etc.
_BY_NAME.update({spec.name.split(".xml")[0].split("-")[0].lower(): spec for spec in PAPER_DOCUMENTS})
_BY_NAME["sigmod"] = _BY_NAME["SigmodRecord.xml"]
_BY_NAME["xmark"] = _BY_NAME["xmark0p1.xml"]


def generate_document(name: str, scale: float = 1.0, seed: int = 2006) -> Tree:
    """Generate one corpus document by (aliased) name."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted({s.name for s in PAPER_DOCUMENTS}))
        raise KeyError(f"unknown document {name!r}; known: {known}") from None
    return spec.generate(scale=scale, seed=seed)


def paper_corpus(scale: float = 1.0, seed: int = 2006) -> dict[str, Tree]:
    """All six documents, keyed by their paper file names."""
    return {spec.name: spec.generate(scale=scale, seed=seed) for spec in PAPER_DOCUMENTS}
