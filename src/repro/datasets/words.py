"""Deterministic text generation for the synthetic documents.

XMark fills text content with words drawn from Shakespeare; we use a
fixed word list in the same spirit. All helpers take a
``random.Random`` instance so documents are reproducible per seed.
"""

from __future__ import annotations

import random

WORDS = (
    "the of and to in that is was he for it with as his on be at by had "
    "not are but from or have an they which one you were her all she there "
    "would their we him been has when who will more no if out so said what "
    "up its about into than them can only other new some could time these "
    "two may then do first any my now such like our over man me even most "
    "made after also did many before must through back years where much "
    "your way well down should because each just those people how too "
    "little state good very make world still own see men work long get "
    "here between both life being under never day same another know while "
    "last might us great old year off come since against go came right "
    "used take three states himself few house use during without again "
    "place american around however home small found mrs thought went say "
    "part once general high upon school every keep seemed whole sword "
    "crown duke noble honest valiant gentle fair sweet lord lady king "
    "queen prince battle love death night morrow heart soul eyes speak "
    "tongue grace mercy fortune nature heaven earth blood fire water air"
).split()

_FIRST = (
    "james john robert michael william david richard charles joseph thomas "
    "mary patricia linda barbara elizabeth jennifer maria susan margaret"
).split()

_LAST = (
    "smith johnson williams jones brown davis miller wilson moore taylor "
    "anderson thomas jackson white harris martin thompson garcia martinez"
).split()

_CITIES = (
    "springfield riverton lakewood fairview georgetown franklin clinton "
    "madison arlington ashland burlington clayton dayton easton fulton"
).split()

_COUNTRIES = (
    "germany france italy spain poland austria hungary sweden norway "
    "denmark portugal greece ireland finland belgium netherlands"
).split()


def words(rng: random.Random, count: int) -> str:
    """``count`` space-separated words."""
    return " ".join(rng.choice(WORDS) for _ in range(count))


def sentence(rng: random.Random, lo: int = 4, hi: int = 14) -> str:
    return words(rng, rng.randint(lo, hi))


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST).title()} {rng.choice(_LAST).title()}"


def city_name(rng: random.Random) -> str:
    return rng.choice(_CITIES).title()


def country_name(rng: random.Random) -> str:
    return rng.choice(_COUNTRIES).title()


def date_string(rng: random.Random) -> str:
    return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1998, 2001)}"


def money(rng: random.Random, lo: float = 1.0, hi: float = 5000.0) -> str:
    return f"{rng.uniform(lo, hi):.2f}"
