"""SigmodRecord.xml-shaped document.

The UW ``SigmodRecord.xml`` is the table of contents of SIGMOD Record:
issues containing articles with title, page range and an author list —
shallow, regular, with short text fields and a moderate fan-out at the
``articles`` level. Paper reference: 42 054 nodes, 477 KB.
"""

from __future__ import annotations

import random

from repro.datasets.builder import DocBuilder
from repro.datasets.words import person_name, words
from repro.tree.node import Tree


def sigmod_record_document(issues: int = 5, seed: int = 2006) -> Tree:
    """SIGMOD Record TOC: ``issues`` issues × ~60 articles each.

    The default of 5 issues yields roughly a tenth of the original's
    node count.
    """
    rng = random.Random(seed)
    doc = DocBuilder("SigmodRecord")
    for i in range(issues):
        issue = doc.element(doc.root, "issue")
        doc.leaf(issue, "volume", str(11 + i))
        doc.leaf(issue, "number", str(rng.randint(1, 4)))
        articles = doc.element(issue, "articles")
        for _ in range(rng.randint(40, 80)):
            article = doc.element(articles, "article")
            doc.leaf(article, "title", words(rng, rng.randint(4, 12)).title() + ".")
            first = rng.randint(1, 180)
            doc.leaf(article, "initPage", str(first))
            doc.leaf(article, "endPage", str(first + rng.randint(1, 30)))
            authors = doc.element(article, "authors")
            for pos in range(rng.randint(1, 4)):
                author = doc.element(authors, "author")
                doc.attr(author, "position", f"{pos:02d}")
                doc.text(author, person_name(rng))
    return doc.tree
