"""Small helper for writing document generators against the slot model."""

from __future__ import annotations

from repro.tree.node import NodeKind, Tree, TreeNode
from repro.xmlio.weights import SlotWeightModel


class DocBuilder:
    """Builds a weighted document tree with DOM-style convenience calls.

    Weights follow the :class:`SlotWeightModel`, so generated trees are
    indistinguishable (for the algorithms) from parsed real documents.
    """

    def __init__(self, root_label: str, weight_model: SlotWeightModel | None = None):
        self.wm = weight_model or SlotWeightModel()
        self.tree = Tree(root_label, self.wm.element_weight(), NodeKind.ELEMENT)

    @property
    def root(self) -> TreeNode:
        return self.tree.root

    def element(self, parent: TreeNode, label: str) -> TreeNode:
        return self.tree.add_child(parent, label, self.wm.element_weight(), NodeKind.ELEMENT)

    def attr(self, parent: TreeNode, name: str, value: str) -> TreeNode:
        return self.tree.add_child(
            parent, name, self.wm.attribute_weight(value), NodeKind.ATTRIBUTE, value
        )

    def text(self, parent: TreeNode, content: str) -> TreeNode:
        return self.tree.add_child(
            parent, "#text", self.wm.text_weight(content), NodeKind.TEXT, content
        )

    def leaf(self, parent: TreeNode, label: str, content: str) -> TreeNode:
        """An element with a single text child (``<label>content</label>``)."""
        el = self.element(parent, label)
        self.text(el, content)
        return el
