"""XMark-shaped auction document (Schmidt et al., VLDB 2002).

The paper's query experiment (Table 3) runs XPathMark queries Q1–Q7
against an XMark document of scaling factor 0.1. This generator rebuilds
the XMark schema — ``site`` with regional ``item`` lists, ``people``,
``open_auctions``, ``closed_auctions`` (whose annotations contain the
``description/parlist/listitem/text/keyword`` chains Q2/Q4/Q6 navigate),
``mailbox/mail`` trees with keywords (Q7), and category data — with
entity counts proportional to the official benchmark's.

``scale`` follows XMark semantics: 0.1 ≈ the paper's document (≈550 000
nodes); the default 0.02 produces ≈a tenth of that for fast pure-Python
experiments (override per call).
"""

from __future__ import annotations

import random

from repro.datasets.builder import DocBuilder
from repro.datasets.words import date_string, money, person_name, sentence, words
from repro.tree.node import Tree, TreeNode

#: Fraction of all items listed in each continental region.
REGION_SHARES = (
    ("africa", 0.025),
    ("asia", 0.10),
    ("australia", 0.10),
    ("europe", 0.30),
    ("namerica", 0.40),
    ("samerica", 0.075),
)

# Official XMark entity counts at scale 1.0.
_ITEMS = 21_750
_PERSONS = 25_500
_OPEN_AUCTIONS = 12_000
_CLOSED_AUCTIONS = 9_750
_CATEGORIES = 1_000


def xmark_document(scale: float = 0.02, seed: int = 2006) -> Tree:
    """Generate an XMark-like ``site`` document at the given scale."""
    rng = random.Random(seed)
    gen = _XMarkGenerator(rng, scale)
    return gen.build()


class _XMarkGenerator:
    def __init__(self, rng: random.Random, scale: float):
        self.rng = rng
        self.scale = scale
        self.doc = DocBuilder("site")
        self.n_items = max(6, int(_ITEMS * scale))
        self.n_persons = max(4, int(_PERSONS * scale))
        self.n_open = max(2, int(_OPEN_AUCTIONS * scale))
        self.n_closed = max(2, int(_CLOSED_AUCTIONS * scale))
        self.n_categories = max(2, int(_CATEGORIES * scale))

    def build(self) -> Tree:
        doc = self.doc
        root = doc.root
        regions = doc.element(root, "regions")
        item_no = 0
        for region_name, share in REGION_SHARES:
            region = doc.element(regions, region_name)
            count = max(1, int(self.n_items * share))
            for _ in range(count):
                self.item(region, item_no)
                item_no += 1
        self.categories(root)
        self.catgraph(root)
        people = doc.element(root, "people")
        for i in range(self.n_persons):
            self.person(people, i)
        open_auctions = doc.element(root, "open_auctions")
        for i in range(self.n_open):
            self.open_auction(open_auctions, i)
        closed_auctions = doc.element(root, "closed_auctions")
        for i in range(self.n_closed):
            self.closed_auction(closed_auctions, i)
        return doc.tree

    # -- building blocks -------------------------------------------------

    def text_block(self, parent: TreeNode, keyword_prob: float = 0.4) -> None:
        """A ``text`` element with mixed content: words interleaved with
        ``keyword``/``bold``/``emph`` phrase elements."""
        doc, rng = self.doc, self.rng
        text = doc.element(parent, "text")
        doc.text(text, sentence(rng, 4, 12))
        for _ in range(rng.randint(0, 3)):
            if rng.random() < keyword_prob:
                doc.leaf(text, "keyword", words(rng, rng.randint(1, 3)))
            else:
                doc.leaf(text, rng.choice(("bold", "emph")), words(rng, rng.randint(1, 3)))
            doc.text(text, sentence(rng, 3, 10))

    def parlist(self, parent: TreeNode, depth: int = 0, max_depth: int = 1) -> None:
        """Nested ``parlist``/``listitem`` blocks, expanded iteratively.

        The explicit work stack bounds nesting at ``max_depth`` however
        the probabilities fall, so scaled generation can never approach
        the interpreter stack limit. Frames are ``(parlist element,
        listitems still to emit, depth)``; expansion is depth-first so
        the RNG draw order (and therefore every seeded document) is
        identical to the natural recursive formulation.
        """
        doc, rng = self.doc, self.rng
        par = doc.element(parent, "parlist")
        stack: list[tuple[TreeNode, int, int]] = [(par, rng.randint(2, 4), depth)]
        while stack:
            par_el, remaining, d = stack[-1]
            if remaining == 0:
                stack.pop()
                continue
            stack[-1] = (par_el, remaining - 1, d)
            listitem = doc.element(par_el, "listitem")
            if d < max_depth and rng.random() < 0.2:
                nested = doc.element(listitem, "parlist")
                stack.append((nested, rng.randint(2, 4), d + 1))
            else:
                self.text_block(listitem)

    def description(self, parent: TreeNode, parlist_prob: float = 0.3) -> None:
        doc = self.doc
        desc = doc.element(parent, "description")
        if self.rng.random() < parlist_prob:
            self.parlist(desc)
        else:
            self.text_block(desc)

    def mail(self, parent: TreeNode) -> None:
        doc, rng = self.doc, self.rng
        mail = doc.element(parent, "mail")
        doc.leaf(mail, "from", person_name(rng))
        doc.leaf(mail, "to", person_name(rng))
        doc.leaf(mail, "date", date_string(rng))
        self.text_block(mail, keyword_prob=0.5)

    def item(self, region: TreeNode, number: int) -> None:
        doc, rng = self.doc, self.rng
        item = doc.element(region, "item")
        doc.attr(item, "id", f"item{number}")
        doc.attr(item, "featured", "yes" if rng.random() < 0.1 else "")
        doc.leaf(item, "location", rng.choice(("United States", "Germany", "France", "Japan")))
        doc.leaf(item, "quantity", str(rng.randint(1, 5)))
        doc.leaf(item, "name", words(rng, rng.randint(1, 3)).title())
        payment = doc.element(item, "payment")
        doc.text(payment, rng.choice(("Creditcard", "Money order", "Cash", "Personal Check")))
        self.description(item)
        doc.leaf(item, "shipping", rng.choice(("Will ship internationally", "Buyer pays fixed shipping charges")))
        for _ in range(rng.randint(1, 3)):
            incategory = doc.element(item, "incategory")
            doc.attr(incategory, "category", f"category{rng.randrange(self.n_categories)}")
        mailbox = doc.element(item, "mailbox")
        for _ in range(rng.randint(0, 2)):
            self.mail(mailbox)

    def person(self, people: TreeNode, number: int) -> None:
        doc, rng = self.doc, self.rng
        person = doc.element(people, "person")
        doc.attr(person, "id", f"person{number}")
        doc.leaf(person, "name", person_name(rng))
        doc.leaf(person, "emailaddress", f"mailto:user{number}@example.org")
        if rng.random() < 0.5:
            doc.leaf(person, "phone", f"+{rng.randint(1, 99)} ({rng.randint(10, 999)}) {rng.randint(1000000, 9999999)}")
        if rng.random() < 0.4:
            address = doc.element(person, "address")
            doc.leaf(address, "street", f"{rng.randint(1, 99)} {words(rng, 1).title()} St")
            doc.leaf(address, "city", words(rng, 1).title())
            doc.leaf(address, "country", "United States")
            doc.leaf(address, "zipcode", str(rng.randint(10000, 99999)))
        if rng.random() < 0.3:
            doc.leaf(person, "homepage", f"http://www.example.org/~user{number}")
        if rng.random() < 0.3:
            doc.leaf(person, "creditcard", " ".join(str(rng.randint(1000, 9999)) for _ in range(4)))
        if rng.random() < 0.6:
            profile = doc.element(person, "profile")
            doc.attr(profile, "income", money(rng, 9000, 100000))
            for _ in range(rng.randint(0, 3)):
                interest = doc.element(profile, "interest")
                doc.attr(interest, "category", f"category{rng.randrange(self.n_categories)}")
            if rng.random() < 0.5:
                doc.leaf(profile, "education", rng.choice(("High School", "College", "Graduate School", "Other")))
            if rng.random() < 0.7:
                doc.leaf(profile, "gender", rng.choice(("male", "female")))
            doc.leaf(profile, "business", rng.choice(("Yes", "No")))
            if rng.random() < 0.6:
                doc.leaf(profile, "age", str(rng.randint(18, 80)))
        if rng.random() < 0.3:
            watches = doc.element(person, "watches")
            for _ in range(rng.randint(1, 3)):
                watch = doc.element(watches, "watch")
                doc.attr(watch, "open_auction", f"open_auction{rng.randrange(self.n_open)}")

    def open_auction(self, parent: TreeNode, number: int) -> None:
        doc, rng = self.doc, self.rng
        auction = doc.element(parent, "open_auction")
        doc.attr(auction, "id", f"open_auction{number}")
        doc.leaf(auction, "initial", money(rng, 1, 300))
        if rng.random() < 0.4:
            doc.leaf(auction, "reserve", money(rng, 50, 500))
        for _ in range(rng.randint(0, 4)):
            bidder = doc.element(auction, "bidder")
            doc.leaf(bidder, "date", date_string(rng))
            doc.leaf(bidder, "time", f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:00")
            personref = doc.element(bidder, "personref")
            doc.attr(personref, "person", f"person{rng.randrange(self.n_persons)}")
            doc.leaf(bidder, "increase", money(rng, 1, 50))
        doc.leaf(auction, "current", money(rng, 1, 800))
        if rng.random() < 0.2:
            doc.leaf(auction, "privacy", "Yes")
        itemref = doc.element(auction, "itemref")
        doc.attr(itemref, "item", f"item{rng.randrange(self.n_items)}")
        seller = doc.element(auction, "seller")
        doc.attr(seller, "person", f"person{rng.randrange(self.n_persons)}")
        self.annotation(auction)
        doc.leaf(auction, "quantity", str(rng.randint(1, 5)))
        doc.leaf(auction, "type", rng.choice(("Regular", "Featured", "Dutch")))
        interval = doc.element(auction, "interval")
        doc.leaf(interval, "start", date_string(rng))
        doc.leaf(interval, "end", date_string(rng))

    def closed_auction(self, parent: TreeNode, number: int) -> None:
        doc, rng = self.doc, self.rng
        auction = doc.element(parent, "closed_auction")
        seller = doc.element(auction, "seller")
        doc.attr(seller, "person", f"person{rng.randrange(self.n_persons)}")
        buyer = doc.element(auction, "buyer")
        doc.attr(buyer, "person", f"person{rng.randrange(self.n_persons)}")
        itemref = doc.element(auction, "itemref")
        doc.attr(itemref, "item", f"item{rng.randrange(self.n_items)}")
        doc.leaf(auction, "price", money(rng, 1, 800))
        doc.leaf(auction, "date", date_string(rng))
        doc.leaf(auction, "quantity", str(rng.randint(1, 5)))
        doc.leaf(auction, "type", rng.choice(("Regular", "Featured", "Dutch")))
        # Q2 navigates annotation/description/parlist/listitem/text/keyword,
        # so closed-auction annotations lean towards parlist descriptions.
        self.annotation(auction, parlist_prob=0.7)

    def annotation(self, parent: TreeNode, parlist_prob: float = 0.3) -> None:
        doc, rng = self.doc, self.rng
        annotation = doc.element(parent, "annotation")
        author = doc.element(annotation, "author")
        doc.attr(author, "person", f"person{rng.randrange(self.n_persons)}")
        self.description(annotation, parlist_prob=parlist_prob)
        doc.leaf(annotation, "happiness", str(rng.randint(1, 10)))

    def categories(self, root: TreeNode) -> None:
        doc, rng = self.doc, self.rng
        categories = doc.element(root, "categories")
        for i in range(self.n_categories):
            category = doc.element(categories, "category")
            doc.attr(category, "id", f"category{i}")
            doc.leaf(category, "name", words(rng, rng.randint(1, 2)).title())
            self.description(category, parlist_prob=0.1)

    def catgraph(self, root: TreeNode) -> None:
        doc, rng = self.doc, self.rng
        catgraph = doc.element(root, "catgraph")
        for _ in range(self.n_categories):
            edge = doc.element(catgraph, "edge")
            doc.attr(edge, "from", f"category{rng.randrange(self.n_categories)}")
            doc.attr(edge, "to", f"category{rng.randrange(self.n_categories)}")
