"""Synthetic documents reproducing the paper's corpus (Sec. 6.1).

The paper evaluates on five documents from the University of Washington
XML repository (SigmodRecord, mondial-3.0, partsupp, uwm, orders) and an
XMark document at scale 0.1. Those exact files are not redistributable /
available offline, so each generator here reproduces the corresponding
document's *structural signature* — fan-out profile, nesting depth,
element/attribute/text mix and text-length distribution — at a
configurable scale. The partitioning algorithms only see the weighted
tree, so this preserves everything the experiments measure.

All generators are deterministic for a given ``(scale, seed)``.
"""

from repro.datasets.registry import (
    DocumentSpec,
    PAPER_DOCUMENTS,
    generate_document,
    paper_corpus,
)
from repro.datasets.xmark import xmark_document
from repro.datasets.relational import partsupp_document, orders_document
from repro.datasets.sigmod import sigmod_record_document
from repro.datasets.mondial import mondial_document
from repro.datasets.uwm import uwm_document
from repro.datasets.random_trees import (
    random_tree,
    random_flat_tree,
    comb_tree,
    duplicated_subtree_tree,
    star_tree,
)

__all__ = [
    "DocumentSpec",
    "PAPER_DOCUMENTS",
    "generate_document",
    "paper_corpus",
    "xmark_document",
    "partsupp_document",
    "orders_document",
    "sigmod_record_document",
    "mondial_document",
    "uwm_document",
    "random_tree",
    "random_flat_tree",
    "comb_tree",
    "duplicated_subtree_tree",
    "star_tree",
]
