"""DHW — optimal tree sibling partitioning (paper Sec. 3.3, Fig. 7).

DHW extends GHDW with the *nearly-optimal* subtree choice that makes the
bottom-up strategy exact:

1. For every node ``v`` (postorder) the flat DP computes the **optimal**
   subtree solution ``D(v)`` over the children's collapsed weights.
2. Per Lemma 4, the **nearly-optimal** solution ``Q(v)`` — exactly one
   more partition, minimal root weight — is read from the *same* DP table
   at the inflated base root weight ``s_q = w(v) + K - opt_rw + 1``. The
   inflation makes every minimal-cardinality solution infeasible, so the
   table's best entry at ``s_q`` (if feasible) has exactly one extra
   partition and a root weight smaller than the optimum's.
3. ``ΔW(v)`` is the root-weight saving of the nearly-optimal variant.
   Because the table entry at ``s_q`` carries the *inflated* base, the
   true saving is ``ΔW(v) = K + 1 - Q_table.rootweight`` (equivalently
   ``opt_rw - (Q_table.rootweight - (K - opt_rw + 1))``).
4. At the parent level, interval candidates heavier than ``K`` may
   downgrade members to their nearly-optimal variants, greedily by
   descending ``ΔW`` (Lemma 5), one extra partition per downgrade. This
   is handled inside :class:`~repro.partition.flatdp.FlatDP` via the
   ``deltas`` argument.
5. Extraction walks the tree top-down: the root uses its optimal chain;
   every child uses its nearly-optimal chain iff some interval entry
   recorded it in its ``nearlyopt`` set, and its optimal chain otherwise.

Worst-case time is ``O(n·K³)`` — linear in the number of nodes for fixed
``K``, which is the paper's headline result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.flatdp import (
    CARD,
    INF,
    ROOTWEIGHT,
    Entry,
    FlatDP,
    chain_intervals,
    leaf_entry,
)
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree
from repro.tree.traversal import iter_postorder


@dataclass
class DHWStats:
    """Instrumentation: DP sizes and how often nearly-optimal solutions
    exist / are actually used (experiments A2 and A3)."""

    dp_cells: int = 0
    inner_nodes: int = 0
    nearly_optimal_exists: int = 0
    nearly_optimal_used: int = 0
    s_values_per_node: list[int] = field(default_factory=list)


@register
class DHWPartitioner(Partitioner):
    """The paper's optimal ``O(n·K³)`` algorithm."""

    name = "dhw"
    optimal = True
    main_memory_friendly = False  # decisions depend on the next-higher level
    fastpath_capable = True

    def __init__(
        self,
        collect_stats: bool = False,
        exclude_endpoints: bool = False,
        fastpath: Optional[bool] = None,
    ):
        """``exclude_endpoints`` enables the Sec. 3.3.6 optimization: the
        first and last node of an interval are never downgraded to a
        nearly-optimal subtree partitioning (the paper proves an optimal
        one always suffices there), shrinking the candidate lists.
        ``fastpath`` pins the :mod:`repro.fastpath` kernel on or off;
        ``None`` defers to the ``REPRO_FASTPATH`` environment variable."""
        self.collect_stats = collect_stats
        self.exclude_endpoints = exclude_endpoints
        self.fastpath = fastpath
        self.stats = DHWStats()

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        if self._fastpath_active():
            from repro.fastpath.kernels import dhw_fastpath

            return dhw_fastpath(tree, limit, exclude_endpoints=self.exclude_endpoints)
        # Stats also feed telemetry (DP cells touched / Q-chains used per
        # run) and explain notes, so collect them whenever a measurement
        # or provenance session is active.
        collect = self.collect_stats or telemetry.enabled() or explain.explaining()
        cells_before = self.stats.dp_cells
        used_before = self.stats.nearly_optimal_used
        n = len(tree)
        opt_entries: list[Optional[Entry]] = [None] * n
        near_entries: list[Optional[Entry]] = [None] * n
        deltas = [0] * n

        # Bottom-up DP pass (Fig. 7).
        with telemetry.span("dhw.dp"):
            self._dp_pass(tree, limit, opt_entries, near_entries, deltas, collect)

        # Top-down extraction: choose D- or Q-chains per node.
        with telemetry.span("dhw.extract"):
            intervals = self._extract(tree, opt_entries, near_entries, collect)
        if explain.explaining():
            explain.note("dhw.dp_cells", self.stats.dp_cells - cells_before)
            explain.note("dhw.nearly_optimal_exists", self.stats.nearly_optimal_exists)
            explain.note(
                "dhw.nearly_optimal_used", self.stats.nearly_optimal_used - used_before
            )
        telemetry.count("partition.dhw.dp_cells", self.stats.dp_cells - cells_before)
        telemetry.count(
            "partition.dhw.nearly_optimal_used",
            self.stats.nearly_optimal_used - used_before,
        )
        return Partitioning(intervals)

    def _dp_pass(
        self,
        tree: Tree,
        limit: int,
        opt_entries: list[Optional[Entry]],
        near_entries: list[Optional[Entry]],
        deltas: list[int],
        collect: bool,
    ) -> None:
        """Fill the per-node optimal/nearly-optimal entry tables."""
        for node in iter_postorder(tree):
            nid = node.node_id
            if not node.children:
                opt_entries[nid] = leaf_entry(node.weight)
                continue
            child_weights = [opt_entries[c.node_id][ROOTWEIGHT] for c in node.children]
            child_deltas = [deltas[c.node_id] for c in node.children]
            dp = FlatDP(
                child_weights,
                limit,
                deltas=child_deltas,
                exclude_endpoints=self.exclude_endpoints,
            )
            opt = dp.top_entry(node.weight)
            assert opt[CARD] is not INF, "DHW subproblem must be feasible"
            opt_entries[nid] = opt

            # Lemma 4: the nearly-optimal variant from the inflated base.
            s_q = node.weight + limit - opt[ROOTWEIGHT] + 1
            if s_q <= limit:
                near = dp.top_entry(s_q)
                if near[CARD] is not INF:
                    # A genuine nearly-minimal solution has exactly one
                    # extra partition; the lean argument of Lemma 4 rules
                    # out anything smaller, and anything larger is not
                    # nearly minimal and must be discarded.
                    assert near[CARD] >= opt[CARD] + 1
                    if near[CARD] == opt[CARD] + 1:
                        near_entries[nid] = near
                        deltas[nid] = limit + 1 - near[ROOTWEIGHT]
                        assert deltas[nid] > 0
            if collect:
                self.stats.dp_cells += dp.cells_computed
                self.stats.inner_nodes += 1
                if near_entries[nid] is not None:
                    self.stats.nearly_optimal_exists += 1
                distinct_s: set[int] = set()
                for col in dp.needed:
                    distinct_s |= col
                self.stats.s_values_per_node.append(len(distinct_s))

    def _extract(
        self,
        tree: Tree,
        opt_entries: list[Optional[Entry]],
        near_entries: list[Optional[Entry]],
        collect: bool,
    ) -> set[SiblingInterval]:
        """Walk top-down choosing D- or Q-chains (step 5 of the scheme)."""
        intervals = {SiblingInterval(tree.root.node_id, tree.root.node_id)}
        stack: list[tuple[int, bool]] = [(tree.root.node_id, False)]
        while stack:
            nid, use_near = stack.pop()
            node = tree.node(nid)
            entry = near_entries[nid] if use_near else opt_entries[nid]
            assert entry is not None
            if use_near and collect:
                self.stats.nearly_optimal_used += 1
            near_children: set[int] = set()
            for begin, end, nearly in chain_intervals(entry):
                intervals.add(
                    SiblingInterval(
                        node.children[begin].node_id, node.children[end].node_id
                    )
                )
                near_children.update(nearly)
                if explain.explaining():
                    explain.decision(
                        node.children[begin].node_id,
                        "dhw-dp",
                        parent=node.node_id,
                        children=end - begin + 1,
                        q_chain=use_near,
                        downgraded=len(nearly),
                    )
            for idx, child in enumerate(node.children):
                stack.append((child.node_id, idx in near_children))
        return intervals
