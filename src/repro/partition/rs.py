"""RS — the legacy Natix "rightmost siblings" heuristic (Sec. 4.3.2).

RS is the simple bulkload heuristic this paper set out to replace. It
processes nodes bottom-up; when a node's residual subtree exceeds ``K``
it repeatedly packs maximal runs of *rightmost* children into new
partitions — filling each partition greedily from right to left until the
next sibling would not fit — and stops cutting as soon as the residual
drops to ``K`` or below.

The right-to-left packing is what produces the paper's "peculiar
partitioning decisions": it never reconsiders where a run should start,
so a single heavy child can strand many light siblings in poorly filled
partitions. Still main-memory friendly and very fast.
"""

from __future__ import annotations

from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree
from repro.tree.traversal import iter_postorder


@register
class RSPartitioner(Partitioner):
    """Rightmost-siblings packing, Natix' pre-paper import algorithm."""

    name = "rs"
    optimal = False
    main_memory_friendly = True

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        residual = [0] * len(tree)
        intervals = {SiblingInterval(tree.root.node_id, tree.root.node_id)}
        for node in iter_postorder(tree):
            rest = node.weight + sum(residual[c.node_id] for c in node.children)
            right = len(node.children) - 1  # rightmost not-yet-cut child
            while rest > limit:
                # Start a new partition at the rightmost remaining child
                # and extend it leftward while the next sibling fits.
                end = right
                weight = residual[node.children[end].node_id]
                rest -= weight
                begin = end
                while (
                    rest > limit
                    and begin > 0
                    and weight + residual[node.children[begin - 1].node_id] <= limit
                ):
                    begin -= 1
                    w = residual[node.children[begin].node_id]
                    weight += w
                    rest -= w
                intervals.add(
                    SiblingInterval(
                        node.children[begin].node_id, node.children[end].node_id
                    )
                )
                if explain.explaining():
                    explain.decision(
                        node.children[begin].node_id,
                        "rs-pack",
                        parent=node.node_id,
                        run=end - begin + 1,
                        run_weight=weight,
                        rest=rest,
                    )
                right = begin - 1
            residual[node.node_id] = rest
        return Partitioning(intervals)
