"""FDW — optimal partitioning of *flat* trees (paper Sec. 3.2, Fig. 4).

A flat tree has a root whose children are all leaves. FDW runs the
Lemma-2 dynamic program over the child sequence and reconstructs an
optimal (minimal, then lean) tree sibling partitioning in ``O(n·K²)``
worst-case time. It is both a standalone algorithm (registered as
``"fdw"``, raising on non-flat input) and the building block that GHDW
and DHW apply per inner node.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InfeasiblePartitioningError, TreeError
from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.flatdp import INFEASIBLE_ENTRY, FlatDP, chain_intervals
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree


def fdw_partition_flat(tree: Tree, limit: int) -> Partitioning:
    """Optimal tree sibling partitioning of a flat tree.

    Returns the partitioning; raises :class:`TreeError` if the tree is not
    flat and :class:`InfeasiblePartitioningError` if a node exceeds the
    limit.
    """
    root = tree.root
    for child in root.children:
        if child.children:
            raise TreeError("fdw_partition_flat requires a flat tree (all children are leaves)")
    if root.weight > limit:
        raise InfeasiblePartitioningError(
            f"root weighs {root.weight} > K={limit}", node_id=root.node_id
        )
    for child in root.children:
        if child.weight > limit:
            raise InfeasiblePartitioningError(
                f"node {child.node_id} weighs {child.weight} > K={limit}",
                node_id=child.node_id,
            )
    dp = FlatDP([c.weight for c in root.children], limit)
    entry = dp.top_entry(root.weight)
    if entry is INFEASIBLE_ENTRY:  # cannot happen after the weight checks
        raise InfeasiblePartitioningError("no feasible flat partitioning exists")
    intervals = {SiblingInterval(root.node_id, root.node_id)}
    for begin, end, _nearly in chain_intervals(entry):
        intervals.add(
            SiblingInterval(root.children[begin].node_id, root.children[end].node_id)
        )
        if explain.explaining():
            explain.decision(
                root.children[begin].node_id,
                "fdw-dp",
                begin=begin,
                end=end,
                children=end - begin + 1,
            )
    if explain.explaining():
        explain.note("fdw.dp_cells", dp.cells_computed)
    return Partitioning(intervals)


@register
class FDWPartitioner(Partitioner):
    """Registry wrapper for :func:`fdw_partition_flat` (flat trees only)."""

    name = "fdw"
    optimal = True  # on its input class (flat trees)
    main_memory_friendly = False
    fastpath_capable = True

    def __init__(self, fastpath: Optional[bool] = None):
        """``fastpath`` pins the :mod:`repro.fastpath` kernel on or off;
        ``None`` defers to the ``REPRO_FASTPATH`` environment variable."""
        self.fastpath = fastpath

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        if self._fastpath_active():
            from repro.fastpath.kernels import fdw_fastpath

            return fdw_fastpath(tree, limit)
        return fdw_partition_flat(tree, limit)
