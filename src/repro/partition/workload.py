"""Workload-aware clustering (paper Sec. 5, following Bordawekar & Shmueli).

The paper notes that the strength of Lukes-style algorithms "lies in
their ability to optimize the partitioning for anticipated query
workloads" — when a workload is known, edge weights should reflect how
often queries traverse each edge instead of defaulting to unit weights.

This module closes that loop with the rest of the library:

1. :func:`profile_workload` runs a set of XPath queries against a
   throwaway single-record store whose ``edge_buffer`` collects raw
   hops; after the run they are oriented into parent-child edge counts
   (sibling hops are attributed to both endpoints' parent edges:
   keeping either sibling with the parent keeps the hop intra-partition
   in the parent-child model).
2. :func:`workload_edge_weight` turns those counts into an edge-weight
   function for :func:`repro.partition.lukes.lukes_partition`.
3. :func:`workload_aware_lukes` runs the whole pipeline.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

from repro.partition.interval import Partitioning
from repro.partition.lukes import lukes_partition
from repro.storage.constants import StorageConfig
from repro.tree.node import Tree, TreeNode


def profile_workload(tree: Tree, queries: Sequence[str]) -> Counter:
    """Count parent-child edge traversals for a query workload.

    Returns a counter keyed by ``(parent_id, child_id)``.
    """
    from repro.query.engine import evaluate
    from repro.storage.store import DocumentStore

    # A single giant "record" so profiling itself is cost-neutral; the
    # store is only used as the navigation substrate, so page size is
    # inflated to hold the whole document.
    total = max(tree.total_weight(), 1)
    config = StorageConfig(
        record_limit=total,
        page_size=32 * total + 65536,
    )
    store = DocumentStore.build(
        tree, Partitioning([(tree.root.node_id, tree.root.node_id)]), config
    )
    # raw hops accumulate in a plain list on the store (one bare append
    # per hop — a per-hop callback here is the PERF002 bug class);
    # orientation onto parent→child edges happens once, after the run
    hops: list = []
    store.edge_buffer = hops
    try:
        for query in queries:
            evaluate(store, query)
    finally:
        store.edge_buffer = None
    counts: Counter = Counter()
    nodes = tree.nodes
    for source_id, target_id in hops:
        source, target = nodes[source_id], nodes[target_id]
        if target.parent is source:
            counts[(source_id, target_id)] += 1
        elif source.parent is target:
            counts[(target_id, source_id)] += 1
        else:
            # sibling hop: benefits both endpoints' parent edges
            for node in (source, target):
                if node.parent is not None:
                    counts[(node.parent.node_id, node.node_id)] += 1
    return counts


def workload_edge_weight(
    counts: Counter, base: int = 1
) -> Callable[[TreeNode, TreeNode], int]:
    """Edge-weight function: ``base`` plus the traversal count."""

    def weight(parent: TreeNode, child: TreeNode) -> int:
        return base + counts.get((parent.node_id, child.node_id), 0)

    return weight


def workload_aware_lukes(
    tree: Tree, limit: int, queries: Sequence[str], base: int = 1
) -> tuple[int, Partitioning]:
    """Profile the workload, then run Lukes' DP with derived weights.

    Returns ``(value, partitioning)`` like
    :func:`~repro.partition.lukes.lukes_partition`.
    """
    counts = profile_workload(tree, queries)
    return lukes_partition(tree, limit, edge_weight=workload_edge_weight(counts, base))


def heat_aware_lukes(
    tree: Tree, limit: int, profile, doc: str, base: int = 1
) -> tuple[int, Partitioning]:
    """Run Lukes' DP with *observed* edge weights from live telemetry.

    ``profile`` is a :class:`repro.telemetry.heat.HeatProfile` (as
    returned by ``HeatAccumulator.profile()``, ``GET /debug/heat`` or
    ``repro-stats --heat``); its oriented traversal counts for ``doc``
    are consumed verbatim by :func:`workload_edge_weight`, closing the
    telemetry→repartitioning loop for hot documents.
    """
    counts = profile.edge_counts(doc)
    return lukes_partition(tree, limit, edge_weight=workload_edge_weight(counts, base))
