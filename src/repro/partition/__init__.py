"""Tree sibling partitioning: problem model and all algorithms.

Public surface:

* :class:`~repro.partition.interval.SiblingInterval` and
  :class:`~repro.partition.interval.Partitioning` — the result model.
* :mod:`repro.partition.evaluate` — validation, feasibility and the
  partition-forest weight evaluator shared by every algorithm and test.
* One module per algorithm (``fdw``, ``ghdw``, ``dhw``, ``km``, ``ekm``,
  ``rs``, ``dfs``, ``bfs``, ``brute``, ``lukes``, ``binpack``), each
  registering itself in :data:`~repro.partition.base.ALGORITHMS`.
* :mod:`repro.partition.fallback` — the graceful-degradation chain
  (``fallback``): tries ``dhw``, then ``ghdw``, then ``dfs``.
"""

from repro.partition.interval import SiblingInterval, Partitioning
from repro.partition.evaluate import (
    PartitioningReport,
    evaluate_partitioning,
    partition_weights,
    validate_partitioning,
    is_feasible,
)
from repro.partition.base import (
    ALGORITHMS,
    Partitioner,
    available_algorithms,
    get_algorithm,
    partition_tree,
    register,
)

# Importing the algorithm modules registers them.
from repro.partition import fdw as _fdw  # noqa: F401
from repro.partition import ghdw as _ghdw  # noqa: F401
from repro.partition import dhw as _dhw  # noqa: F401
from repro.partition import km as _km  # noqa: F401
from repro.partition import ekm as _ekm  # noqa: F401
from repro.partition import rs as _rs  # noqa: F401
from repro.partition import dfs as _dfs  # noqa: F401
from repro.partition import bfs as _bfs  # noqa: F401
from repro.partition import brute as _brute  # noqa: F401
from repro.partition import lukes as _lukes  # noqa: F401
from repro.partition import binpack as _binpack  # noqa: F401
from repro.partition import fallback as _fallback  # noqa: F401

from repro.partition.fdw import FDWPartitioner, fdw_partition_flat
from repro.partition.ghdw import GHDWPartitioner
from repro.partition.dhw import DHWPartitioner
from repro.partition.km import KMPartitioner
from repro.partition.ekm import EKMPartitioner
from repro.partition.rs import RSPartitioner
from repro.partition.dfs import DFSPartitioner
from repro.partition.bfs import BFSPartitioner
from repro.partition.brute import BruteForcePartitioner, enumerate_partitionings
from repro.partition.lukes import LukesPartitioner
from repro.partition.binpack import BinPackingBaseline
from repro.partition.fallback import ChainLink, DEFAULT_CHAIN, FallbackPartitioner

__all__ = [
    "SiblingInterval",
    "Partitioning",
    "PartitioningReport",
    "evaluate_partitioning",
    "partition_weights",
    "validate_partitioning",
    "is_feasible",
    "ALGORITHMS",
    "Partitioner",
    "available_algorithms",
    "get_algorithm",
    "partition_tree",
    "register",
    "FDWPartitioner",
    "fdw_partition_flat",
    "GHDWPartitioner",
    "DHWPartitioner",
    "KMPartitioner",
    "EKMPartitioner",
    "RSPartitioner",
    "DFSPartitioner",
    "BFSPartitioner",
    "BruteForcePartitioner",
    "enumerate_partitionings",
    "LukesPartitioner",
    "BinPackingBaseline",
    "ChainLink",
    "DEFAULT_CHAIN",
    "FallbackPartitioner",
]
