"""Partitioner interface and algorithm registry.

Every algorithm is a :class:`Partitioner` subclass with a unique ``name``.
Modules register a default instance via :func:`register`, which makes the
algorithm available to the benchmark harness, the bulkloader and the CLI
through :func:`get_algorithm` / :func:`partition_tree`.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.errors import InfeasiblePartitioningError, ReproError
from repro.partition.interval import Partitioning
from repro.tree.node import Tree

# name -> factory producing a fresh partitioner instance
ALGORITHMS: dict[str, Callable[[], "Partitioner"]] = {}


class Partitioner(abc.ABC):
    """Base class for all tree sibling partitioning algorithms.

    Subclasses implement :meth:`_partition`; the public :meth:`partition`
    wraps it with the shared infeasibility check (a node heavier than the
    limit can never be placed).
    """

    #: short identifier used in the registry, tables and CLI
    name: str = "abstract"
    #: does the algorithm produce a provably minimal partitioning?
    optimal: bool = False
    #: can the algorithm emit partitions before seeing the whole document?
    main_memory_friendly: bool = False

    def partition(self, tree: Tree, limit: int) -> Partitioning:
        """Compute a feasible tree sibling partitioning of ``tree``.

        Parameters
        ----------
        tree:
            The document tree.
        limit:
            The weight limit ``K`` (storage unit capacity in slots).

        Raises
        ------
        InfeasiblePartitioningError
            If some node weighs more than ``limit``.
        """
        if limit < 1:
            raise ReproError(f"weight limit must be positive, got {limit}")
        for node in tree:
            if node.weight > limit:
                raise InfeasiblePartitioningError(
                    f"node {node.node_id} ({node.label!r}) weighs {node.weight} > K={limit}",
                    node_id=node.node_id,
                )
        return self._partition(tree, limit)

    @abc.abstractmethod
    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        """Algorithm-specific implementation (input already sanity-checked)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def register(cls: type[Partitioner]) -> type[Partitioner]:
    """Class decorator adding a partitioner to :data:`ALGORITHMS`."""
    if not cls.name or cls.name == "abstract":
        raise ReproError(f"partitioner {cls!r} must define a name")
    ALGORITHMS[cls.name] = cls
    return cls


def available_algorithms() -> list[str]:
    """Registered algorithm names, in registration (paper) order."""
    return list(ALGORITHMS)


def get_algorithm(name: str) -> Partitioner:
    """Instantiate the partitioner registered under ``name``."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ReproError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        ) from None
    return factory()


def partition_tree(tree: Tree, limit: int, algorithm: str = "ekm") -> Partitioning:
    """One-call convenience API: partition ``tree`` with a named algorithm.

    The default is EKM, the paper's recommendation (and Natix' default
    since this work): near-optimal quality at heuristic speed.
    """
    return get_algorithm(algorithm).partition(tree, limit)
