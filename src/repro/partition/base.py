"""Partitioner interface and algorithm registry.

Every algorithm is a :class:`Partitioner` subclass with a unique ``name``.
Modules register a default instance via :func:`register`, which makes the
algorithm available to the benchmark harness, the bulkloader and the CLI
through :func:`get_algorithm` / :func:`partition_tree`.

The public :meth:`Partitioner.partition` wrapper is also the hook for
**runtime contract checking**: with ``check=True`` (or globally via the
``REPRO_CHECK_INVARIANTS`` environment variable) every result is verified
against the full sibling-partitioning contract — structural validity,
node coverage, capacity ``<= K`` and input immutability — through
:mod:`repro.analysis.contracts` before it is returned. Benchmarks and the
test suite run whole sessions in checked mode this way; see
``docs/ANALYSIS.md``.

The wrapper is likewise the **telemetry hook** (``docs/TELEMETRY.md``):
every call runs inside a ``partition.<name>`` trace span, and with
telemetry enabled it emits per-algorithm counters (runs, nodes,
partitions produced) and the root weight of the result. Contract
verification happens *outside* the span so checked-mode sessions do not
pollute the measured algorithm wall time.

Finally the wrapper is the **provenance hook**: under an active
:func:`repro.obsv.explain.explain_scope` it joins the decisions the
algorithm recorded (via ``explain.decision(...)`` at its cut sites) with
generic per-partition facts into a ``PartitionExplain``. Both the join
and the in-algorithm hooks are guarded no-ops otherwise.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro import telemetry
from repro.errors import InfeasiblePartitioningError, ReproError
from repro.obsv import explain
from repro.partition.interval import Partitioning
from repro.tree.node import Tree

# name -> factory producing a fresh partitioner instance
ALGORITHMS: dict[str, Callable[[], "Partitioner"]] = {}


class Partitioner(abc.ABC):
    """Base class for all tree sibling partitioning algorithms.

    Subclasses implement :meth:`_partition`; the public :meth:`partition`
    wraps it with the shared infeasibility check (a node heavier than the
    limit can never be placed).
    """

    #: short identifier used in the registry, tables and CLI
    name: str = "abstract"
    #: does the algorithm produce a provably minimal partitioning?
    optimal: bool = False
    #: can the algorithm emit partitions before seeing the whole document?
    main_memory_friendly: bool = False
    #: does the algorithm have a :mod:`repro.fastpath` kernel?
    fastpath_capable: bool = False
    #: tri-state fast-path preference: ``True``/``False`` pin it per
    #: instance, ``None`` defers to the ``REPRO_FASTPATH`` environment
    #: variable (see docs/PERFORMANCE.md)
    fastpath: Optional[bool] = None

    def partition(
        self, tree: Tree, limit: int, *, check: Optional[bool] = None
    ) -> Partitioning:
        """Compute a feasible tree sibling partitioning of ``tree``.

        Parameters
        ----------
        tree:
            The document tree.
        limit:
            The weight limit ``K`` (storage unit capacity in slots).
        check:
            Run the result through the runtime invariant contract
            (:func:`repro.analysis.contracts.verify_partition_contract`).
            ``None`` (the default) defers to the
            ``REPRO_CHECK_INVARIANTS`` environment variable, so whole
            benchmark/test sessions can be switched into checked mode
            without touching call sites.

        Raises
        ------
        InfeasiblePartitioningError
            If some node weighs more than ``limit``.
        ContractViolationError
            In checked mode, if the algorithm's output breaks the
            sibling-partitioning contract or the input tree was mutated.
        """
        if limit < 1:
            raise ReproError(f"weight limit must be positive, got {limit}")
        for node in tree:
            if node.weight > limit:
                raise InfeasiblePartitioningError(
                    f"node {node.node_id} ({node.label!r}) weighs {node.weight} > K={limit}",
                    node_id=node.node_id,
                )
        if check is None:
            from repro.analysis.contracts import contracts_enabled

            check = contracts_enabled()
        fingerprint = None
        if check:
            from repro.analysis.contracts import tree_fingerprint

            fingerprint = tree_fingerprint(tree)
        explaining = explain.explaining()
        if explaining:
            explain.start_run()
        with telemetry.span(f"partition.{self.name}") as sp:
            result = self._partition(tree, limit)
        if check:
            from repro.analysis.contracts import verify_partition_contract

            verify_partition_contract(
                tree, result, limit, algorithm=self.name, fingerprint_before=fingerprint
            )
        if telemetry.enabled():
            self._emit_telemetry(tree, result, sp)
        if explaining:
            explain.finish_run(self.name, tree, result, limit)
        return result

    def _fastpath_active(self) -> bool:
        """Should this call take the :mod:`repro.fastpath` kernel?

        Only capable algorithms ever do; the instance's ``fastpath``
        argument wins over the ``REPRO_FASTPATH`` environment variable.
        The kernel produces bit-identical partitionings but not the
        reference implementation's per-decision bookkeeping, so the fast
        path auto-disables under an active explain scope and under
        ``collect_stats=True`` (docs/PERFORMANCE.md lists the rules).
        """
        if not self.fastpath_capable:
            return False
        use = self.fastpath
        if use is None:
            from repro.fastpath import env_enabled

            use = env_enabled()
        if not use:
            return False
        if explain.explaining():
            return False
        return not getattr(self, "collect_stats", False)

    def _emit_telemetry(self, tree: Tree, result: Partitioning, sp: telemetry.Span) -> None:
        """Record the per-algorithm metric set (telemetry is enabled).

        The ``partition.<name>`` wall-time histogram is fed by the span
        itself; this adds the produced-output counters. The root-weight
        pass is O(n) and runs after the span closed, so it never skews
        the timing it documents.
        """
        from repro.partition.evaluate import root_weight

        prefix = f"partition.{self.name}"
        telemetry.count(f"{prefix}.runs")
        telemetry.count(f"{prefix}.nodes", len(tree))
        telemetry.count(f"{prefix}.partitions", result.cardinality)
        telemetry.gauge_set(f"{prefix}.root_weight", root_weight(tree, result))

    @abc.abstractmethod
    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        """Algorithm-specific implementation (input already sanity-checked)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def register(cls: type[Partitioner]) -> type[Partitioner]:
    """Class decorator adding a partitioner to :data:`ALGORITHMS`."""
    if not cls.name or cls.name == "abstract":
        raise ReproError(f"partitioner {cls!r} must define a name")
    ALGORITHMS[cls.name] = cls
    return cls


def available_algorithms() -> list[str]:
    """Registered algorithm names, in registration (paper) order."""
    return list(ALGORITHMS)


def get_algorithm(name: str) -> Partitioner:
    """Instantiate the partitioner registered under ``name``."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ReproError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        ) from None
    return factory()


def partition_tree(
    tree: Tree, limit: int, algorithm: str = "ekm", *, check: Optional[bool] = None
) -> Partitioning:
    """One-call convenience API: partition ``tree`` with a named algorithm.

    The default is EKM, the paper's recommendation (and Natix' default
    since this work): near-optimal quality at heuristic speed. ``check``
    is forwarded to :meth:`Partitioner.partition`.
    """
    return get_algorithm(algorithm).partition(tree, limit, check=check)
