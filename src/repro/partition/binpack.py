"""Bin packing — the structure-oblivious extreme (paper Sec. 5).

BIN PACKING minimizes the number of storage units while ignoring the tree
entirely; its result is a *lower bound reference*, not a valid tree
sibling partitioning (unrelated nodes may share a bin, so no interval
structure exists). The paper dismisses it for two reasons: it is NP-hard,
and scattering related nodes destroys navigation locality.

We provide first-fit-decreasing (the classic 11/9·OPT+1 approximation)
plus the trivial ``ceil(total/K)`` bound. Both appear in Table 1 as the
``Weight/K`` reference column.
"""

from __future__ import annotations

from repro.tree.node import Tree


def capacity_lower_bound(tree: Tree, limit: int) -> int:
    """``ceil(total_weight / K)`` — no partitioning can use fewer units."""
    total = tree.total_weight()
    return -(-total // limit)


def first_fit_decreasing(tree: Tree, limit: int) -> int:
    """Number of bins used by first-fit-decreasing over the node weights.

    Connectivity is ignored, so this approximates the absolute minimum
    number of storage units of the given capacity.
    """
    bins: list[int] = []
    for weight in sorted((n.weight for n in tree), reverse=True):
        for i, used in enumerate(bins):
            if used + weight <= limit:
                bins[i] = used + weight
                break
        else:
            bins.append(weight)
    return len(bins)


class BinPackingBaseline:
    """Callable facade mirroring the partitioner API where a count (not a
    partitioning) is the deliverable."""

    name = "binpack"

    def count(self, tree: Tree, limit: int) -> int:
        return first_fit_decreasing(tree, limit)

    def lower_bound(self, tree: Tree, limit: int) -> int:
        return capacity_lower_bound(tree, limit)
