"""Graceful degradation: a partitioner that falls back down a chain.

Production bulk loads must never fail because the *preferred* algorithm
did: an optimal algorithm can exhaust the recursion stack on a
pathological document, a heuristic can reject an input the cheap
baseline handles fine. :class:`FallbackPartitioner` runs a chain of
registered algorithms — by default ``dhw → ghdw → dfs`` — and returns
the first result, downgrading one link at a time.

A link is *failed* (and the chain downgrades) when its algorithm raises.
Each link may also carry a wall-time budget; pure-Python algorithms
cannot be preempted mid-run, so budgets are checked post-hoc against the
attempt's span time: an over-budget link that already produced a result
still wins (discarding finished work would only make the slow case
slower), but the overrun is recorded so operators can reorder or trim
the chain.

Every downgrade and overrun is observable (``docs/TELEMETRY.md``):

* counters ``partition.fallback.downgrades`` and
  ``partition.fallback.downgrades.<algorithm>`` (the link that failed),
* counter ``partition.fallback.budget_overruns``,
* attributes ``selected`` / ``downgraded_from`` on the enclosing
  ``partition.fallback`` trace span.

The default chain ends in ``dfs``, which succeeds on every feasible
input (it packs greedily in document order and never backtracks), so
the chain as a whole is total: whenever *any* feasible partitioning
exists, the fallback returns one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro import telemetry
from repro.errors import InfeasiblePartitioningError, ReproError
from repro.partition.base import ALGORITHMS, Partitioner, get_algorithm, register
from repro.partition.interval import Partitioning
from repro.tree.node import Tree


@dataclass(frozen=True)
class ChainLink:
    """One fallback step: an algorithm name and an optional time budget."""

    algorithm: str
    #: advisory wall-time budget in seconds (None = unbudgeted); overruns
    #: are counted, not enforced — see the module docstring
    time_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.algorithm == "fallback":
            raise ReproError("fallback chain cannot contain itself")
        if self.algorithm not in ALGORITHMS:
            raise ReproError(
                f"unknown algorithm {self.algorithm!r} in fallback chain; "
                f"available: {', '.join(ALGORITHMS)}"
            )
        if self.time_budget is not None and self.time_budget <= 0:
            raise ReproError("chain link time budget must be positive")


#: optimal -> near-optimal heuristic -> unconditional greedy baseline
DEFAULT_CHAIN = (
    ChainLink("dhw"),
    ChainLink("ghdw"),
    ChainLink("dfs"),
)

#: exceptions that mean "this link failed, try the next one" — anything
#: else (KeyboardInterrupt, genuine bugs) propagates
_LINK_FAILURES = (ReproError, RecursionError, MemoryError)


@register
class FallbackPartitioner(Partitioner):
    """Runs a degradation chain of registered algorithms (module doc)."""

    name = "fallback"
    optimal = False  # only as good as the link that answers
    main_memory_friendly = False

    def __init__(self, chain: Sequence[ChainLink | str] = DEFAULT_CHAIN):
        links = [
            link if isinstance(link, ChainLink) else ChainLink(link)
            for link in chain
        ]
        if not links:
            raise ReproError("fallback chain must contain at least one link")
        self.chain = tuple(links)

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        downgraded_from: list[str] = []
        last_error: Optional[BaseException] = None
        for link in self.chain:
            algorithm = get_algorithm(link.algorithm)
            try:
                # check=False: the outer wrapper already owns the
                # feasibility precheck and (in checked mode) verifies the
                # final result; re-verifying per link would charge failed
                # attempts for contract passes too.
                with telemetry.span(
                    "partition.fallback.attempt", algorithm=link.algorithm
                ) as attempt:
                    result = algorithm.partition(tree, limit, check=False)
            except _LINK_FAILURES as exc:
                # Includes InfeasiblePartitioningError: the heuristics
                # (KM/RS/EKM) raise it on feasible inputs they cannot
                # reduce below K — exactly the case a later link handles.
                last_error = exc
                self._record_downgrade(link, downgraded_from)
                continue
            if (
                link.time_budget is not None
                and attempt.elapsed > link.time_budget
                and telemetry.enabled()
            ):
                telemetry.count("partition.fallback.budget_overruns")
            self._record_selection(link, downgraded_from)
            return result
        message = (
            f"every algorithm in the fallback chain "
            f"({' -> '.join(l.algorithm for l in self.chain)}) failed for "
            f"K={limit}"
        )
        raise InfeasiblePartitioningError(message) from last_error

    def _record_downgrade(self, link: ChainLink, downgraded_from: list[str]) -> None:
        downgraded_from.append(link.algorithm)
        if telemetry.enabled():
            telemetry.count("partition.fallback.downgrades")
            telemetry.count(f"partition.fallback.downgrades.{link.algorithm}")

    def _record_selection(self, link: ChainLink, downgraded_from: list[str]) -> None:
        if not telemetry.enabled():
            return
        telemetry.count(f"partition.fallback.selected.{link.algorithm}")
        sp = telemetry.current_span()
        # Annotate the enclosing `partition.fallback` span (opened by the
        # public wrapper), not our attempt span, which already closed.
        if sp is not None and sp.name == f"partition.{self.name}":
            sp.attrs["selected"] = link.algorithm
            if downgraded_from:
                sp.attrs["downgraded_from"] = ",".join(downgraded_from)
