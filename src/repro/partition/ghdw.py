"""GHDW — Greedy-Height / Dynamic-Width partitioning (paper Sec. 3.3.1).

GHDW walks the tree bottom-up and, at every inner node, runs the FDW
dynamic program over the children's *collapsed* weights — each child
counts with the root weight of the locally optimal partitioning of its
subtree (Lemma 1). The result is always feasible and usually within a few
percent of the optimum, but can be suboptimal (the paper's Fig. 6): a
locally optimal subtree partitioning may force extra partitions one level
up. DHW repairs exactly this deficiency.

Complexity: ``O(n·K²)`` worst case; with the memoized table the practical
cost is far lower (only reachable ``s`` values are materialized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.flatdp import CARD, INF, ROOTWEIGHT, FlatDP, chain_intervals, leaf_entry
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree
from repro.tree.traversal import iter_postorder


@dataclass
class GHDWStats:
    """Instrumentation for the memoization ablation (experiment A2)."""

    dp_cells: int = 0
    inner_nodes: int = 0
    s_values_per_node: list[int] = field(default_factory=list)


@register
class GHDWPartitioner(Partitioner):
    """Bottom-up application of the flat-tree DP with greedy subtree choice."""

    name = "ghdw"
    optimal = False
    main_memory_friendly = True  # subtrees are finalized as soon as they close
    fastpath_capable = True

    def __init__(self, collect_stats: bool = False, fastpath: Optional[bool] = None):
        """``fastpath`` pins the :mod:`repro.fastpath` kernel on or off;
        ``None`` defers to the ``REPRO_FASTPATH`` environment variable."""
        self.collect_stats = collect_stats
        self.fastpath = fastpath
        self.stats = GHDWStats()

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        if self._fastpath_active():
            from repro.fastpath.kernels import ghdw_fastpath

            return ghdw_fastpath(tree, limit)
        # Stats also feed telemetry (DP cells touched per run).
        collect = self.collect_stats or telemetry.enabled()
        cells_before = self.stats.dp_cells
        n = len(tree)
        entries = [None] * n  # optimal-chain entry per node
        intervals = {SiblingInterval(tree.root.node_id, tree.root.node_id)}
        for node in iter_postorder(tree):
            if not node.children:
                entries[node.node_id] = leaf_entry(node.weight)
                continue
            child_weights = [entries[c.node_id][ROOTWEIGHT] for c in node.children]
            dp = FlatDP(child_weights, limit)
            entry = dp.top_entry(node.weight)
            assert entry[CARD] is not INF, "GHDW subproblem must be feasible"
            entries[node.node_id] = entry
            for begin, end, _nearly in chain_intervals(entry):
                intervals.add(
                    SiblingInterval(
                        node.children[begin].node_id, node.children[end].node_id
                    )
                )
                if explain.explaining():
                    explain.decision(
                        node.children[begin].node_id,
                        "ghdw-dp",
                        parent=node.node_id,
                        children=end - begin + 1,
                        dp_cells=dp.cells_computed,
                    )
            if explain.explaining():
                explain.add_note("ghdw.dp_cells_total", dp.cells_computed)
            if collect:
                self.stats.dp_cells += dp.cells_computed
                self.stats.inner_nodes += 1
                distinct_s: set[int] = set()
                for col in dp.needed:
                    distinct_s |= col
                self.stats.s_values_per_node.append(len(distinct_s))
        telemetry.count("partition.ghdw.dp_cells", self.stats.dp_cells - cells_before)
        return Partitioning(intervals)
