"""EKM — Enhanced Kundu & Misra (paper Sec. 4.3.4, a novel heuristic).

EKM is KM run on the binary (left-child / right-sibling) representation
of the document tree: every node has at most two binary children — its
first child and its next sibling. Cutting a binary edge therefore either
starts a new partition for a run of right siblings, or for a whole block
of children one level down; this is precisely the choice that lets DHW
beat GHDW (paper Fig. 6), which is why EKM comes surprisingly close to
the optimum while being trivial to implement.

Binary components map one-to-one to sibling partitions: a component's
root plus the nodes reachable from it through uncut *right* edges form
the sibling interval identifying the partition (see
:mod:`repro.tree.binary`). The component's total node weight equals the
partition weight, so enforcing the limit on binary subtree residuals
enforces feasibility.

Linear time, independent of ``K``, main-memory friendly — and since this
paper, Natix' default import algorithm.
"""

from __future__ import annotations

from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.binary import first_child, iter_binary_postorder, next_sibling
from repro.tree.node import Tree


@register
class EKMPartitioner(Partitioner):
    """Kundu-Misra cuts on the binary view."""

    name = "ekm"
    optimal = False
    main_memory_friendly = True

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        n = len(tree)
        residual = [0] * n
        cut = bytearray(n)  # 1 where the node's binary parent edge is cut
        for node in iter_binary_postorder(tree):
            rest = node.weight
            kids = []
            lc = first_child(node)
            if lc is not None:
                kids.append(lc)
                rest += residual[lc.node_id]
            rs = next_sibling(node)
            if rs is not None:
                kids.append(rs)
                rest += residual[rs.node_id]
            while rest > limit and kids:
                # Cut the heavier binary child (the paper's Fig. 8 walk);
                # ties go to the left (first-child) edge for determinism.
                heaviest = max(kids, key=lambda k: residual[k.node_id])
                cut[heaviest.node_id] = 1
                rest -= residual[heaviest.node_id]
                kids.remove(heaviest)
                if explain.explaining():
                    explain.decision(
                        heaviest.node_id,
                        "ekm-cut",
                        parent=node.node_id,
                        edge="first-child" if heaviest is lc else "next-sibling",
                        cut_weight=residual[heaviest.node_id],
                        rest=rest,
                    )
            residual[node.node_id] = rest
        cut[tree.root.node_id] = 1

        # Each cut node roots a component; its interval extends through
        # consecutive right siblings whose own binary parent edge is uncut.
        intervals = set()
        for node in tree:
            if not cut[node.node_id]:
                continue
            end = node
            while True:
                sib = end.next_sibling()
                if sib is None or cut[sib.node_id]:
                    break
                end = sib
            intervals.add(SiblingInterval(node.node_id, end.node_id))
        return Partitioning(intervals)
