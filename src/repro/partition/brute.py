"""Brute-force enumeration of all tree sibling partitionings.

The paper argues (Sec. 3.2) that the number of feasible partitionings is
exponential — ``Ω(n^{K-1})`` root partitions alone for flat unit-weight
trees — so enumeration is no import algorithm. It is, however, the
perfect *oracle*: this module enumerates every structurally valid
partitioning of a (small) tree, which the test suite uses to verify that
DHW is minimal **and** lean, that FDW is exact on flat trees, and that
every heuristic is feasible and no better than the optimum.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.errors import ReproError
from repro.partition.base import Partitioner, register
from repro.partition.evaluate import partition_weights, root_weight
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree, TreeNode


def _run_choices(children: list[TreeNode]) -> list[tuple[SiblingInterval, ...]]:
    """All ways to mark disjoint runs of consecutive siblings as intervals.

    Returned per sibling group; the empty choice (no intervals) is always
    included. For ``k`` children the count follows the recurrence
    ``f(k) = f(k-1) + sum_j f(k-1-j)`` (order-3 exponential), fine for the
    small trees the oracle is meant for.
    """
    k = len(children)
    # choices[i] = run-sets for the suffix starting at child index i
    choices: list[list[tuple[SiblingInterval, ...]]] = [[] for _ in range(k + 1)]
    choices[k] = [()]
    for i in range(k - 1, -1, -1):
        out: list[tuple[SiblingInterval, ...]] = list(choices[i + 1])  # child i unmarked
        for j in range(i, k):  # run [i..j]
            run = SiblingInterval(children[i].node_id, children[j].node_id)
            out.extend((run,) + rest for rest in choices[j + 1])
        choices[i] = out
    return choices[0]


def _run_choice_count(k: int, cap: Optional[int] = None) -> int:
    """Number of run-set choices for ``k`` children, without materializing
    them (the guard must run *before* the exponential expansion).

    With ``cap`` set, intermediate counts saturate at ``cap + 1``: the
    caller only needs to know whether the space exceeds the cap, and
    saturation keeps the guard O(k) small-integer work instead of O(k²)
    bignum additions on huge sibling groups.
    """
    counts = [0] * (k + 1)
    counts[k] = 1
    for i in range(k - 1, -1, -1):
        total = counts[i + 1] + sum(counts[j + 1] for j in range(i, k))
        if cap is not None and total > cap:
            # counts only grow toward index 0, so the final answer exceeds
            # the cap too — stop the O(k²) recurrence right here.
            return cap + 1
        counts[i] = total
    return counts[0]


def enumerate_partitionings(
    tree: Tree, max_count: int = 2_000_000
) -> Iterator[Partitioning]:
    """Yield every structurally valid tree sibling partitioning of ``tree``.

    Intervals in different sibling groups are independent, so the space
    is the cartesian product of per-parent run choices. Raises
    :class:`ReproError` when the space exceeds ``max_count`` (use a
    smaller tree).
    """
    parents = [node for node in tree if node.children]
    total = 1
    for node in parents:
        total *= _run_choice_count(len(node.children), cap=max_count)
        if total > max_count:
            raise ReproError(
                f"more than {max_count} partitionings; brute force is for small trees"
            )
    groups = [_run_choices(node.children) for node in parents]
    root_iv = SiblingInterval(tree.root.node_id, tree.root.node_id)
    for combo in itertools.product(*groups):
        intervals = {root_iv}
        for runs in combo:
            intervals.update(runs)
        yield Partitioning(intervals)


def brute_force_optimal(
    tree: Tree, limit: int, max_count: int = 2_000_000
) -> Optional[tuple[int, int, Partitioning]]:
    """Exhaustively find an optimal partitioning.

    Returns ``(cardinality, root_weight, partitioning)`` minimizing
    cardinality first and root weight second, or ``None`` if no feasible
    partitioning exists (some node exceeds the limit).
    """
    best: Optional[tuple[int, int, Partitioning]] = None
    for cand in enumerate_partitionings(tree, max_count=max_count):
        weights = partition_weights(tree, cand)
        if any(w > limit for w in weights.values()):
            continue
        key = (cand.cardinality, weights[SiblingInterval(0, 0)])
        if best is None or key < (best[0], best[1]):
            best = (key[0], key[1], cand)
    return best


def brute_force_nearly_optimal(
    tree: Tree, limit: int, max_count: int = 2_000_000
) -> Optional[tuple[int, int, Partitioning]]:
    """Exhaustively find a *nearly optimal* partitioning (Sec. 3.3.2):
    exactly one more partition than the minimum, lean among those.
    Returns ``None`` when none exists."""
    optimum = brute_force_optimal(tree, limit, max_count=max_count)
    if optimum is None:
        return None
    target = optimum[0] + 1
    best: Optional[tuple[int, int, Partitioning]] = None
    for cand in enumerate_partitionings(tree, max_count=max_count):
        if cand.cardinality != target:
            continue
        weights = partition_weights(tree, cand)
        if any(w > limit for w in weights.values()):
            continue
        rw = weights[SiblingInterval(0, 0)]
        if best is None or rw < best[1]:
            best = (target, rw, cand)
    return best


@register
class BruteForcePartitioner(Partitioner):
    """Oracle partitioner (exponential; small trees only)."""

    name = "brute"
    optimal = True
    main_memory_friendly = False

    def __init__(self, max_count: int = 2_000_000):
        self.max_count = max_count

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        result = brute_force_optimal(tree, limit, max_count=self.max_count)
        assert result is not None, "feasibility was pre-checked"
        return result[2]


def delta_w_oracle(tree: Tree, limit: int) -> int:
    """Reference implementation of ``ΔW(t)`` for the whole tree (used to
    validate DHW's Lemma-4 shortcut)."""
    optimum = brute_force_optimal(tree, limit)
    if optimum is None:
        return 0
    nearly = brute_force_nearly_optimal(tree, limit)
    if nearly is None:
        return 0
    return max(0, optimum[1] - nearly[1])
