"""BFS — top-down breadth-first greedy clustering (paper Sec. 4.2.2).

For each node in level order, try to place it in its parent's partition;
if that partition is full, try the previous sibling's partition; else
start a new one. BFS needs the whole document before it can run (proper
breadth-first order), so it is *not* main-memory friendly — the paper
includes it only for completeness, and Table 1 shows it producing the
worst partitionings of all algorithms on most documents.
"""

from __future__ import annotations

from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.interval import Partitioning
from repro.partition.assignment import intervals_from_assignment
from repro.tree.node import Tree
from repro.tree.traversal import iter_levelorder


@register
class BFSPartitioner(Partitioner):
    """Greedy level-order clustering."""

    name = "bfs"
    optimal = False
    main_memory_friendly = False

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        part_of = [-1] * len(tree)
        weights: list[int] = []
        for node in iter_levelorder(tree):
            if node.parent is None:
                part_of[node.node_id] = 0
                weights.append(node.weight)
                continue
            placed = False
            parent_pid = part_of[node.parent.node_id]
            if weights[parent_pid] + node.weight <= limit:
                part_of[node.node_id] = parent_pid
                weights[parent_pid] += node.weight
                placed = True
            else:
                prev = node.prev_sibling()
                if prev is not None:
                    prev_pid = part_of[prev.node_id]
                    if prev_pid != parent_pid and weights[prev_pid] + node.weight <= limit:
                        part_of[node.node_id] = prev_pid
                        weights[prev_pid] += node.weight
                        placed = True
            if not placed:
                if explain.explaining():
                    prev = node.prev_sibling()
                    reason = "parent-full" if prev is None else "parent-and-sibling-full"
                    explain.decision(
                        node.node_id, "bfs-new", reason=reason, cluster=len(weights)
                    )
                part_of[node.node_id] = len(weights)
                weights.append(node.weight)
        return Partitioning(intervals_from_assignment(tree, part_of))
