"""DFS — top-down depth-first greedy clustering (paper Sec. 4.2.1).

Adapted from Tsangaris & Naughton's object-clustering algorithm: walk the
tree in preorder and assign each node to the *current* partition if (a)
the node is connected to it through its parent or its previous sibling and
(b) it still fits; otherwise start a new partition at the node.

Because preorder is exactly the delivery order of an XML parser's event
stream, DFS is main-memory friendly and extremely cheap — but its early,
purely local decisions make it non-robust: the paper's Table 1 shows it
losing even to KM on several documents.
"""

from __future__ import annotations

from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.interval import Partitioning
from repro.partition.assignment import intervals_from_assignment
from repro.tree.node import Tree
from repro.tree.traversal import iter_preorder


@register
class DFSPartitioner(Partitioner):
    """Greedy preorder clustering with connectedness constraint."""

    name = "dfs"
    optimal = False
    main_memory_friendly = True

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        part_of = [-1] * len(tree)
        weights: list[int] = []
        current = -1
        for node in iter_preorder(tree):
            joined = False
            if current >= 0 and weights[current] + node.weight <= limit:
                parent = node.parent
                prev = node.prev_sibling()
                if (parent is not None and part_of[parent.node_id] == current) or (
                    prev is not None and part_of[prev.node_id] == current
                ):
                    part_of[node.node_id] = current
                    weights[current] += node.weight
                    joined = True
            if not joined:
                if explain.explaining():
                    if current < 0:
                        reason = "first"
                    elif weights[current] + node.weight > limit:
                        reason = "no-fit"
                    else:
                        reason = "not-connected"
                    explain.decision(
                        node.node_id, "dfs-new", reason=reason, cluster=len(weights)
                    )
                current = len(weights)
                weights.append(node.weight)
                part_of[node.node_id] = current
        return Partitioning(intervals_from_assignment(tree, part_of))
