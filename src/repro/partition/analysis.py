"""Structural analysis of partitionings: the *why* behind the numbers.

Beyond the cardinality that Tables 1–2 report, two static quantities
predict query performance on a layout:

* **cut parent edges** — parent-child edges whose endpoints live in
  different partitions (every interval member except the root cuts one);
* **navigation crossings** — first-child and next-sibling edges crossing
  partitions, i.e. the record switches a full document scan performs.

The fill histogram explains the disk-space differences of Table 3 (many
small records pack pages better than few large ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.partition.evaluate import (
    assignment_from_partitioning,
    partition_weights,
)
from repro.partition.interval import Partitioning
from repro.tree.node import Tree


@dataclass(frozen=True)
class PartitionAnalysis:
    """Summary statistics of one partitioning on one tree."""

    cardinality: int
    limit: int
    total_weight: int
    cut_parent_edges: int
    navigation_crossings: int
    min_weight: int
    max_weight: int
    mean_weight: float
    fill_histogram: dict[str, int] = field(repr=False)

    @property
    def mean_fill(self) -> float:
        return self.mean_weight / self.limit if self.limit else 0.0


def analyze_partitioning(
    tree: Tree, partitioning: Partitioning, limit: int
) -> PartitionAnalysis:
    """Compute all analysis metrics in two passes."""
    assignment = assignment_from_partitioning(tree, partitioning)
    cut_edges = 0
    crossings = 0
    for node in tree:
        parent = node.parent
        if parent is not None and assignment[node.node_id] != assignment[parent.node_id]:
            cut_edges += 1
        # navigation edges: parent -> first child, node -> next sibling
        if node.children:
            first = node.children[0]
            if assignment[first.node_id] != assignment[node.node_id]:
                crossings += 1
        sibling = node.next_sibling()
        if sibling is not None and assignment[sibling.node_id] != assignment[node.node_id]:
            crossings += 1
    weights = list(partition_weights(tree, partitioning).values())
    histogram: dict[str, int] = {}
    for weight in weights:
        bucket = f"{min(10, int(10 * weight / limit)) * 10}%"
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return PartitionAnalysis(
        cardinality=partitioning.cardinality,
        limit=limit,
        total_weight=tree.total_weight(),
        cut_parent_edges=cut_edges,
        navigation_crossings=crossings,
        min_weight=min(weights),
        max_weight=max(weights),
        mean_weight=sum(weights) / len(weights),
        fill_histogram=histogram,
    )
