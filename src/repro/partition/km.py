"""KM — the Kundu & Misra (1977) tree partitioning algorithm (Sec. 4.3.3).

KM processes nodes bottom-up; whenever the residual subtree of the
current node is heavier than ``K``, it cuts the heaviest remaining child
subtree into a partition of its own, repeating until the residual fits.
The result is a minimum-cardinality partitioning **for partitions
connected by parent-child edges only**: every produced interval is a
singleton ``(v, v)``, so adjacent sibling subtrees are never merged even
when they would fit together — which is exactly the weakness sibling
partitioning removes (Table 1 shows >90 % more partitions than DHW on
relational documents).

Linear time, independent of ``K``, and main-memory friendly.
"""

from __future__ import annotations

from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree
from repro.tree.traversal import iter_postorder


@register
class KMPartitioner(Partitioner):
    """Kundu-Misra single-node-interval baseline."""

    name = "km"
    optimal = False  # optimal only within the parent-child-only model
    main_memory_friendly = True

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        residual = [0] * len(tree)
        intervals = {SiblingInterval(tree.root.node_id, tree.root.node_id)}
        for node in iter_postorder(tree):
            rest = node.weight + sum(residual[c.node_id] for c in node.children)
            if rest > limit:
                # Cut heaviest children first; ties resolved left-to-right
                # for determinism.
                by_weight = sorted(
                    node.children, key=lambda c: (-residual[c.node_id], c.index)
                )
                for child in by_weight:
                    if rest <= limit:
                        break
                    intervals.add(SiblingInterval(child.node_id, child.node_id))
                    rest -= residual[child.node_id]
                    if explain.explaining():
                        explain.decision(
                            child.node_id,
                            "km-cut",
                            parent=node.node_id,
                            cut_weight=residual[child.node_id],
                            rest=rest,
                            considered=len(by_weight),
                        )
            residual[node.node_id] = rest
        return Partitioning(intervals)
