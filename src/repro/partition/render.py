"""ASCII rendering of partitioned trees.

Turns a tree + partitioning into the kind of picture the paper draws by
hand in Figs. 1/2/6/9: an indented tree where every node is tagged with
its partition and interval starts are marked. Used by examples and — more
importantly — by humans trying to understand why an algorithm made a
particular decision.
"""

from __future__ import annotations

import io

from repro.partition.evaluate import assignment_from_partitioning, partition_weights
from repro.partition.interval import Partitioning
from repro.tree.node import Tree, TreeNode


def render_partitioning(
    tree: Tree,
    partitioning: Partitioning,
    limit: int | None = None,
    max_nodes: int = 200,
) -> str:
    """Render the tree with partition tags, one node per line.

    Output format::

        P0│ a:3
        P0│ ├─ b:2
        P1│ ├─ c:1        ◀ interval (c..f)
        ...

    Trees larger than ``max_nodes`` are truncated with a note.
    """
    assignment = assignment_from_partitioning(tree, partitioning)
    starts = {iv.left: iv for iv in partitioning.intervals}
    width = len(str(max(assignment)))
    out = io.StringIO()

    def tag(node: TreeNode) -> str:
        return f"P{assignment[node.node_id]:<{width}}│ "

    count = 0
    truncated = False
    # iterative preorder with prefix bookkeeping
    stack: list[tuple[TreeNode, str, bool]] = [(tree.root, "", True)]
    while stack:
        node, prefix, is_last = stack.pop()
        count += 1
        if count > max_nodes:
            truncated = True
            break
        if node.parent is None:
            branch = ""
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            child_prefix = prefix + ("   " if is_last else "│  ")
        line = f"{tag(node)}{prefix}{branch}{node.label}:{node.weight}"
        if node.node_id in starts:
            iv = starts[node.node_id]
            if iv.left == iv.right:
                line += f"   ◀ interval ({tree.node(iv.left).label})"
            else:
                line += (
                    f"   ◀ interval ({tree.node(iv.left).label}.."
                    f"{tree.node(iv.right).label})"
                )
        out.write(line + "\n")
        for idx in range(len(node.children) - 1, -1, -1):
            stack.append((node.children[idx], child_prefix, idx == len(node.children) - 1))
    if truncated:
        out.write(f"... ({len(tree) - max_nodes} more nodes)\n")
    out.write(_summary(tree, partitioning, limit))
    return out.getvalue()


def _summary(tree: Tree, partitioning: Partitioning, limit: int | None) -> str:
    weights = partition_weights(tree, partitioning)
    parts = ", ".join(
        f"P{idx}={weights[iv]}"
        for idx, iv in enumerate(partitioning.sorted_intervals())
    )
    suffix = f" (K={limit})" if limit is not None else ""
    return f"{partitioning.cardinality} partitions{suffix}: {parts}\n"
