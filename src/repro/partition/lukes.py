"""Lukes (1974) — optimal-value tree partitioning, parent-child edges only.

Lukes' dynamic program (paper Sec. 5) finds a partitioning of maximal
*value* — the total weight of edges that stay inside partitions — under a
partition weight limit. Partitions must be connected through parent-child
edges, so as with KM every produced interval is a singleton; sibling
subtrees never share a partition unless their parent does.

With unit edge weights (the default, and the paper's "no workload
knowledge" case) maximizing kept edges is the same as minimizing the
number of partitions, i.e. Lukes solves the same problem as KM — the
test suite uses this, plus ``networkx``'s independent implementation, to
cross-validate all three.

Complexity is ``O(n·K²)`` time and ``O(n·K)`` table space.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obsv import explain
from repro.partition.base import Partitioner, register
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree, TreeNode
from repro.tree.traversal import iter_postorder

EdgeWeight = Callable[[TreeNode, TreeNode], int]


def _unit_edge(_parent: TreeNode, _child: TreeNode) -> int:
    return 1


def lukes_partition(
    tree: Tree, limit: int, edge_weight: Optional[EdgeWeight] = None
) -> tuple[int, Partitioning]:
    """Run Lukes' DP; returns ``(value, partitioning)``.

    ``value`` is the total weight of intra-partition edges; the
    partitioning consists of singleton intervals for every cut child plus
    the root interval.
    """
    if edge_weight is None:
        edge_weight = _unit_edge
    n = len(tree)
    # Per node: table mapping "weight of the cluster containing v inside
    # its processed subtree" -> best achievable value.
    tables: list[Optional[dict[int, int]]] = [None] * n
    # Backtracking: back[v][i][s_after] = (s_before, s_child | None); None
    # means the edge to child i was cut.
    back: list[list[dict[int, tuple[int, Optional[int]]]]] = [[] for _ in range(n)]
    # Value-maximal final cluster weight per node (used when its parent
    # edge is cut); ties prefer the lighter cluster.
    best_state: list[int] = [0] * n

    for node in iter_postorder(tree):
        table = {node.weight: 0}
        decisions: list[dict[int, tuple[int, Optional[int]]]] = []
        for child in node.children:
            ctable = tables[child.node_id]
            assert ctable is not None
            cut_value = ctable[best_state[child.node_id]]
            ew = edge_weight(node, child)
            new_table: dict[int, int] = {}
            dec: dict[int, tuple[int, Optional[int]]] = {}
            for s, val in table.items():
                # Option 1: cut the edge; the child's cluster is finalized.
                cand = val + cut_value
                if cand > new_table.get(s, -1):
                    new_table[s] = cand
                    dec[s] = (s, None)
                # Option 2: keep the edge; merge a child cluster into v's.
                for sc, valc in ctable.items():
                    total = s + sc
                    if total > limit:
                        continue
                    cand = val + valc + ew
                    if cand > new_table.get(total, -1):
                        new_table[total] = cand
                        dec[total] = (s, sc)
            table = new_table
            decisions.append(dec)
        tables[node.node_id] = table
        back[node.node_id] = decisions
        best_state[node.node_id] = max(table, key=lambda s: (table[s], -s))

    # Backtrack the cut set top-down.
    cut: set[int] = set()
    stack: list[tuple[TreeNode, int]] = [
        (tree.root, best_state[tree.root.node_id])
    ]
    while stack:
        node, s = stack.pop()
        # Undo child merges right-to-left (children were merged in order).
        for idx in range(len(node.children) - 1, -1, -1):
            child = node.children[idx]
            s_before, s_child = back[node.node_id][idx][s]
            if s_child is None:
                cut.add(child.node_id)
                if explain.explaining():
                    explain.decision(
                        child.node_id,
                        "lukes-cut",
                        parent=node.node_id,
                        cluster_weight=best_state[child.node_id],
                    )
                stack.append((child, best_state[child.node_id]))
            else:
                stack.append((child, s_child))
            s = s_before
    root_table = tables[tree.root.node_id]
    assert root_table is not None
    value = root_table[best_state[tree.root.node_id]]
    intervals = {SiblingInterval(tree.root.node_id, tree.root.node_id)}
    intervals.update(SiblingInterval(c, c) for c in cut)
    return value, Partitioning(intervals)


@register
class LukesPartitioner(Partitioner):
    """Lukes' optimal-value DP with unit edge weights."""

    name = "lukes"
    optimal = False  # optimal value, but in the parent-child-only model
    main_memory_friendly = False

    def _partition(self, tree: Tree, limit: int) -> Partitioning:
        return lukes_partition(tree, limit)[1]
