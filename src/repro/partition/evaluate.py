"""Partition-forest semantics: validation, weights, feasibility.

This module is the single source of truth for what a partitioning *means*
(paper Sec. 2.1). Every algorithm's output — and every candidate the test
suite constructs — is interpreted by the functions here:

* Cutting every interval member from its parent yields the *partition
  forest* ``F_P_T``.
* The *partition weight* of a node is its subtree weight in that forest.
* The partition defined by an interval is the set of forest trees rooted
  at the interval's members; its weight is the sum of their partition
  weights.
* A partitioning is *feasible* for limit ``K`` iff it contains the root
  interval and every interval's partition weight is at most ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidPartitioningError
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree
from repro.tree.traversal import iter_postorder


def validate_partitioning(tree: Tree, partitioning: Partitioning) -> None:
    """Check the structural rules of a tree sibling partitioning.

    Raises :class:`InvalidPartitioningError` if any interval has endpoints
    that are not siblings in order, if intervals overlap, or if the root
    interval ``(t, t)`` is missing.
    """
    root_iv = SiblingInterval(tree.root.node_id, tree.root.node_id)
    if root_iv not in partitioning.intervals:
        raise InvalidPartitioningError("partitioning does not contain the root interval (t,t)")
    seen: set[int] = set()
    n = len(tree)
    for iv in partitioning.intervals:
        if not (0 <= iv.left < n and 0 <= iv.right < n):
            raise InvalidPartitioningError(f"interval {iv} references unknown nodes")
        left, right = tree.node(iv.left), tree.node(iv.right)
        if left.parent is not right.parent:
            raise InvalidPartitioningError(f"interval {iv} endpoints are not siblings")
        if left.parent is not None and left.index > right.index:
            raise InvalidPartitioningError(f"interval {iv} endpoints are out of sibling order")
        if left.parent is None and iv.left != iv.right:
            raise InvalidPartitioningError(f"interval {iv} spans the root")
        for member in iv.nodes(tree):
            if member.node_id in seen:
                raise InvalidPartitioningError(
                    f"node {member.node_id} belongs to more than one interval"
                )
            seen.add(member.node_id)


def _forest_node_weights(tree: Tree, cut: set[int]) -> list[int]:
    """Partition weight of every node given the cut set (one postorder
    pass): a node's partition weight is its own weight plus the partition
    weights of its children that are *not* cut into their own forest
    trees."""
    weights = [0] * len(tree)
    for node in iter_postorder(tree):
        total = node.weight
        for child in node.children:
            if child.node_id not in cut:
                total += weights[child.node_id]
        weights[node.node_id] = total
    return weights


def partition_node_weights(tree: Tree, partitioning: Partitioning) -> list[int]:
    """Partition weight ``W_P_T(v)`` of every node, indexed by node id."""
    cut = partitioning.member_ids(tree)
    cut.add(tree.root.node_id)
    return _forest_node_weights(tree, cut)


def partition_weights(
    tree: Tree, partitioning: Partitioning
) -> dict[SiblingInterval, int]:
    """Partition weight of every interval, ``W_P_T(l, r)``.

    Interval members are materialized exactly once and shared between the
    cut set and the per-interval weight sums, so the whole computation is
    a single O(n) walk plus one postorder pass (no per-interval re-walks).
    """
    members = {iv: iv.nodes(tree) for iv in partitioning.intervals}
    cut = {node.node_id for nodes in members.values() for node in nodes}
    cut.add(tree.root.node_id)
    node_weights = _forest_node_weights(tree, cut)
    return {
        iv: sum(node_weights[node.node_id] for node in nodes)
        for iv, nodes in members.items()
    }


def root_weight(tree: Tree, partitioning: Partitioning) -> int:
    """``W_P_T(t)``: weight of the partition containing the root."""
    return partition_node_weights(tree, partitioning)[tree.root.node_id]


def is_feasible(tree: Tree, partitioning: Partitioning, limit: int) -> bool:
    """Feasibility per Sec. 2.1 (structure is assumed valid)."""
    root_iv = SiblingInterval(tree.root.node_id, tree.root.node_id)
    if root_iv not in partitioning.intervals:
        return False
    return all(w <= limit for w in partition_weights(tree, partitioning).values())


@dataclass(frozen=True)
class PartitioningReport:
    """Everything one usually wants to know about a partitioning."""

    cardinality: int
    root_weight: int
    feasible: bool
    limit: int
    max_partition_weight: int
    total_weight: int
    interval_weights: dict[SiblingInterval, int] = field(repr=False)

    @property
    def fill_factor(self) -> float:
        """Average fraction of the capacity ``K`` that partitions use."""
        if self.cardinality == 0:
            return 0.0
        return self.total_weight / (self.cardinality * self.limit)

    @property
    def lower_bound(self) -> int:
        """``ceil(total_weight / K)``: the structure-oblivious minimum."""
        return -(-self.total_weight // self.limit)


def evaluate_partitioning(
    tree: Tree, partitioning: Partitioning, limit: int, validate: bool = True
) -> PartitioningReport:
    """Validate (optionally) and measure a partitioning in one call."""
    if validate:
        validate_partitioning(tree, partitioning)
    weights = partition_weights(tree, partitioning)
    root_iv = SiblingInterval(tree.root.node_id, tree.root.node_id)
    return PartitioningReport(
        cardinality=partitioning.cardinality,
        root_weight=weights.get(root_iv, 0),
        feasible=root_iv in weights and all(w <= limit for w in weights.values()),
        limit=limit,
        max_partition_weight=max(weights.values()) if weights else 0,
        total_weight=tree.total_weight(),
        interval_weights=weights,
    )


def assignment_from_partitioning(tree: Tree, partitioning: Partitioning) -> list[int]:
    """Map every node id to a dense partition index.

    Partition indices follow the sorted interval order; every non-member
    node inherits the partition of its parent. Used by the storage engine
    to materialize records and by tests to cross-check weights.
    """
    intervals = partitioning.sorted_intervals()
    index_of: dict[SiblingInterval, int] = {iv: i for i, iv in enumerate(intervals)}
    assignment = [-1] * len(tree)
    member_partition: dict[int, int] = {}
    for iv in intervals:
        for node in iv.nodes(tree):
            member_partition[node.node_id] = index_of[iv]
    for node in tree:  # creation order: parents before children
        if node.node_id in member_partition:
            assignment[node.node_id] = member_partition[node.node_id]
        elif node.parent is not None:
            assignment[node.node_id] = assignment[node.parent.node_id]
        else:
            raise InvalidPartitioningError("root is not covered by any interval")
    return assignment
