"""Sibling intervals and tree sibling partitionings (paper Sec. 2.1).

A *sibling interval* ``(l, r)`` is a maximal-by-construction run of
consecutive siblings, identified here by the node ids of its first and
last member. A *tree sibling partitioning* is a set of disjoint sibling
intervals; a *feasible* one additionally contains the root interval
``(t, t)`` and respects the weight limit.

Intervals and partitionings are plain value objects: they reference nodes
by id only, so they can be stored, hashed, compared and serialized
independently of the tree they came from.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.tree.node import Tree, TreeNode


class SiblingInterval(tuple):
    """Immutable ``(left_id, right_id)`` pair with named accessors."""

    __slots__ = ()

    def __new__(cls, left: int, right: int) -> "SiblingInterval":
        return super().__new__(cls, (int(left), int(right)))

    @property
    def left(self) -> int:
        return self[0]

    @property
    def right(self) -> int:
        return self[1]

    @property
    def is_singleton(self) -> bool:
        return self[0] == self[1]

    def nodes(self, tree: Tree) -> list[TreeNode]:
        """Materialize the member nodes of this interval in ``tree``."""
        return tree.interval_nodes(tree.node(self.left), tree.node(self.right))

    def __repr__(self) -> str:
        return f"({self.left},{self.right})"


class Partitioning:
    """A set of disjoint sibling intervals.

    The class is intentionally dumb: validation and weight computation
    live in :mod:`repro.partition.evaluate` so there is exactly one
    implementation of the partition-forest semantics.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[SiblingInterval | tuple[int, int]] = ()):
        self.intervals: frozenset[SiblingInterval] = frozenset(
            iv if isinstance(iv, SiblingInterval) else SiblingInterval(*iv) for iv in intervals
        )

    @property
    def cardinality(self) -> int:
        """Number of partitions, i.e. number of intervals."""
        return len(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[SiblingInterval]:
        return iter(self.intervals)

    def __contains__(self, interval: object) -> bool:
        if isinstance(interval, tuple) and not isinstance(interval, SiblingInterval):
            interval = SiblingInterval(*interval)  # type: ignore[misc]
        return interval in self.intervals

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Partitioning) and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def union(self, other: "Partitioning | Iterable") -> "Partitioning":
        """A new partitioning with the intervals of both (no validation)."""
        other_ivs = other.intervals if isinstance(other, Partitioning) else other
        return Partitioning(set(self.intervals) | set(other_ivs))

    def with_interval(self, left: int, right: int) -> "Partitioning":
        return Partitioning(set(self.intervals) | {SiblingInterval(left, right)})

    def sorted_intervals(self) -> list[SiblingInterval]:
        """Deterministic order (by left id, then right id) for display."""
        return sorted(self.intervals)

    def member_ids(self, tree: Tree) -> set[int]:
        """Ids of all nodes that are a member of some interval (the *cut*
        nodes of the partition forest)."""
        members: set[int] = set()
        for iv in self.intervals:
            members.update(n.node_id for n in iv.nodes(tree))
        return members

    def __repr__(self) -> str:
        return "Partitioning{" + ", ".join(map(repr, self.sorted_intervals())) + "}"
