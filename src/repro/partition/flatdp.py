"""Shared dynamic-programming core for FDW, GHDW and DHW (paper Sec. 3).

The table of the paper's Fig. 4/5/7 is realized by :class:`FlatDP`. One
instance solves the *flat* subproblem for a single parent: given the
sequence of (collapsed) child weights ``cw[0..n-1]`` and a weight limit
``K``, compute for a requested base root weight ``s`` an optimal
partitioning of the flat tree ``T^s_n`` — minimal in the number of
sibling intervals among the children, and *lean* (minimal root-partition
weight) among those.

Entries ``D(s, j)`` follow Lemma 2: either the last child ``c_j`` joins
the root partition (the entry of ``D(s + cw_j, j-1)`` is shared), or a new
interval ``(c_{j-m}, c_j)`` is appended to ``D(s, j-m-1)``.

Memoization (Sec. 3.2.3 / 3.3.6): instead of filling all ``K`` rows, only
the ``s`` values reachable from the requested bases are materialized. New
bases (DHW's inflated root weights, Lemma 4) can be added lazily via
:meth:`FlatDP.top_entry`.

For DHW, per-child ``deltas`` (the ``ΔW`` values) enable *nearly-optimal*
downgrades inside interval candidates (Lemma 5): when an interval's
optimal weight exceeds ``K`` but its best-case weight ``w - Σ ΔW`` does
not, members are greedily switched to their nearly-optimal subtree
partitioning in order of descending ``ΔW``, each switch costing one extra
partition.

Entries are plain tuples ``(card, rootweight, begin, end, nearlyopt,
next_entry)``:

``card``
    number of intervals created among the children *plus* one per
    nearly-optimal downgrade (the paper's ``card`` field, normalized so
    the empty base entry has card 0),
``rootweight``
    weight of the root partition of this sub-solution,
``begin, end``
    0-based child indices of the interval this entry appended (``None``
    for base entries),
``nearlyopt``
    tuple of 0-based child indices downgraded to nearly-optimal,
``next_entry``
    the rest of the interval chain (object reference; ``None`` for base
    entries).
"""

from __future__ import annotations

from typing import Optional, Sequence

INF = float("inf")

# Tuple field indices, for readability at use sites.
CARD, ROOTWEIGHT, BEGIN, END, NEARLYOPT, NEXT = range(6)

#: Sentinel for "no feasible partitioning of this subproblem".
INFEASIBLE_ENTRY = (INF, INF, None, None, (), None)

Entry = tuple


class FlatDP:
    """Memoized dynamic-programming table for one flat (sub)tree.

    Parameters
    ----------
    child_weights:
        ``cw[i]`` is the weight of child ``c_{i+1}`` — the plain node
        weight for true flat trees (FDW), or the collapsed optimal root
        weight of the child's subtree for deep trees (GHDW/DHW).
    limit:
        The weight limit ``K``.
    deltas:
        Optional ``ΔW`` per child (DHW only). ``None`` disables
        nearly-optimal downgrades (FDW/GHDW behaviour).
    """

    __slots__ = (
        "cw",
        "limit",
        "deltas",
        "exclude_endpoints",
        "cols",
        "needed",
        "cells_computed",
        "_picks_cache",
    )

    def __init__(
        self,
        child_weights: Sequence[int],
        limit: int,
        deltas: Optional[Sequence[int]] = None,
        exclude_endpoints: bool = False,
    ):
        self.cw = list(child_weights)
        self.limit = limit
        self.deltas = list(deltas) if deltas is not None else None
        # Sec. 3.3.6: the first and last node of an interval never *need*
        # a nearly-optimal subtree partitioning — an optimal one always
        # suffices for a globally optimal solution — so they can be left
        # out of the downgrade candidate list.
        self.exclude_endpoints = exclude_endpoints
        n = len(self.cw)
        self.cols: list[dict[int, Entry]] = [{} for _ in range(n + 1)]
        self.needed: list[set[int]] = [set() for _ in range(n + 1)]
        #: number of table cells materialized (memoization statistics, A2)
        self.cells_computed = 0
        # Nearly-optimal pick sets depend only on the interval (j, m) —
        # not on the root weight s — so they are shared across rows (the
        # spirit of the paper's Sec. 3.3.6 priority-queue optimization).
        self._picks_cache: dict[tuple[int, int], Optional[tuple[int, ...]]] = {}

    @property
    def n(self) -> int:
        return len(self.cw)

    def top_entry(self, base_s: int) -> Entry:
        """The entry ``D(base_s, n)``, i.e. the best partitioning of the
        flat tree whose root (including everything already committed to
        the root partition) weighs ``base_s``.

        Returns :data:`INFEASIBLE_ENTRY` if ``base_s`` exceeds the limit
        or no feasible solution exists.
        """
        if base_s > self.limit:
            return INFEASIBLE_ENTRY
        n = self.n
        if base_s not in self.needed[n]:
            self._extend(base_s)
        return self.cols[n][base_s]

    # ------------------------------------------------------------------
    # internals

    def _extend(self, base_s: int) -> None:
        """Propagate a new base ``s`` value down the columns and fill the
        newly needed cells bottom-up."""
        n = self.n
        cw = self.cw
        limit = self.limit
        new_per_col: list[set[int]] = [set() for _ in range(n + 1)]
        new_per_col[n] = {base_s}
        self.needed[n].add(base_s)
        for j in range(n, 0, -1):
            w = cw[j - 1]
            below = self.needed[j - 1]
            fresh = set()
            for s in new_per_col[j]:
                if s not in below:
                    fresh.add(s)
                s2 = s + w
                if s2 <= limit and s2 not in below:
                    fresh.add(s2)
            new_per_col[j - 1] = fresh
            below.update(fresh)
        for s in new_per_col[0]:
            self.cols[0][s] = (0, s, None, None, (), None)
            self.cells_computed += 1
        for j in range(1, n + 1):
            col = self.cols[j]
            for s in new_per_col[j]:
                col[s] = self._compute(s, j)
                self.cells_computed += 1

    def _compute(self, s: int, j: int) -> Entry:
        """Lemma 2 recurrence for cell ``D(s, j)``."""
        cw = self.cw
        cols = self.cols
        limit = self.limit
        deltas = self.deltas

        # Candidate 1: c_j joins the root partition — share D(s + cw_j, j-1).
        s2 = s + cw[j - 1]
        best = cols[j - 1][s2] if s2 <= limit else INFEASIBLE_ENTRY
        best_card = best[CARD]
        best_rw = best[ROOTWEIGHT]

        # Candidate 2: append an interval (c_{j-m}, c_j) to D(s, j-m-1).
        w = 0
        dw = 0
        max_m = j if j < limit else limit
        for m in range(max_m):
            idx = j - m - 1  # 0-based index of the interval's first child
            w += cw[idx]
            if deltas is None:
                if w > limit:
                    break
                nearlyopt: tuple[int, ...] = ()
                extra = 1
            else:
                dw += deltas[idx]
                if w - dw > limit:
                    # Even downgrading every member cannot make the
                    # interval fit; wider intervals only get heavier.
                    break
                if w <= limit:
                    nearlyopt = ()
                    extra = 1
                else:
                    key = (j, m)
                    if key in self._picks_cache:
                        picks = self._picks_cache[key]
                    else:
                        picks = self._pick_nearly_optimal(idx, j, w)
                        self._picks_cache[key] = picks
                    if picks is None:
                        continue
                    nearlyopt = picks
                    extra = 1 + len(picks)
            prev = cols[idx][s]
            prev_card = prev[CARD]
            if prev_card is INF:
                continue
            crd = prev_card + extra
            rw = prev[ROOTWEIGHT]
            if crd < best_card or (crd == best_card and rw < best_rw):
                best_card = crd
                best_rw = rw
                best = (crd, rw, idx, j - 1, nearlyopt, prev)
        return best

    def _pick_nearly_optimal(self, begin: int, j: int, w: int) -> Optional[tuple[int, ...]]:
        """Greedy downgrade selection for interval members ``begin..j-1``.

        Members are switched to nearly-optimal subtree partitionings in
        order of descending ``ΔW`` until the interval weight drops to the
        limit (Lemma 5 statement 2). Returns ``None`` if infeasible.
        """
        deltas = self.deltas
        assert deltas is not None
        candidates = range(begin + 1, j - 1) if self.exclude_endpoints else range(begin, j)
        order = sorted(
            (i for i in candidates if deltas[i] > 0),
            key=lambda i: deltas[i],
            reverse=True,
        )
        picks: list[int] = []
        limit = self.limit
        for i in order:
            if w <= limit:
                break
            w -= deltas[i]
            picks.append(i)
        if w > limit:
            return None
        return tuple(picks)


def chain_intervals(entry: Entry) -> list[tuple[int, int, tuple[int, ...]]]:
    """Walk an entry's ``next`` chain and collect its intervals.

    Returns ``(begin, end, nearlyopt)`` triples of 0-based child indices,
    in right-to-left construction order. Base entries contribute nothing.
    """
    out: list[tuple[int, int, tuple[int, ...]]] = []
    cur: Optional[Entry] = entry
    while cur is not None:
        if cur[BEGIN] is not None:
            out.append((cur[BEGIN], cur[END], cur[NEARLYOPT]))
        cur = cur[NEXT]
    return out


def leaf_entry(weight: int) -> Entry:
    """The trivial solution for a leaf subtree: empty chain, root weight
    equal to the node weight."""
    return (0, weight, None, None, (), None)
