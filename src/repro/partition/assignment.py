"""Deriving sibling intervals from per-node partition assignments.

The top-down heuristics (DFS, BFS) naturally produce a *partition id per
node* rather than intervals. This module converts such an assignment into
the interval representation shared by the rest of the library.

The conversion is exact when the assignment obeys the sibling-partition
shape both heuristics guarantee by construction: within one partition,
the nodes whose parent lies in a different partition ("cut" nodes) form
one run of consecutive siblings, and every other member hangs below a cut
node. Each run of consecutive cut siblings with the same partition id
becomes one interval.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InvalidPartitioningError
from repro.partition.interval import SiblingInterval
from repro.tree.node import Tree


def intervals_from_assignment(
    tree: Tree, part_of: Sequence[int]
) -> set[SiblingInterval]:
    """Convert a node→partition mapping into sibling intervals.

    A node is *cut* iff it is the root or its parent has a different
    partition id. Consecutive cut siblings sharing a partition id are
    grouped into one interval.
    """
    if len(part_of) != len(tree):
        raise InvalidPartitioningError("assignment length does not match tree size")
    root = tree.root
    intervals: set[SiblingInterval] = {
        SiblingInterval(root.node_id, root.node_id)
    }
    for parent in tree:
        children = parent.children
        parent_pid = part_of[parent.node_id]
        i = 0
        while i < len(children):
            pid = part_of[children[i].node_id]
            if pid == parent_pid:
                i += 1
                continue
            j = i
            while j + 1 < len(children) and part_of[children[j + 1].node_id] == pid:
                j += 1
            intervals.add(
                SiblingInterval(children[i].node_id, children[j].node_id)
            )
            i = j + 1
    return intervals
