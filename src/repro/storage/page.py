"""Slotted disk pages.

A page holds several record blobs, addressed through a slot directory.
The free-space accounting reproduces the fragmentation effects the paper
mentions for Table 3: a record only fits if its bytes *plus* a slot
directory entry fit into the remaining payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.constants import StorageConfig


@dataclass
class Page:
    """One fixed-size page with a slot directory of record blobs."""

    page_id: int
    config: StorageConfig
    slots: dict[int, bytes] = field(default_factory=dict)  # record_id -> blob

    @property
    def used_bytes(self) -> int:
        payload = sum(len(blob) for blob in self.slots.values())
        return self.config.page_header + payload + self.config.page_slot_entry * len(self.slots)

    @property
    def free_bytes(self) -> int:
        return self.config.page_size - self.used_bytes

    def fits(self, blob: bytes) -> bool:
        return len(blob) + self.config.page_slot_entry <= self.free_bytes

    def put(self, record_id: int, blob: bytes) -> None:
        if record_id in self.slots:
            raise StorageError(f"record {record_id} already on page {self.page_id}")
        if not self.fits(blob):
            raise StorageError(
                f"record {record_id} ({len(blob)} B) does not fit page {self.page_id} "
                f"({self.free_bytes} B free)"
            )
        self.slots[record_id] = blob

    def get(self, record_id: int) -> bytes:
        try:
            return self.slots[record_id]
        except KeyError:
            raise StorageError(
                f"record {record_id} not on page {self.page_id}"
            ) from None

    def remove(self, record_id: int) -> bytes:
        """Free a record's slot (used by incremental updates)."""
        try:
            return self.slots.pop(record_id)
        except KeyError:
            raise StorageError(
                f"record {record_id} not on page {self.page_id}"
            ) from None
