"""Slotted disk pages with a checksummed, versioned header.

A page holds several record blobs, addressed through a slot directory.
The free-space accounting reproduces the fragmentation effects the paper
mentions for Table 3: a record only fits if its bytes *plus* a slot
directory entry fit into the remaining payload.

**Corruption detection** (``docs/ROBUSTNESS.md``): the page header
carries a format-version byte and a CRC32 over the slot directory and
every record blob. Writes go through :meth:`Page.put` / :meth:`Page.remove`,
which re-seal the checksum; anything that mutates the stored bytes
*without* re-sealing — a torn write, bit rot, a fault injected by
:mod:`repro.faults` — is caught by :meth:`Page.verify`, which every read
path (buffer-pool miss, record fetch, record rewrite) runs before
trusting the bytes. Verification failures raise
:class:`~repro.errors.CorruptPageError` carrying the page id and the
expected/actual checksum, so a damaged page never decodes into a garbage
tree.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import CorruptPageError, StorageError
from repro.storage.constants import StorageConfig

#: magic marker of the serialized header ("XP" little-endian)
PAGE_MAGIC = 0x5850
#: current on-disk page format; bumped on incompatible layout changes
PAGE_FORMAT_VERSION = 1

_HEADER_FMT = struct.Struct("<HBBHI")  # magic, version, flags, slots, crc32
_SLOT_KEY = struct.Struct("<I")


@dataclass
class Page:
    """One fixed-size page with a slot directory of record blobs."""

    page_id: int
    config: StorageConfig
    slots: dict[int, bytes] = field(default_factory=dict)  # record_id -> blob
    #: format-version byte of the page header
    version: int = PAGE_FORMAT_VERSION
    #: sealed CRC32 over the slot directory + blobs (see :meth:`seal`)
    checksum: int = 0

    @property
    def used_bytes(self) -> int:
        payload = sum(len(blob) for blob in self.slots.values())
        return self.config.page_header + payload + self.config.page_slot_entry * len(self.slots)

    @property
    def free_bytes(self) -> int:
        return self.config.page_size - self.used_bytes

    def fits(self, blob: bytes) -> bool:
        return len(blob) + self.config.page_slot_entry <= self.free_bytes

    def put(self, record_id: int, blob: bytes) -> None:
        if record_id in self.slots:
            raise StorageError(f"record {record_id} already on page {self.page_id}")
        if not self.fits(blob):
            raise StorageError(
                f"record {record_id} ({len(blob)} B) does not fit page {self.page_id} "
                f"({self.free_bytes} B free)"
            )
        self.slots[record_id] = blob
        self.seal()

    def get(self, record_id: int) -> bytes:
        try:
            return self.slots[record_id]
        except KeyError:
            raise StorageError(
                f"record {record_id} not on page {self.page_id}"
            ) from None

    def remove(self, record_id: int) -> bytes:
        """Free a record's slot (used by incremental updates)."""
        try:
            blob = self.slots.pop(record_id)
        except KeyError:
            raise StorageError(
                f"record {record_id} not on page {self.page_id}"
            ) from None
        self.seal()
        return blob

    # -- integrity --------------------------------------------------------

    def payload_checksum(self) -> int:
        """CRC32 over the slot directory (record ids, sorted) and blobs."""
        crc = 0
        for record_id in sorted(self.slots):
            crc = zlib.crc32(_SLOT_KEY.pack(record_id), crc)
            crc = zlib.crc32(self.slots[record_id], crc)
        return crc

    def seal(self) -> None:
        """Recompute and store the header checksum after a sanctioned
        write. Every mutation API calls this; out-of-band mutation of
        ``slots`` is exactly what :meth:`verify` detects."""
        self.checksum = self.payload_checksum()

    def verify(self) -> None:
        """Check format version and checksum; raise on any mismatch."""
        if self.version != PAGE_FORMAT_VERSION:
            raise CorruptPageError(
                f"page {self.page_id}: unsupported format version {self.version} "
                f"(expected {PAGE_FORMAT_VERSION})",
                page_id=self.page_id,
            )
        actual = self.payload_checksum()
        if actual != self.checksum:
            raise CorruptPageError(
                f"page {self.page_id}: checksum mismatch "
                f"(expected {self.checksum:#010x}, got {actual:#010x})",
                page_id=self.page_id,
                expected=self.checksum,
                actual=actual,
            )

    def header_bytes(self) -> bytes:
        """The serialized page header, zero-padded to the configured
        header size (what would land at offset 0 of a real page)."""
        packed = _HEADER_FMT.pack(
            PAGE_MAGIC, self.version, 0, len(self.slots), self.checksum
        )
        return packed.ljust(self.config.page_header, b"\x00")
