"""Node-at-a-time updates: incremental maintenance of a partitioned store.

The paper (Sec. 1) contrasts the bulkload algorithms it studies with
Natix' *node-at-a-time* algorithm [Kanne & Moerkotte, ICDE 2000] that
"maintains the clustered XML storage format on incremental updates".
This module implements that role for our store:

* :meth:`StoreUpdater.insert_node` places a new node with the same
  preference order Natix uses — parent's record first, then an adjacent
  sibling's record (which extends that sibling's interval), then a
  **record split** that evicts a run of siblings from the full record,
  and as a last resort a fresh singleton record;
* :meth:`StoreUpdater.update_content` re-weighs a text/attribute node in
  place, splitting its record when the growth overflows it.

Every operation maintains the invariants the rest of the library checks:
the induced partitioning stays a valid, feasible tree sibling
partitioning (``current_partitioning`` re-derives it and tests validate
it), record weights stay ≤ K, and dirty records are re-encoded onto
pages by :meth:`flush`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import telemetry
from repro.errors import StorageError
from repro.faults import plan as faults
from repro.partition.assignment import intervals_from_assignment
from repro.partition.interval import Partitioning
from repro.storage.store import DocumentStore
from repro.tree.node import NodeKind, TreeNode
from repro.xmlio.weights import SlotWeightModel


@dataclass
class UpdateStats:
    """Counters over the lifetime of one updater."""

    inserts: int = 0
    content_updates: int = 0
    placed_with_parent: int = 0
    placed_with_sibling: int = 0
    record_splits: int = 0
    new_records: int = 0


class StoreUpdater:
    """Applies node-at-a-time updates to a :class:`DocumentStore`."""

    def __init__(self, store: DocumentStore, weight_model: Optional[SlotWeightModel] = None):
        self.store = store
        self.limit = store.config.record_limit
        self.wm = weight_model or SlotWeightModel()
        self.stats = UpdateStats()
        self._dirty: set[int] = set()

    # -- public operations -------------------------------------------------

    def insert_node(
        self,
        parent_id: int,
        label: str,
        kind: NodeKind = NodeKind.ELEMENT,
        content: Optional[str] = None,
        position: Optional[int] = None,
        weight: Optional[int] = None,
    ) -> int:
        """Insert a new leaf under ``parent_id``; returns its node id."""
        store = self.store
        parent = store.tree.node(parent_id)
        if position is None:
            position = len(parent.children)
        if weight is None:
            weight = self.wm.weight(kind, content)
        if weight > self.limit:
            raise StorageError(f"node weight {weight} exceeds record capacity {self.limit}")

        node = store.tree.insert_child(parent, position, label, weight, kind, content)
        store.record_of.append(-1)
        store.invalidate_order()
        record = self._choose_record(node, weight)
        store.record_of[node.node_id] = record
        store.record_weights[record] += weight
        self._dirty.add(record)
        self.stats.inserts += 1
        return node.node_id

    def update_content(self, node_id: int, content: str) -> None:
        """Replace a text/attribute node's content, re-weighing it."""
        store = self.store
        node = store.tree.node(node_id)
        if node.kind not in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
            raise StorageError("only text and attribute nodes carry content")
        new_weight = self.wm.weight(node.kind, content)
        if new_weight > self.limit:
            raise StorageError(f"content weight {new_weight} exceeds record capacity")
        record = store.record_of[node_id]
        delta = new_weight - node.weight
        if delta > 0 and store.record_weights[record] + delta > self.limit:
            self._make_room(record, delta, protect=node_id)
            if store.record_weights[record] + delta > self.limit:
                raise StorageError(
                    f"record {record} cannot absorb content growth of {delta}"
                )
        node.content = content
        node.weight = new_weight
        store.tree._subtree_weights = None
        store.record_weights[record] += delta
        self._dirty.add(record)
        self.stats.content_updates += 1

    def current_partitioning(self) -> Partitioning:
        """Re-derive the sibling partitioning induced by the assignment."""
        return Partitioning(
            intervals_from_assignment(self.store.tree, self.store.record_of)
        )

    def flush(self) -> None:
        """Re-encode all dirty records onto their pages.

        With a write-ahead log attached (``store.attach_wal``), the
        flush is one crash-recoverable transaction: every dirty blob is
        logged (BEGIN + after-images + group-commit fsync at COMMIT)
        *before* any page is touched, each page apply passes the
        ``updates.flush`` fault point, and a checkpoint truncates the
        log once the pages hold everything. A crash anywhere inside
        leaves either the pre-flush or the post-flush page bytes for
        :mod:`repro.recovery` — never a torn middle.
        """
        if not self._dirty:
            return
        store = self.store
        wal = store.wal
        dirty = sorted(self._dirty)
        with telemetry.span("storage.updates.flush"):
            blobs = [
                (record_id, store.codec.encode(store.rebuild_record(record_id)))
                for record_id in dirty
            ]
            if wal is not None:
                txn_id = wal.begin(
                    dirty, labels=store.labels, record_limit=self.limit
                )
                for record_id, blob in blobs:
                    wal.log_image(txn_id, record_id, blob)
                wal.commit(txn_id)
            for record_id, blob in blobs:
                if faults.armed():
                    faults.check("updates.flush", record_id=record_id)
                if record_id in store.manager.page_of_record:
                    store.manager.replace(record_id, blob)
                else:
                    store.manager.store(record_id, blob)
            if wal is not None:
                wal.checkpoint(store.labels, self.limit)
        self._dirty.clear()

    # -- placement ----------------------------------------------------------

    def _choose_record(self, node: TreeNode, weight: int) -> int:
        store = self.store
        parent_record = store.record_of[node.parent.node_id]  # type: ignore[union-attr]
        if store.record_weights[parent_record] + weight <= self.limit:
            self.stats.placed_with_parent += 1
            return parent_record
        # Adjacent siblings in other records are interval members; joining
        # them extends their interval.
        for sibling in (node.prev_sibling(), node.next_sibling()):
            if sibling is None:
                continue
            sibling_record = store.record_of[sibling.node_id]
            if sibling_record == parent_record:
                continue
            if store.record_weights[sibling_record] + weight <= self.limit:
                self.stats.placed_with_sibling += 1
                return sibling_record
        # Split the parent's record to make room near the parent.
        self._make_room(parent_record, weight, protect=node.parent.node_id)
        if store.record_weights[parent_record] + weight <= self.limit:
            self.stats.placed_with_parent += 1
            return parent_record
        # Last resort: a fresh singleton record.
        self.stats.new_records += 1
        return self._new_record()

    def _new_record(self) -> int:
        store = self.store
        record_id = store.record_count
        store.record_count += 1
        store.record_weights.append(0)
        self._dirty.add(record_id)
        return record_id

    def _make_room(self, record_id: int, needed: int, protect: int) -> int:
        """Evict a run of siblings from ``record_id`` into a new record.

        Finds the node inside the record whose in-record child run is
        heaviest, then moves children (rightmost first, with their
        in-record descendants) into a fresh record until ``needed`` space
        is freed or nothing movable remains. The moved run forms a new
        sibling interval, so the partitioning stays valid. Returns the
        freed weight.
        """
        store = self.store
        members = [
            node
            for node in store.tree
            if store.record_of[node.node_id] == record_id
        ]
        component = {n.node_id for n in members}
        # The protected node and its in-record ancestors must not move.
        untouchable: set[int] = set()
        cursor: Optional[TreeNode] = (
            store.tree.node(protect) if protect in component else None
        )
        while cursor is not None and cursor.node_id in component:
            untouchable.add(cursor.node_id)
            cursor = cursor.parent
        # Partition weight of each member's in-record subtree (members are
        # creation-ordered, so children of a member appear after it —
        # iterate reversed for child-first accumulation).
        weights_in_record: dict[int, int] = {}
        for node in reversed(members):
            weights_in_record[node.node_id] = node.weight + sum(
                weights_in_record.get(c.node_id, 0)
                for c in node.children
                if c.node_id in component
            )
        best_parent: Optional[TreeNode] = None
        best_weight = 0
        for node in members:
            movable = sum(
                weights_in_record[c.node_id]
                for c in node.children
                if c.node_id in component and c.node_id not in untouchable
            )
            if movable > best_weight:
                best_weight = movable
                best_parent = node
        if best_parent is None or best_weight == 0:
            return 0
        # Move the rightmost movable run of in-record children.
        run: list[TreeNode] = []
        freed = 0
        for child in reversed(best_parent.children):
            movable = (
                store.record_of[child.node_id] == record_id
                and child.node_id not in untouchable
            )
            if not movable:
                if run:
                    break
                continue
            if freed + weights_in_record[child.node_id] > self.limit:
                break  # the evicted record must itself respect K
            run.append(child)
            freed += weights_in_record[child.node_id]
            if freed >= needed:
                break
        if not run:
            return 0
        target = self._new_record()
        for root in run:
            self._move_subtree(root, record_id, target)
        self._dirty.add(record_id)
        self.stats.record_splits += 1
        return freed

    def _move_subtree(self, root: TreeNode, source: int, target: int) -> None:
        """Reassign ``root`` and its in-``source`` descendants to
        ``target``, maintaining record weights."""
        store = self.store
        stack = [root]
        while stack:
            node = stack.pop()
            if store.record_of[node.node_id] != source:
                continue  # a nested interval already cut this subtree
            store.record_of[node.node_id] = target
            store.record_weights[source] -= node.weight
            store.record_weights[target] += node.weight
            stack.extend(node.children)
        # the partition windows in any structural index describe the old
        # assignment now (content-only updates that never split keep it)
        store.invalidate_index()
