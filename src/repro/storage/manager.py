"""Record manager: packs record blobs onto pages.

First-fit with a small free-space cache: each record goes to the first
existing page with room, else a fresh page is allocated. This reproduces
the paper's observation that *smaller* records (KM) pack slightly better
than EKM's large ones — big records leave unusable tails on pages, so
EKM occupies marginally more total disk space despite having far fewer
records (Table 3, first row).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.errors import StorageError
from repro.faults import plan as faults
from repro.storage.constants import StorageConfig
from repro.storage.page import Page


@dataclass
class SpaceReport:
    """Disk-space accounting for Table 3."""

    pages: int
    page_bytes: int
    record_bytes: int
    records: int

    @property
    def utilization(self) -> float:
        return self.record_bytes / self.page_bytes if self.page_bytes else 0.0

    @property
    def kib(self) -> float:
        return self.page_bytes / 1024.0


class RecordManager:
    """Allocates records to pages and remembers where everything lives."""

    def __init__(self, config: StorageConfig):
        self.config = config
        self.pages: dict[int, Page] = {}
        self.page_of_record: dict[int, int] = {}
        self._record_bytes = 0

    def store(self, record_id: int, blob: bytes) -> int:
        """Place a record blob; returns the page id it landed on.

        The ``page.write`` fault point fires after the page sealed its
        checksum over the intended bytes — an injected torn write or
        bit-flip damages the *stored* copy, exactly what read-time
        verification must catch.
        """
        page = self._find_page(blob)
        if page is None:
            page = Page(len(self.pages), self.config)
            self.pages[page.page_id] = page
            if telemetry.enabled():
                telemetry.count("storage.pages.allocated")
        page.put(record_id, blob)
        if faults.armed():
            action = faults.fire("page.write", page_id=page.page_id, record_id=record_id)
            if action is not None:
                action.apply_to_page(page)
        self.page_of_record[record_id] = page.page_id
        self._record_bytes += len(blob)
        if telemetry.enabled():
            telemetry.count("storage.records.written")
            telemetry.count("storage.record_bytes.written", len(blob))
        return page.page_id

    def _find_page(self, blob: bytes):
        policy = self.config.allocation_policy
        if policy == "first_fit":
            for page in self.pages.values():
                if page.fits(blob):
                    return page
            return None
        if policy == "best_fit":
            best = None
            for page in self.pages.values():
                if page.fits(blob) and (best is None or page.free_bytes < best.free_bytes):
                    best = page
            return best
        raise StorageError(f"unknown allocation policy {policy!r}")

    def replace(self, record_id: int, blob: bytes) -> int:
        """Rewrite a record after an update; may migrate it to another
        page when it no longer fits its old one. Returns the page id.

        The old page is verified before its slot is touched: rewriting
        on top of undetected corruption would launder the damage into a
        freshly sealed checksum."""
        old_page = self.pages[self.page_of_record[record_id]]
        old_page.verify()
        old_blob = old_page.remove(record_id)
        self._record_bytes -= len(old_blob)
        if old_page.fits(blob):
            old_page.put(record_id, blob)
            self.page_of_record[record_id] = old_page.page_id
            self._record_bytes += len(blob)
            if telemetry.enabled():
                telemetry.count("storage.records.rewritten")
                telemetry.count("storage.record_bytes.written", len(blob))
            return old_page.page_id
        del self.page_of_record[record_id]
        return self.store(record_id, blob)

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            pages=len(self.pages),
            page_bytes=len(self.pages) * self.config.page_size,
            record_bytes=self._record_bytes,
            records=len(self.page_of_record),
        )
