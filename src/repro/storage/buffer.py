"""Buffer pool: LRU page cache with hit/miss accounting.

Table 3 runs with "a buffer pool that is larger than the document, so
that there is no page fault during query evaluation"; the pool still
matters because it is where cross-record navigation pays its lookup, and
because a smaller pool (ablation A4-style experiments) lets the cost
model show the fault penalty.

Accounting lives in two places that always agree:

* the per-pool :class:`BufferStats` (cheap, always on, what the cost
  model and the Table-3 protocol read), and
* the shared telemetry registry (``storage.buffer.hits`` / ``.misses``
  / ``.evictions``), mirrored per access while telemetry is enabled so
  one measurement session aggregates across every pool it touched.

**Reset semantics** (tested in ``tests/storage/test_pages_buffer.py``):
counters are cumulative for the lifetime of the pool. ``clear()``
empties the cache but leaves the counters untouched (dropping pages on
purpose is not an eviction); ``warm_up()`` preloads pages *without*
charging hits/misses/evictions — preloading is protocol, not workload —
and records the pages it touched in ``stats.warmups``. The only way the
counters return to zero is an explicit ``stats.reset()`` (which
:meth:`~repro.storage.store.DocumentStore.warm_up` performs as part of
the paper's measure-after-preload protocol).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import telemetry
from repro.errors import CorruptPageError, StorageError
from repro.faults import plan as faults
from repro.storage.page import Page


@dataclass
class BufferStats:
    """Cumulative access counters of one :class:`BufferPool`.

    ``hits``/``misses``/``evictions`` count workload accesses only;
    ``warmups`` counts pages loaded by :meth:`BufferPool.warm_up`.
    Nothing resets these implicitly — see the module docstring.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    warmups: int = 0
    #: page reads that failed checksum verification (never cached)
    corrupt_reads: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.warmups = 0
        self.corrupt_reads = 0

    def as_dict(self) -> dict[str, float]:
        """JSON-safe view (used by ``benchmarks/harness.py`` baselines)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "warmups": self.warmups,
            "corrupt_reads": self.corrupt_reads,
            "hit_ratio": self.hit_ratio,
        }


#: shared-registry metric names the pool mirrors into
_HITS = "storage.buffer.hits"
_MISSES = "storage.buffer.misses"
_EVICTIONS = "storage.buffer.evictions"
_WARMUPS = "storage.buffer.warmups"
_CORRUPT_READS = "storage.buffer.corrupt_reads"


class BufferPool:
    """LRU cache over a page table ("disk").

    Thread-safe: one latch serializes every access to the LRU order and
    the counters, because ``fetch`` is a read-modify-write even on a hit
    (``move_to_end`` plus ``stats.hits += 1``). The latch is the
    concurrency story the planned document-store service builds on —
    many reader threads sharing one pool — and its contract is
    machine-checked by repro-lint rule CC001 via the ``guarded-by``
    annotations below.
    """

    def __init__(self, pages: dict[int, Page], capacity: int):
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self._disk = pages
        self.capacity = capacity
        #: reentrant so a fault-injection callback that re-enters the
        #: pool (e.g. probing `is_cached` mid-evict) cannot self-deadlock
        self._latch = threading.RLock()
        self._cached: OrderedDict[int, Page] = OrderedDict()  # repro: guarded-by(_latch)
        self.stats = BufferStats()  # repro: guarded-by(_latch)

    def fetch(self, page_id: int) -> Page:
        """Return the page, counting a hit or a (possibly evicting) miss.

        A miss reads the page from "disk" and **verifies its checksum
        before caching it** — a corrupted page raises
        :class:`~repro.errors.CorruptPageError`, bumps
        ``stats.corrupt_reads`` (mirrored into the shared registry) and
        never enters the cache, so one bad page cannot poison the pool:
        every other page stays fetchable, and a later read of the same
        page re-verifies instead of trusting stale state.
        """
        with self._latch:
            page = self._cached.get(page_id)
            if page is not None:
                self.stats.hits += 1
                if telemetry.enabled():
                    telemetry.count(_HITS)
                self._cached.move_to_end(page_id)
                return page
            self.stats.misses += 1
            if telemetry.enabled():
                telemetry.count(_MISSES)
            try:
                page = self._disk[page_id]
            except KeyError:
                raise StorageError(f"unknown page {page_id}") from None
            if faults.armed():
                action = faults.fire("page.read", page_id=page_id)
                if action is not None:
                    action.apply_to_page(page)
            try:
                page.verify()
            except CorruptPageError:
                self.stats.corrupt_reads += 1
                if telemetry.enabled():
                    telemetry.count(_CORRUPT_READS)
                raise
            self._cached[page_id] = page
            if len(self._cached) > self.capacity:
                evicted_id, _ = self._cached.popitem(last=False)
                self.stats.evictions += 1
                if telemetry.enabled():
                    telemetry.count(_EVICTIONS)
                faults.check("buffer.evict", page_id=evicted_id)
            return page

    def is_cached(self, page_id: int) -> bool:
        with self._latch:
            return page_id in self._cached

    def warm_up(self) -> None:
        """Touch every page once (the paper preloads before measuring).

        Preloading charges no hits/misses/evictions — it is not
        workload; the page count goes to ``stats.warmups`` instead.
        """
        with self._latch:
            for page_id in self._disk:
                if page_id not in self._cached:
                    self._cached[page_id] = self._disk[page_id]
                    if len(self._cached) > self.capacity:
                        self._cached.popitem(last=False)
                else:
                    self._cached.move_to_end(page_id)
                self.stats.warmups += 1
            if telemetry.enabled():
                telemetry.count(_WARMUPS, len(self._disk))

    def clear(self) -> None:
        """Drop all cached pages; the counters survive (see module doc)."""
        with self._latch:
            self._cached.clear()
