"""Buffer pool: LRU page cache with hit/miss accounting.

Table 3 runs with "a buffer pool that is larger than the document, so
that there is no page fault during query evaluation"; the pool still
matters because it is where cross-record navigation pays its lookup, and
because a smaller pool (ablation A4-style experiments) lets the cost
model show the fault penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.page import Page


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """LRU cache over a page table ("disk")."""

    def __init__(self, pages: dict[int, Page], capacity: int):
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self._disk = pages
        self.capacity = capacity
        self._cached: OrderedDict[int, Page] = OrderedDict()
        self.stats = BufferStats()

    def fetch(self, page_id: int) -> Page:
        """Return the page, counting a hit or a (possibly evicting) miss."""
        page = self._cached.get(page_id)
        if page is not None:
            self.stats.hits += 1
            self._cached.move_to_end(page_id)
            return page
        self.stats.misses += 1
        try:
            page = self._disk[page_id]
        except KeyError:
            raise StorageError(f"unknown page {page_id}") from None
        self._cached[page_id] = page
        if len(self._cached) > self.capacity:
            self._cached.popitem(last=False)
            self.stats.evictions += 1
        return page

    def is_cached(self, page_id: int) -> bool:
        return page_id in self._cached

    def warm_up(self) -> None:
        """Touch every page once (the paper preloads before measuring)."""
        for page_id in self._disk:
            self.fetch(page_id)

    def clear(self) -> None:
        self._cached.clear()
