"""Natix-style storage engine (paper Sec. 1, 6.4).

The engine materializes a partitioned document the way Natix does:

* each partition becomes a **physical record** holding the serialized
  tree fragment (:mod:`repro.storage.record`),
* a **record manager** packs records onto slotted **pages**
  (:mod:`repro.storage.page`, :mod:`repro.storage.manager`) — several
  small records share a page, which is why KM's many small partitions can
  occupy slightly *less* total disk space than EKM's (Table 3),
* a **buffer pool** (:mod:`repro.storage.buffer`) caches pages with LRU
  replacement and counts hits/misses,
* :class:`~repro.storage.store.DocumentStore` exposes navigational
  access through :class:`~repro.storage.store.StoredNode`; every axis
  step is classified intra-record (cheap pointer chase) or cross-record
  (record lookup through the buffer), which is the cost difference the
  whole paper is about.
"""

from repro.storage.constants import StorageConfig, DEFAULT_CONFIG
from repro.storage.record import Record, RecordCodec
from repro.storage.page import Page
from repro.storage.buffer import BufferPool
from repro.storage.manager import RecordManager
from repro.storage.store import DocumentStore, StoredNode, NavigationStats
from repro.storage.updates import StoreUpdater, UpdateStats
from repro.storage.reconstruct import reconstruct_tree, verify_store_integrity
from repro.storage.navigator import RecordNavigator, RecordNode

__all__ = [
    "StoreUpdater",
    "UpdateStats",
    "reconstruct_tree",
    "verify_store_integrity",
    "RecordNavigator",
    "RecordNode",
    "StorageConfig",
    "DEFAULT_CONFIG",
    "Record",
    "RecordCodec",
    "Page",
    "BufferPool",
    "RecordManager",
    "DocumentStore",
    "StoredNode",
    "NavigationStats",
]
