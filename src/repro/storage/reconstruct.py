"""Document reconstruction from record bytes — the recovery path.

The record format (see :mod:`repro.storage.record`) is self-describing:
intra-record parents are slot references, fragment roots carry their
parent's global node id (Natix' proxy role), and every node stores its
sibling position. This module rebuilds the complete document tree from
nothing but the decoded records — the strongest possible integrity check
of the storage format, and what a recovery tool would do after losing
all in-memory state.

Node ids are preserved, so the reconstructed tree can be compared
node-by-node with the original (tests do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.storage.record import DOCUMENT_ROOT, NO_PARENT, Record
from repro.tree.node import NodeKind, Tree, TreeNode


@dataclass
class _Shadow:
    """Flat node data gathered from records before linking."""

    node_id: int
    kind: NodeKind
    label: str
    content: str
    parent_id: int  # DOCUMENT_ROOT for the document root
    position: int
    weight: int = 1


def reconstruct_tree(
    records: Iterable[Record],
    labels: Sequence[str],
    weights: Sequence[int] | None = None,
) -> Tree:
    """Rebuild the document tree from decoded records.

    Parameters
    ----------
    records:
        All records of the document, in any order.
    labels:
        The store's label dictionary.
    weights:
        Optional per-node weights to restore (by node id); defaults to
        re-deriving weights from the slot model, which matches how the
        document was weighed in the first place.
    """
    from repro.xmlio.weights import SlotWeightModel

    wm = SlotWeightModel()
    shadows: dict[int, _Shadow] = {}
    for record in records:
        for slot, node in enumerate(record.nodes):
            if node.parent_slot == NO_PARENT:
                parent_id = node.parent_node_id
            else:
                if node.parent_slot >= len(record.nodes):
                    raise StorageError(
                        f"record {record.record_id}: slot {slot} has a "
                        f"dangling parent slot {node.parent_slot}"
                    )
                parent_id = record.nodes[node.parent_slot].node_id
            if node.node_id in shadows:
                raise StorageError(f"node {node.node_id} appears in two records")
            if node.label_id >= len(labels):
                raise StorageError(
                    f"node {node.node_id} references unknown label {node.label_id}"
                )
            content = node.content.decode("utf-8")
            shadow = _Shadow(
                node_id=node.node_id,
                kind=node.kind,
                label=labels[node.label_id],
                content=content,
                parent_id=parent_id,
                position=node.position,
            )
            if weights is not None:
                shadow.weight = weights[node.node_id]
            else:
                shadow.weight = wm.weight(node.kind, content)
            shadows[node.node_id] = shadow

    if not shadows:
        raise StorageError("no records to reconstruct from")

    roots = [s for s in shadows.values() if s.parent_id == DOCUMENT_ROOT]
    if len(roots) != 1:
        raise StorageError(f"expected exactly one document root, found {len(roots)}")
    root_shadow = roots[0]

    children: dict[int, list[_Shadow]] = {}
    for shadow in shadows.values():
        if shadow is root_shadow:
            continue
        if shadow.parent_id not in shadows:
            raise StorageError(
                f"node {shadow.node_id} references missing parent {shadow.parent_id}"
            )
        children.setdefault(shadow.parent_id, []).append(shadow)
    for kids in children.values():
        kids.sort(key=lambda s: s.position)
        for expected, shadow in enumerate(kids):
            if shadow.position != expected:
                raise StorageError(
                    f"child positions of node {shadow.parent_id} have gaps"
                )

    # Build the tree top-down. Node ids are preserved by construction
    # order only if they happen to be dense preorder ids — instead we
    # construct and then *relabel* to the original ids via the nodes list.
    tree = Tree(root_shadow.label, root_shadow.weight, root_shadow.kind, root_shadow.content or None)
    id_map: dict[int, TreeNode] = {root_shadow.node_id: tree.root}
    stack = [root_shadow]
    while stack:
        parent_shadow = stack.pop()
        parent_node = id_map[parent_shadow.node_id]
        for shadow in children.get(parent_shadow.node_id, ()):
            node = tree.add_child(
                parent_node,
                shadow.label,
                shadow.weight,
                shadow.kind,
                shadow.content or None,
            )
            id_map[shadow.node_id] = node
            stack.append(shadow)
    if len(tree) != len(shadows):
        raise StorageError("reconstruction dropped nodes")  # pragma: no cover
    return _remap_ids(tree, id_map)


def _remap_ids(tree: Tree, id_map: dict[int, TreeNode]) -> Tree:
    """Restore original node ids (construction assigned fresh ones)."""
    # The Tree invariant needs nodes[i].node_id == i; original ids are a
    # permutation of 0..n-1 (dense), so rebuild the nodes list.
    n = len(tree)
    replacement: list[TreeNode] = [None] * n  # type: ignore[list-item]
    for original_id, node in id_map.items():
        if not 0 <= original_id < n:
            raise StorageError("original node ids are not dense; cannot remap")
        node.node_id = original_id
        node.packed_id = original_id << 32
        replacement[original_id] = node
    if any(slot is None for slot in replacement):
        raise StorageError("original node ids are not a permutation")
    tree.nodes = replacement
    return tree


def verify_store_integrity(store) -> Tree:
    """Decode every record of a store, rebuild the document, and check it
    equals the store's in-memory tree. Returns the rebuilt tree."""
    records = [store.fetch_record(rid) for rid in range(store.record_count)]
    weights = [n.weight for n in store.tree]
    rebuilt = reconstruct_tree(records, store.labels, weights)
    original = store.tree
    if len(rebuilt) != len(original):
        raise StorageError("reconstructed tree has wrong size")
    for node in original:
        twin = rebuilt.node(node.node_id)
        if (
            twin.label != node.label
            or twin.kind != node.kind
            or twin.weight != node.weight
            or (twin.content or "") != (node.content or "")
            or (twin.parent.node_id if twin.parent else -1)
            != (node.parent.node_id if node.parent else -1)
            or twin.index != node.index
        ):
            raise StorageError(f"reconstruction mismatch at node {node.node_id}")
    return rebuilt
