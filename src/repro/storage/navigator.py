"""Record-level navigation: walking the document from record bytes.

:class:`~repro.storage.store.StoredNode` navigates the in-memory tree and
*accounts* intra-/cross-record steps — fast and sufficient for the
experiments. This module goes further: :class:`RecordNavigator` performs
navigation **purely from decoded records**, the way the real Natix engine
does. Structure comes from three sources only:

* intra-record parent slots (record-internal pointer chases),
* per-node sibling positions, and
* the *proxy index*: fragment roots announce their parent's global node
  id, so the children of any node are the union of its in-record
  children and the fragment roots (possibly in several other records)
  claiming it as parent — merged by position.

Tests drive full-document traversals through both navigators and assert
identical structure *and* identical cross-record step counts, which
validates the cost model the experiments rely on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import StorageError
from repro.storage.record import DOCUMENT_ROOT, NO_PARENT, Record
from repro.storage.store import DocumentStore, NavigationStats
from repro.tree.node import NodeKind


@dataclass
class _DecodedRecord:
    """One record plus the lookup structures navigation needs."""

    record: Record
    #: node_id -> slot index
    slot_of: dict[int, int] = field(default_factory=dict)
    #: parent node_id -> sorted list of (position, child node_id) within
    #: this record
    children_of: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    @classmethod
    def build(cls, record: Record) -> "_DecodedRecord":
        decoded = cls(record)
        for slot, node in enumerate(record.nodes):
            decoded.slot_of[node.node_id] = slot
        for node in record.nodes:
            if node.parent_slot == NO_PARENT:
                continue
            parent_id = record.nodes[node.parent_slot].node_id
            bisect.insort(
                decoded.children_of.setdefault(parent_id, []),
                (node.position, node.node_id),
            )
        return decoded


class RecordNavigator:
    """Navigates a :class:`DocumentStore`'s documents from records alone.

    Shares the store's buffer pool (so page-level accounting is real) but
    keeps its own :class:`NavigationStats`, letting tests compare both
    navigators' counters on identical walks.
    """

    def __init__(self, store: DocumentStore):
        self.store = store
        self.stats = NavigationStats()
        self._decoded: dict[int, _DecodedRecord] = {}
        # proxy index: parent node_id -> sorted (position, child node_id)
        # over all fragment roots of all records
        self._proxies: dict[int, list[tuple[int, int]]] = {}
        self._root_id: Optional[int] = None
        for record_id in range(store.record_count):
            record = store.fetch_record(record_id)
            for node in record.fragment_roots():
                if node.parent_node_id == DOCUMENT_ROOT:
                    if self._root_id is not None:
                        raise StorageError("multiple document roots in records")
                    self._root_id = node.node_id
                    continue
                bisect.insort(
                    self._proxies.setdefault(node.parent_node_id, []),
                    (node.position, node.node_id),
                )
        if self._root_id is None:
            raise StorageError("records contain no document root")

    # -- internals ---------------------------------------------------------

    def _record_of(self, node_id: int) -> int:
        return self.store.record_of[node_id]

    def _decoded_record(self, record_id: int) -> _DecodedRecord:
        decoded = self._decoded.get(record_id)
        if decoded is None:
            decoded = _DecodedRecord.build(self.store.fetch_record(record_id))
            self._decoded[record_id] = decoded
        return decoded

    def _entry(self, node_id: int):
        decoded = self._decoded_record(self._record_of(node_id))
        return decoded.record.nodes[decoded.slot_of[node_id]]

    def _charge(self, source_id: int, target_id: int) -> None:
        # heat accounting is one pre-bound buffered append (drained at
        # end of query + every store.heat_flush_at hops on the cross
        # branch) — a per-hop Python callback here cost ~50% on
        # navigation-bound queries (PERF002 guards this path)
        store = self.store
        heat_append = store.heat_append
        if self._record_of(source_id) == self._record_of(target_id):
            self.stats.intra_steps += 1
            if heat_append is not None:
                # packed int, not a tuple: untracked by gc and folded at
                # machine-word speed (see telemetry.heat.pack_hop)
                heat_append(source_id << 32 | target_id)
            return
        self.stats.cross_steps += 1
        page_id = store.manager.page_of_record[self._record_of(target_id)]
        fault = not store.buffer.is_cached(page_id)
        if fault:
            self.stats.page_faults += 1
        store.buffer.fetch(page_id)
        if heat_append is not None:
            heat_append(source_id << 32 | target_id)
            if fault:
                store.heat_fault_append(source_id << 32 | target_id)
            if len(store.heat_buffer) >= store.heat_flush_at:
                store.heat_drain()

    def _children_ids(self, node_id: int) -> list[int]:
        """All children (in-record + proxied), in sibling order."""
        decoded = self._decoded_record(self._record_of(node_id))
        local = decoded.children_of.get(node_id, [])
        proxied = self._proxies.get(node_id, [])
        merged = sorted(local + proxied)
        return [child_id for _pos, child_id in merged]

    # -- public API ----------------------------------------------------------

    def root(self) -> "RecordNode":
        self.stats.node_visits += 1
        return RecordNode(self, self._root_id)


class RecordNode:
    """Navigation handle mirroring :class:`StoredNode`'s interface, but
    backed exclusively by record data."""

    __slots__ = ("navigator", "node_id")

    def __init__(self, navigator: RecordNavigator, node_id: int):
        self.navigator = navigator
        self.node_id = node_id

    # payload accessors (record-resident, no navigation cost)

    @property
    def label(self) -> str:
        entry = self.navigator._entry(self.node_id)
        return self.navigator.store.labels[entry.label_id]

    @property
    def kind(self) -> NodeKind:
        return self.navigator._entry(self.node_id).kind

    @property
    def content(self) -> Optional[str]:
        raw = self.navigator._entry(self.node_id).content
        return raw.decode("utf-8") if raw else None

    @property
    def record_id(self) -> int:
        return self.navigator._record_of(self.node_id)

    @property
    def store(self) -> DocumentStore:
        """The owning store (document-order ranks, label dictionary)."""
        return self.navigator.store

    @property
    def position(self) -> int:
        return self.navigator._entry(self.node_id).position

    def is_element(self) -> bool:
        return self.kind is NodeKind.ELEMENT

    # navigation (charged)

    def _hop(self, target_id: Optional[int]) -> Optional["RecordNode"]:
        if target_id is None:
            return None
        self.navigator._charge(self.node_id, target_id)
        self.navigator.stats.node_visits += 1
        return RecordNode(self.navigator, target_id)

    def parent(self) -> Optional["RecordNode"]:
        entry = self.navigator._entry(self.node_id)
        if entry.parent_slot != NO_PARENT:
            decoded = self.navigator._decoded_record(self.record_id)
            return self._hop(decoded.record.nodes[entry.parent_slot].node_id)
        if entry.parent_node_id == DOCUMENT_ROOT:
            return None
        return self._hop(entry.parent_node_id)

    def first_child(self) -> Optional["RecordNode"]:
        children = self.navigator._children_ids(self.node_id)
        return self._hop(children[0] if children else None)

    def _sibling(self, offset: int) -> Optional["RecordNode"]:
        entry = self.navigator._entry(self.node_id)
        if entry.parent_node_id == DOCUMENT_ROOT and entry.parent_slot == NO_PARENT:
            return None
        parent = self.parent_id()
        siblings = self.navigator._children_ids(parent)
        index = siblings.index(self.node_id) + offset
        if 0 <= index < len(siblings):
            return self._hop(siblings[index])
        return None

    def parent_id(self) -> int:
        entry = self.navigator._entry(self.node_id)
        if entry.parent_slot != NO_PARENT:
            decoded = self.navigator._decoded_record(self.record_id)
            return decoded.record.nodes[entry.parent_slot].node_id
        return entry.parent_node_id

    def next_sibling(self) -> Optional["RecordNode"]:
        return self._sibling(+1)

    def prev_sibling(self) -> Optional["RecordNode"]:
        return self._sibling(-1)

    def children(self) -> Iterator["RecordNode"]:
        child = self.first_child()
        while child is not None:
            yield child
            child = child.next_sibling()

    def descendants_or_self(self) -> Iterator["RecordNode"]:
        yield self
        stack: list[RecordNode] = []
        first = self.first_child()
        if first is not None:
            stack.append(first)
        while stack:
            node = stack.pop()
            yield node
            sibling = node.next_sibling()
            if sibling is not None:
                stack.append(sibling)
            child = node.first_child()
            if child is not None:
                stack.append(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordNode(id={self.node_id}, record={self.record_id})"
