"""Storage engine configuration.

The paper's setup: 8-byte slots, ``K = 256`` slots → 2 KB records, stored
on disk pages that hold several records each. The navigation cost model
assigns one unit to an intra-record step; a cross-record step pays the
record lookup (buffer hit) and a page fault pays much more — though the
paper's query experiment (and ours) runs with a buffer larger than the
document, so faults only occur during warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageConfig:
    """Knobs of the simulated Natix storage engine."""

    page_size: int = 8192
    slot_size: int = 8
    #: record capacity in slots; the paper's K
    record_limit: int = 256
    #: pages the buffer pool can hold (default comfortably > documents)
    buffer_pages: int = 4096
    #: cost units per navigation step inside one record
    intra_cost: float = 1.0
    #: extra cost units for following an inter-record proxy (buffer hit)
    cross_cost: float = 20.0
    #: extra cost units when the target page is not buffered
    fault_cost: float = 400.0

    #: fixed per-page header bytes (checksum, LSN, slot count)
    page_header: int = 24
    #: slot directory entry bytes per record on a page
    page_slot_entry: int = 4
    #: fixed per-record header bytes (id, fragment root count, …)
    record_header: int = 16
    #: page allocation policy: "first_fit" (Natix-style, fast) or
    #: "best_fit" (min leftover space; packs marginally tighter)
    allocation_policy: str = "first_fit"

    @property
    def record_capacity_bytes(self) -> int:
        return self.record_limit * self.slot_size

    @property
    def page_payload(self) -> int:
        return self.page_size - self.page_header


DEFAULT_CONFIG = StorageConfig()
