"""The document store: partitioned tree + navigation cost accounting.

:meth:`DocumentStore.build` materializes a partitioned document: every
partition is serialized into a :class:`~repro.storage.record.Record`,
records are packed onto pages, and a shared label dictionary maps tag
names to ids. Queries then navigate :class:`StoredNode` handles; each
axis step is charged

* ``intra_cost`` when source and target live in the same record,
* ``cross_cost`` (+ a buffer fetch, + ``fault_cost`` on a page miss)
  when the step follows an inter-record proxy.

This is the quantity Table 3 measures: the same document stored under
KM's single-node partitions forces a cross-record hop for nearly every
edge, while EKM's sibling partitions keep whole child sequences local.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import telemetry
from repro.errors import StorageError
from repro.partition.assignment import intervals_from_assignment
from repro.partition.evaluate import assignment_from_partitioning
from repro.partition.interval import Partitioning
from repro.storage.buffer import BufferPool
from repro.storage.constants import DEFAULT_CONFIG, StorageConfig
from repro.storage.manager import RecordManager, SpaceReport
from repro.storage.record import DOCUMENT_ROOT, NO_PARENT, Record, RecordCodec, RecordNode
from repro.tree.node import NodeKind, Tree, TreeNode


@dataclass
class NavigationStats:
    """Counters and the derived simulated cost of a navigation workload."""

    intra_steps: int = 0
    cross_steps: int = 0
    page_faults: int = 0
    node_visits: int = 0
    #: axis steps answered by the structural index (window evaluation);
    #: these replace hop charges with per-partition page touches
    window_steps: int = 0
    #: partitions a window step skipped because their pre/post window
    #: did not overlap the query window (the partition map's savings)
    partitions_pruned: int = 0

    def cost(self, config: StorageConfig) -> float:
        return (
            self.intra_steps * config.intra_cost
            + self.cross_steps * config.cross_cost
            + self.page_faults * config.fault_cost
        )

    def reset(self) -> None:
        self.intra_steps = 0
        self.cross_steps = 0
        self.page_faults = 0
        self.node_visits = 0
        self.window_steps = 0
        self.partitions_pruned = 0


class DocumentStore:
    """A partitioned, serialized document with navigational access."""

    def __init__(
        self,
        tree: Tree,
        partitioning: Partitioning,
        config: StorageConfig = DEFAULT_CONFIG,
    ):
        self.tree = tree
        self.partitioning = partitioning
        self.config = config
        self.stats = NavigationStats()
        #: optional list collecting raw (source_id, target_id) hops —
        #: used by workload profiling; a bare ``list.append`` on the hot
        #: path instead of a per-hop Python callback (PERF002)
        self.edge_buffer = None
        #: pre-bound ``list.append`` of the live heat buffer (see
        #: :mod:`repro.telemetry.heat`) collecting raw (source_id,
        #: target_id) hops — the *only* heat work on the intra-record
        #: hot path; appends are atomic under the GIL
        self.heat_append = None
        #: pre-bound append of the page-fault hop buffer (cross-record
        #: path only — faults can only happen there)
        self.heat_fault_append = None
        #: the raw hop list behind :attr:`heat_append` (drain/detach
        #: bookkeeping; the hot path never touches it by name)
        self.heat_buffer = None
        #: locked drain callable installed alongside :attr:`heat_append`;
        #: the engine calls it at end of query, the cross-record path
        #: every :attr:`heat_flush_at` buffered hops
        self.heat_drain = None
        self.heat_flush_at = 8192
        #: optional :class:`repro.index.StructuralIndex`; when present
        #: and valid the query engine answers axis steps by window
        #: lookups instead of navigation (see :meth:`build_index`)
        self.structural_index = None
        #: optional write-ahead log (see :meth:`attach_wal`); updates
        #: flushed through :class:`~repro.storage.updates.StoreUpdater`
        #: become crash-recoverable once one is attached
        self.wal = None

        # label dictionary
        self.labels: list[str] = []
        self._label_ids: dict[str, int] = {}

        # node -> record assignment (dense partition indices)
        self.record_of = assignment_from_partitioning(tree, partitioning)

        # build + serialize records, place them on pages
        self.codec = RecordCodec(
            record_header=config.record_header,
            capacity_bytes=None,  # weight feasibility is checked upstream
        )
        self.manager = RecordManager(config)
        with telemetry.span("storage.build"):
            records = self._build_records()
            for record in records:
                self.manager.store(record.record_id, self.codec.encode(record))
        self.record_count = len(records)
        self.buffer = BufferPool(self.manager.pages, config.buffer_pages)

        # current partition weight per record (maintained by updates)
        self.record_weights = [0] * self.record_count
        for node in tree:
            self.record_weights[self.record_of[node.node_id]] += node.weight
        # document-order ranks, recomputed lazily after structural updates
        self._order_ranks: Optional[list[int]] = None

    # -- construction ----------------------------------------------------

    def _label_id(self, label: str) -> int:
        lid = self._label_ids.get(label)
        if lid is None:
            lid = len(self.labels)
            if lid > 0xFFFF:
                raise StorageError("label dictionary overflow")
            self.labels.append(label)
            self._label_ids[label] = lid
        return lid

    def _build_records(self) -> list[Record]:
        record_of = self.record_of
        count = max(record_of) + 1
        records = [Record(rid) for rid in range(count)]
        slot_of: dict[int, int] = {}
        for node in self.tree:  # document order; parents precede children
            rid = record_of[node.node_id]
            record = records[rid]
            parent = node.parent
            if parent is not None and record_of[parent.node_id] == rid:
                parent_slot = slot_of[parent.node_id]
            else:
                parent_slot = NO_PARENT
            slot_of[node.node_id] = len(record.nodes)
            record.nodes.append(
                RecordNode(
                    node_id=node.node_id,
                    kind=node.kind,
                    label_id=self._label_id(node.label),
                    parent_slot=parent_slot,
                    content=(node.content or "").encode("utf-8"),
                    parent_node_id=(
                        DOCUMENT_ROOT if parent is None else parent.node_id
                    ),
                    position=node.index,
                )
            )
        return records

    @classmethod
    def build(
        cls,
        tree: Tree,
        partitioning: Partitioning,
        config: StorageConfig = DEFAULT_CONFIG,
    ) -> "DocumentStore":
        return cls(tree, partitioning, config)

    @classmethod
    def adopt(
        cls,
        manager: RecordManager,
        tree: Tree,
        record_of: list,
        labels: list,
        config: StorageConfig = DEFAULT_CONFIG,
    ) -> "DocumentStore":
        """Wrap an existing page set instead of serializing a fresh one.

        This is the recovery constructor: :func:`repro.recovery.manager.
        recover_store` rebuilds the tree and assignment from surviving
        page images and must adopt those pages *byte-identically* — a
        round-trip through :meth:`build` would re-pack records and change
        the page layout, destroying the crash-matrix equality it exists
        to prove.
        """
        store = cls.__new__(cls)
        store.config = config
        store.stats = NavigationStats()
        store.edge_buffer = None
        store.heat_append = None
        store.heat_fault_append = None
        store.heat_buffer = None
        store.heat_drain = None
        store.heat_flush_at = 8192
        store.structural_index = None
        store.wal = None
        store.labels = []
        store._label_ids = {}
        store.codec = RecordCodec(
            record_header=config.record_header, capacity_bytes=None
        )
        store.manager = manager
        store.rebind(tree, record_of, labels)
        return store

    def rebind(self, tree: Tree, record_of: list, labels: list) -> None:
        """Swap in recovered in-memory state around the existing pages.

        Everything derivable is re-derived: the partitioning from the
        assignment, record weights from node weights, document-order
        ranks lazily, and a fresh buffer pool over the (possibly
        repaired) pages.
        """
        self.tree = tree
        self.labels = list(labels)
        self._label_ids = {label: lid for lid, label in enumerate(self.labels)}
        self.record_of = list(record_of)
        count = max(self.record_of, default=-1) + 1
        for record_id in self.manager.page_of_record:
            count = max(count, record_id + 1)
        self.record_count = count
        self.partitioning = Partitioning(
            intervals_from_assignment(tree, self.record_of)
        )
        self.record_weights = [0] * count
        for node in tree:
            self.record_weights[self.record_of[node.node_id]] += node.weight
        self.buffer = BufferPool(self.manager.pages, self.config.buffer_pages)
        self._order_ranks = None
        # recovered state never trusts a pre-crash index; rebuild on demand
        self.structural_index = None
        self.stats.reset()

    def attach_wal(self, wal) -> None:
        """Route update flushes through ``wal`` (a
        :class:`~repro.recovery.wal.WriteAheadLog`, already open).

        An empty log immediately gets a checkpoint frame carrying the
        label dictionary and record limit — cold recovery needs that
        snapshot even if the store crashes before its first commit.
        """
        self.wal = wal
        if wal.frames == 0:
            wal.checkpoint(self.labels, self.config.record_limit)

    # -- accounting ------------------------------------------------------

    def warm_up(self) -> None:
        """Preload the buffer and zero the counters (Table 3 protocol).

        This is the one sanctioned implicit reset: the paper measures
        *after* preloading, so both the navigation counters and the
        pool's workload counters start from zero here. The pool's own
        :meth:`~repro.storage.buffer.BufferPool.warm_up` never charges
        workload counters by itself (see its module docstring).
        """
        self.buffer.warm_up()
        self.stats.reset()
        self.buffer.stats.reset()

    def _charge_step(self, source: TreeNode, target: TreeNode) -> None:
        # hook accounting is batched: one pre-bound list.append per hop
        # (no Python call frame, no per-hop threshold bookkeeping on the
        # dominant intra branch); heat drains at end of query and every
        # heat_flush_at hops on the cross branch, edge buffers at the
        # profiler's leisure (PERF002 forbids per-element callbacks here)
        source_id = source.node_id
        target_id = target.node_id
        edges = self.edge_buffer
        if edges is not None:
            edges.append((source_id, target_id))
        heat_append = self.heat_append
        if self.record_of[source_id] == self.record_of[target_id]:
            self.stats.intra_steps += 1
            if heat_append is not None:
                # packed int, not a tuple: untracked by gc and folded at
                # machine-word speed; ORs into the node's precomputed
                # packed_id so the hop pays no shift (see
                # telemetry.heat.pack_hop)
                heat_append(source.packed_id | target_id)
            return
        self.stats.cross_steps += 1
        page_id = self.manager.page_of_record[self.record_of[target_id]]
        cached = self.buffer.is_cached(page_id)
        self.buffer.fetch(page_id)
        if not cached:
            self.stats.page_faults += 1
        if heat_append is not None:
            heat_append(source.packed_id | target_id)
            if not cached:
                self.heat_fault_append(source.packed_id | target_id)
            if len(self.heat_buffer) >= self.heat_flush_at:
                self.heat_drain()

    def simulated_cost(self) -> float:
        return self.stats.cost(self.config)

    def space_report(self) -> SpaceReport:
        return self.manager.space_report()

    def fetch_record(self, record_id: int) -> Record:
        """Decode a record from its page (used by record-level navigation,
        reconstruction and integrity checks).

        The page is verified even on a buffer hit: corruption that lands
        while a page sits in the cache must surface as
        :class:`~repro.errors.CorruptPageError` here rather than decode
        into a garbage tree downstream.
        """
        page = self.buffer.fetch(self.manager.page_of_record[record_id])
        page.verify()
        return self.codec.decode(record_id, page.get(record_id))

    # -- document order (stable across incremental updates) ---------------

    def order_rank(self, node_id: int) -> int:
        """Preorder (document-order) rank of a node.

        For freshly built stores node ids *are* document order; after
        incremental inserts they are not, so ranks are recomputed lazily
        whenever the structure changed.
        """
        if self._order_ranks is None:
            from repro.tree.traversal import iter_preorder

            ranks = [0] * len(self.tree)
            for rank, node in enumerate(iter_preorder(self.tree)):
                ranks[node.node_id] = rank
            self._order_ranks = ranks
        return self._order_ranks[node_id]

    def invalidate_order(self) -> None:
        """Called by the updater after structural changes."""
        self._order_ranks = None
        self.invalidate_index()

    # -- structural index --------------------------------------------------

    def build_index(self):
        """(Re)build the :class:`~repro.index.StructuralIndex` for the
        current tree + record assignment; the engine uses it for window
        axis evaluation until the next structural change."""
        from repro.index import StructuralIndex

        self.structural_index = StructuralIndex.build(self)
        return self.structural_index

    def invalidate_index(self) -> None:
        """Mark the structural index stale (structural insert or record
        move); queries fall back to navigation until a rebuild."""
        index = self.structural_index
        if index is not None:
            index.invalidate()

    def rebuild_record(self, record_id: int) -> Record:
        """Re-materialize one record from the current tree + assignment
        (incremental updates re-encode dirty records through this)."""
        record = Record(record_id)
        slot_of: dict[int, int] = {}
        for node in self.tree:
            if self.record_of[node.node_id] != record_id:
                continue
            parent = node.parent
            if parent is not None and self.record_of[parent.node_id] == record_id:
                parent_slot = slot_of[parent.node_id]
            else:
                parent_slot = NO_PARENT
            slot_of[node.node_id] = len(record.nodes)
            record.nodes.append(
                RecordNode(
                    node_id=node.node_id,
                    kind=node.kind,
                    label_id=self._label_id(node.label),
                    parent_slot=parent_slot,
                    content=(node.content or "").encode("utf-8"),
                    parent_node_id=(
                        DOCUMENT_ROOT if parent is None else parent.node_id
                    ),
                    position=node.index,
                )
            )
        return record

    # -- navigation ------------------------------------------------------

    def root(self) -> "StoredNode":
        self.stats.node_visits += 1
        return StoredNode(self, self.tree.root)

    def node(self, node_id: int) -> "StoredNode":
        return StoredNode(self, self.tree.node(node_id))


class StoredNode:
    """Handle to one stored node; navigation is charged to the store.

    The structural links come from the in-memory tree (this is a
    simulator), but every step is classified intra- vs cross-record using
    the real record assignment, and cross steps go through the buffer
    pool — the quantities the experiments measure.
    """

    __slots__ = ("store", "_node")

    def __init__(self, store: DocumentStore, node: TreeNode):
        self.store = store
        self._node = node

    # identity / payload (no navigation cost)

    @property
    def node_id(self) -> int:
        return self._node.node_id

    @property
    def label(self) -> str:
        return self._node.label

    @property
    def kind(self) -> NodeKind:
        return self._node.kind

    @property
    def content(self) -> Optional[str]:
        return self._node.content

    @property
    def record_id(self) -> int:
        return self.store.record_of[self._node.node_id]

    def is_element(self) -> bool:
        return self._node.kind is NodeKind.ELEMENT

    # navigation primitives (each hop is charged)

    def _hop(self, target: Optional[TreeNode]) -> Optional["StoredNode"]:
        if target is None:
            return None
        self.store._charge_step(self._node, target)
        self.store.stats.node_visits += 1
        return StoredNode(self.store, target)

    def parent(self) -> Optional["StoredNode"]:
        return self._hop(self._node.parent)

    def first_child(self) -> Optional["StoredNode"]:
        children = self._node.children
        return self._hop(children[0] if children else None)

    def next_sibling(self) -> Optional["StoredNode"]:
        return self._hop(self._node.next_sibling())

    def prev_sibling(self) -> Optional["StoredNode"]:
        return self._hop(self._node.prev_sibling())

    def children(self) -> Iterator["StoredNode"]:
        """First-child / next-sibling walk over all children."""
        child = self.first_child()
        while child is not None:
            yield child
            child = child.next_sibling()

    def descendants_or_self(self) -> Iterator["StoredNode"]:
        """Document-order walk of the subtree (self first), step-charged."""
        yield self
        stack: list[StoredNode] = []
        first = self.first_child()
        if first is not None:
            stack.append(first)
        while stack:
            node = stack.pop()
            yield node
            sibling = node.next_sibling()
            if sibling is not None:
                stack.append(sibling)
            child = node.first_child()
            if child is not None:
                stack.append(child)
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoredNode(id={self.node_id}, label={self.label!r}, record={self.record_id})"
