"""Physical records: serialized tree fragments.

A record stores one partition — the forest of subtrees rooted at the
members of one sibling interval. Nodes are serialized in document order.
The format is *self-describing enough to rebuild the document*: every
node carries its sibling position, intra-record parents are referenced by
slot, and fragment roots (nodes whose parent lives in another record)
carry their parent's global node id — the equivalent of Natix' proxy
pointers. :mod:`repro.storage.reconstruct` proves the point by rebuilding
the whole tree from record bytes alone.

Binary layout (little-endian)::

    record header   : node_count u16, fragment_root_count u16
    per node (19 B) : node_id u32, kind u8, label_id u16,
                      parent_slot u16 (0xFFFF = fragment root),
                      parent_node_id u32 (0xFFFFFFFF = document root;
                                          only meaningful for roots),
                      position u16 (index among the parent's children),
                      content_len u16
    then            : content bytes (UTF-8) for each node, in order

The codec is exercised by round-trip tests; disk accounting uses the
serialized length plus the configured record header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RecordOverflowError, StorageError
from repro.tree.node import NodeKind

_NODE_FMT = struct.Struct("<IBHHIHH")
NO_PARENT = 0xFFFF
DOCUMENT_ROOT = 0xFFFFFFFF


@dataclass
class RecordNode:
    """One serialized node inside a record."""

    node_id: int
    kind: NodeKind
    label_id: int
    parent_slot: int  # slot index within this record, NO_PARENT for roots
    content: bytes = b""
    #: global id of the parent for fragment roots (DOCUMENT_ROOT for the
    #: document root); undefined (0) for intra-record nodes
    parent_node_id: int = 0
    #: index of this node among its parent's children
    position: int = 0


@dataclass
class Record:
    """A deserialized (or to-be-serialized) physical record."""

    record_id: int
    nodes: list[RecordNode] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def fragment_roots(self) -> list[RecordNode]:
        return [n for n in self.nodes if n.parent_slot == NO_PARENT]

    def node_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes]


class RecordCodec:
    """Encodes/decodes records; enforces the byte capacity."""

    def __init__(self, record_header: int = 16, capacity_bytes: Optional[int] = None):
        self.record_header = record_header
        self.capacity_bytes = capacity_bytes

    def encoded_size(self, record: Record) -> int:
        payload = 4 + _NODE_FMT.size * len(record.nodes)
        payload += sum(len(n.content) for n in record.nodes)
        return self.record_header + payload

    def encode(self, record: Record) -> bytes:
        if len(record.nodes) >= NO_PARENT:
            raise StorageError(f"record {record.record_id} has too many nodes")
        roots = sum(1 for n in record.nodes if n.parent_slot == NO_PARENT)
        out = [struct.pack("<HH", len(record.nodes), roots)]
        for node in record.nodes:
            if len(node.content) > 0xFFFF:
                raise StorageError(
                    f"node {node.node_id} content exceeds 64 KiB record field"
                )
            if node.position > 0xFFFF:
                raise StorageError(
                    f"node {node.node_id} sibling position exceeds 16 bits"
                )
            out.append(
                _NODE_FMT.pack(
                    node.node_id,
                    int(node.kind),
                    node.label_id,
                    node.parent_slot,
                    node.parent_node_id,
                    node.position,
                    len(node.content),
                )
            )
        out.extend(node.content for node in record.nodes)
        blob = b"".join(out)
        if self.capacity_bytes is not None and len(blob) > self.capacity_bytes:
            raise RecordOverflowError(
                f"record {record.record_id}: {len(blob)} bytes exceed capacity "
                f"{self.capacity_bytes}"
            )
        return blob

    def decode(self, record_id: int, blob: bytes) -> Record:
        if len(blob) < 4:
            raise StorageError("record blob too short")
        count, _roots = struct.unpack_from("<HH", blob, 0)
        offset = 4
        nodes: list[RecordNode] = []
        lengths: list[int] = []
        for _ in range(count):
            (
                node_id,
                kind,
                label_id,
                parent_slot,
                parent_node_id,
                position,
                content_len,
            ) = _NODE_FMT.unpack_from(blob, offset)
            offset += _NODE_FMT.size
            nodes.append(
                RecordNode(
                    node_id,
                    NodeKind(kind),
                    label_id,
                    parent_slot,
                    b"",
                    parent_node_id,
                    position,
                )
            )
            lengths.append(content_len)
        for node, length in zip(nodes, lengths):
            node.content = blob[offset : offset + length]
            offset += length
        if offset != len(blob):
            raise StorageError(f"record {record_id}: trailing bytes after decode")
        return Record(record_id, nodes)
