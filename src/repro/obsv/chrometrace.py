"""Chrome-trace (``chrome://tracing`` / Perfetto) export of span records.

Every completed span carries its ``perf_counter()`` entry reading
(:attr:`SpanRecord.start`), so a registry trace converts losslessly into
Chrome's JSON-object trace format using *complete* events (``"ph": "X"``)
— open either output in ``chrome://tracing`` or https://ui.perfetto.dev
to inspect a whole bulk load or query run visually.

Timestamps are re-based to the earliest span in the trace (Chrome wants
microseconds from an arbitrary epoch), span attributes and the nesting
path travel in ``args``, and the registry's counters are attached as
process metadata so a trace file is self-describing.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, TextIO, Union

from repro.errors import ReproError
from repro.telemetry.core import MetricRegistry, SpanRecord, registry as _default_registry

#: schema marker stored in the trace's otherData block
CHROME_SCHEMA = "repro-chrome-trace/1"

Record = Union[SpanRecord, Mapping[str, Any]]


def _as_mapping(record: Record) -> Mapping[str, Any]:
    if isinstance(record, SpanRecord):
        return record.as_dict()
    return record


def chrome_trace_events(records, pid: int = 1, tid: int = 1) -> list[dict[str, Any]]:
    """Convert span records into Chrome *complete* events.

    Accepts live :class:`SpanRecord` objects or dicts loaded from a JSONL
    export. Event order follows the input (completion order); viewers
    re-sort by timestamp anyway.
    """
    mapped = [_as_mapping(r) for r in records]
    if not mapped:
        return []
    epoch = min(float(m.get("start", 0.0)) for m in mapped)
    events: list[dict[str, Any]] = []
    for m in mapped:
        args: dict[str, Any] = {"path": m["path"], "depth": m["depth"]}
        if m.get("error") is not None:
            args["error"] = m["error"]
        args.update(m.get("attrs") or {})
        events.append(
            {
                "name": m["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (float(m.get("start", 0.0)) - epoch) * 1e6,
                "dur": float(m["seconds"]) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return events


def export_chrome_trace(
    stream: TextIO, reg: Optional[MetricRegistry] = None, indent: Optional[int] = None
) -> int:
    """Write the registry's trace as a Chrome trace JSON object.

    Returns the number of trace events written. Counters ride along as
    ``otherData`` so the file identifies its workload without the
    matching metrics export.
    """
    reg = reg if reg is not None else _default_registry()
    payload = {
        "traceEvents": chrome_trace_events(reg.trace),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_SCHEMA,
            "dropped_spans": reg.dropped_spans,
            "counters": {name: c.value for name, c in sorted(reg.counters.items())},
        },
    }
    json.dump(payload, stream, indent=indent, sort_keys=True)
    stream.write("\n")
    return len(payload["traceEvents"])


def load_chrome_trace(stream: TextIO) -> list[dict[str, Any]]:
    """Parse a Chrome trace written by :func:`export_chrome_trace`.

    Returns the event list; raises :class:`ReproError` on malformed input
    or a foreign/missing schema marker, so stale or third-party traces
    fail loudly instead of being half-read.
    """
    try:
        payload = json.load(stream)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid chrome trace JSON: {exc}") from None
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ReproError("chrome trace has no traceEvents array")
    schema = payload.get("otherData", {}).get("schema")
    if schema != CHROME_SCHEMA:
        raise ReproError(
            f"chrome trace schema mismatch: file has {schema!r}, reader expects {CHROME_SCHEMA!r}"
        )
    events = payload["traceEvents"]
    for idx, event in enumerate(events):
        for key in ("name", "ph", "ts", "dur"):
            if key not in event:
                raise ReproError(f"chrome trace event {idx} is missing {key!r}")
    return events
