"""``repro-explain``: per-partition decision provenance from the CLI.

::

    repro-explain doc.xml --alg ekm
    repro-explain doc.xml --alg dhw --alg ghdw      # side-by-side diff
    repro-explain doc.xml --alg ekm --json > explain.json

Each ``--alg`` runs that partitioner on the document under an
:func:`repro.obsv.explain.explain_scope` and prints the partition
provenance: decision counts, fill-ratio histogram and the heaviest
partitions with the decision that created each. With exactly two
algorithms a side-by-side diff (shared intervals, fill histograms) is
appended.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.obsv.explain import explain_partition, format_diff, format_explain


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description="Explain why each partition of a document exists: run one "
        "or more partitioners with decision provenance enabled and render "
        "per-partition reports.",
    )
    parser.add_argument("document", help="path to an XML file")
    parser.add_argument(
        "--alg",
        action="append",
        dest="algorithms",
        metavar="NAME",
        help="algorithm to explain (repeatable; default: ekm)",
    )
    parser.add_argument(
        "--limit", type=int, default=256, help="weight limit K in slots (default: 256)"
    )
    parser.add_argument(
        "--top", type=int, default=5, help="show the N heaviest partitions (default: 5)"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )
    args = parser.parse_args(argv)
    algorithms = args.algorithms or ["ekm"]

    try:
        from repro.xmlio import parse_tree

        tree = parse_tree(args.document)
        explains = [explain_partition(tree, args.limit, alg) for alg in algorithms]
    except (ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        payload = {
            "document": args.document,
            "limit": args.limit,
            "explains": [explain.as_dict() for explain in explains],
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    print(f"document: {args.document} ({len(tree)} nodes), K={args.limit}")
    for explain in explains:
        print()
        print(format_explain(explain, top=args.top))
    if len(explains) == 2:
        print()
        print(format_diff(explains[0], explains[1]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
