"""Decision provenance for partitioning runs.

The paper's tables compare algorithms by *final* partition counts; this
module records *why* each partition exists. Every partitioner module
contains hook calls at its decision points (a DP chain interval chosen, a
KM/EKM cut, a greedy run packed, a new DFS/BFS partition opened). The
hooks are free while explaining is off — the same module-global fast path
as :mod:`repro.telemetry`: one attribute load and a falsy branch — and
record a :class:`Decision` per created interval while an
:func:`explain_scope` is active.

`Partitioner.partition` then joins the recorded decisions with the
per-partition facts it can compute generically (weight, fill ratio,
sibling-interval bounds, tree depth, member count) into one
:class:`PartitionExplain` per run. ``repro-explain`` renders these as
fill-ratio histograms and side-by-side algorithm diffs.

Decisions are keyed by the interval's *left* node id — the left endpoints
of a (disjoint) sibling partitioning are unique, and every hook site
knows at least the node that opens the new partition.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: active collector — the no-op fast path checks this first
_collector: Optional["ExplainCollector"] = None


def explaining() -> bool:
    """Is a provenance collector currently active?"""
    return _collector is not None


def decision(left_id: int, kind: str, **detail: Any) -> None:
    """Record the decision that opens the partition starting at ``left_id``.

    No-op (and the caller should guard the call so ``detail`` is never
    even built) while no collector is active. The last decision recorded
    for a left endpoint wins — algorithms that revise a choice simply
    record again.
    """
    if _collector is None:
        return
    _collector.decisions[left_id] = Decision(kind=kind, detail=detail)


def note(key: str, value: Any) -> None:
    """Attach an algorithm-level fact (DP cells, candidates considered)."""
    if _collector is None:
        return
    _collector.notes[key] = value


def add_note(key: str, n: int = 1) -> None:
    """Increment a numeric algorithm-level note."""
    if _collector is None:
        return
    _collector.notes[key] = _collector.notes.get(key, 0) + n


@dataclass(frozen=True)
class Decision:
    """One recorded partitioning decision (kind + free-form detail)."""

    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        if not self.detail:
            return self.kind
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.kind} ({parts})"


@dataclass(frozen=True)
class PartitionExplainEntry:
    """Provenance of one partition of the result."""

    interval: tuple[int, int]
    weight: int
    fill: float
    depth: int
    members: int
    decision: Optional[Decision]

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "interval": list(self.interval),
            "weight": self.weight,
            "fill": self.fill,
            "depth": self.depth,
            "members": self.members,
        }
        if self.decision is not None:
            out["decision"] = {"kind": self.decision.kind, **self.decision.detail}
        return out


@dataclass
class PartitionExplain:
    """Everything recorded about one ``partition()`` run."""

    algorithm: str
    limit: int
    total_weight: int
    entries: list[PartitionExplainEntry]
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def cardinality(self) -> int:
        return len(self.entries)

    @property
    def mean_fill(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e.fill for e in self.entries) / len(self.entries)

    @property
    def intervals(self) -> set[tuple[int, int]]:
        return {e.interval for e in self.entries}

    def fill_histogram(self, buckets: int = 10) -> list[int]:
        """Partition counts per fill-ratio bucket; ``buckets`` equal-width
        bins over ``[0, 1]`` with fill 1.0 landing in the last bin."""
        counts = [0] * buckets
        for entry in self.entries:
            idx = min(buckets - 1, int(entry.fill * buckets))
            counts[idx] += 1
        return counts

    def decision_kinds(self) -> dict[str, int]:
        """How often each decision kind occurs, sorted by kind."""
        kinds: dict[str, int] = {}
        for entry in self.entries:
            if entry.decision is not None:
                kinds[entry.decision.kind] = kinds.get(entry.decision.kind, 0) + 1
        return dict(sorted(kinds.items()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "limit": self.limit,
            "cardinality": self.cardinality,
            "total_weight": self.total_weight,
            "mean_fill": self.mean_fill,
            "notes": dict(sorted(self.notes.items())),
            "entries": [e.as_dict() for e in self.entries],
        }


class ExplainCollector:
    """Accumulates decisions during ``_partition`` and finished explains.

    One collector serves a whole :func:`explain_scope`; per-run state
    (decisions, notes) is cleared by :func:`start_run` so chained
    partitioner calls (e.g. the fallback chain) each explain themselves.
    """

    def __init__(self) -> None:
        self.explains: list[PartitionExplain] = []
        self.decisions: dict[int, Decision] = {}
        self.notes: dict[str, Any] = {}

    def explain_for(self, algorithm: str) -> Optional[PartitionExplain]:
        """The most recent explain produced by ``algorithm``, if any."""
        for explain in reversed(self.explains):
            if explain.algorithm == algorithm:
                return explain
        return None


@contextmanager
def explain_scope() -> Iterator[ExplainCollector]:
    """Activate provenance collection; restores the previous collector."""
    global _collector
    previous = _collector
    _collector = ExplainCollector()
    try:
        yield _collector
    finally:
        _collector = previous


def start_run() -> None:
    """Reset per-run state (called by ``Partitioner.partition``)."""
    if _collector is None:
        return
    _collector.decisions.clear()
    _collector.notes.clear()


def finish_run(algorithm: str, tree, result, limit: int) -> Optional[PartitionExplain]:
    """Join recorded decisions with per-partition facts into an explain.

    Called by ``Partitioner.partition`` after the contract check, outside
    the timing span. The O(n) passes here run only while explaining.
    """
    if _collector is None:
        return None
    # Local imports: repro.partition.base imports this module, so the
    # reverse dependency must stay call-time only.
    from repro.partition.evaluate import partition_weights

    depths = _node_depths(tree)
    weights = partition_weights(tree, result)
    decisions = _collector.decisions
    root_id = tree.root.node_id
    entries: list[PartitionExplainEntry] = []
    for iv in result.sorted_intervals():
        chosen = decisions.get(iv.left)
        if chosen is None and iv.left == root_id:
            chosen = Decision(kind="root-interval", detail={})
        entries.append(
            PartitionExplainEntry(
                interval=(iv.left, iv.right),
                weight=weights[iv],
                fill=weights[iv] / limit,
                depth=depths[iv.left],
                members=len(iv.nodes(tree)),
                decision=chosen,
            )
        )
    explain = PartitionExplain(
        algorithm=algorithm,
        limit=limit,
        total_weight=tree.total_weight(),
        entries=entries,
        notes=dict(_collector.notes),
    )
    _collector.explains.append(explain)
    _collector.decisions.clear()
    _collector.notes.clear()
    return explain


def _node_depths(tree) -> list[int]:
    """Depth per node id; creation order guarantees parents come first."""
    depths = [0] * len(tree)
    for node in tree:
        if node.parent is not None:
            depths[node.node_id] = depths[node.parent.node_id] + 1
    return depths


def explain_partition(tree, limit: int, algorithm: str = "ekm") -> PartitionExplain:
    """One-call convenience: partition ``tree`` and return the provenance."""
    from repro.partition import get_algorithm

    with explain_scope() as collector:
        get_algorithm(algorithm).partition(tree, limit)
    explain = collector.explain_for(algorithm)
    assert explain is not None  # partition() always records under a scope
    return explain


# ---------------------------------------------------------------------------
# Rendering (the `repro-explain` output)
# ---------------------------------------------------------------------------

_BAR_WIDTH = 30


def _bar(count: int, peak: int) -> str:
    if peak == 0:
        return ""
    return "#" * max(1 if count else 0, count * _BAR_WIDTH // peak)


def format_fill_histogram(explain: PartitionExplain, buckets: int = 10) -> str:
    """ASCII fill-ratio histogram of one explain."""
    counts = explain.fill_histogram(buckets)
    peak = max(counts) if counts else 0
    lines = [f"fill-ratio histogram ({explain.algorithm}, K={explain.limit}):"]
    for idx, count in enumerate(counts):
        lo = idx * 100 // buckets
        hi = (idx + 1) * 100 // buckets
        lines.append(f"  {lo:3d}-{hi:3d}%  {count:6d}  {_bar(count, peak)}")
    return "\n".join(lines)


def format_explain(explain: PartitionExplain, top: int = 5) -> str:
    """Human-readable provenance report for one algorithm run."""
    lines = [
        f"{explain.algorithm}: {explain.cardinality} partitions, "
        f"mean fill {explain.mean_fill * 100:.1f}% "
        f"(total weight {explain.total_weight}, K={explain.limit})"
    ]
    kinds = explain.decision_kinds()
    if kinds:
        rendered = ", ".join(f"{kind}×{count}" for kind, count in kinds.items())
        lines.append(f"decisions: {rendered}")
    for key, value in sorted(explain.notes.items()):
        lines.append(f"note: {key} = {value}")
    lines.append(format_fill_histogram(explain))
    if top > 0 and explain.entries:
        heaviest = sorted(
            explain.entries, key=lambda e: (-e.weight, e.interval)
        )[:top]
        lines.append(f"heaviest {len(heaviest)} partitions:")
        for entry in heaviest:
            decision = entry.decision.render() if entry.decision else "unattributed"
            lines.append(
                f"  ({entry.interval[0]},{entry.interval[1]})  "
                f"weight {entry.weight} ({entry.fill * 100:.0f}%), "
                f"depth {entry.depth}, {entry.members} member(s) — {decision}"
            )
    return "\n".join(lines)


def format_diff(a: PartitionExplain, b: PartitionExplain, buckets: int = 10) -> str:
    """Side-by-side comparison of two explains of the *same* document."""
    lines = [
        f"{a.algorithm} vs {b.algorithm} (K={a.limit}):",
        f"  partitions: {a.cardinality} vs {b.cardinality} "
        f"({b.cardinality - a.cardinality:+d})",
        f"  mean fill:  {a.mean_fill * 100:.1f}% vs {b.mean_fill * 100:.1f}%",
    ]
    shared = a.intervals & b.intervals
    lines.append(
        f"  intervals:  {len(shared)} shared, "
        f"{len(a.intervals) - len(shared)} only-{a.algorithm}, "
        f"{len(b.intervals) - len(shared)} only-{b.algorithm}"
    )
    counts_a = a.fill_histogram(buckets)
    counts_b = b.fill_histogram(buckets)
    peak = max(counts_a + counts_b) if (counts_a or counts_b) else 0
    lines.append(f"  fill-ratio histogram ({a.algorithm} | {b.algorithm}):")
    for idx in range(buckets):
        lo = idx * 100 // buckets
        hi = (idx + 1) * 100 // buckets
        lines.append(
            f"  {lo:3d}-{hi:3d}%  {counts_a[idx]:6d} {_bar(counts_a[idx], peak):<{_BAR_WIDTH}}"
            f" | {counts_b[idx]:6d} {_bar(counts_b[idx], peak)}"
        )
    return "\n".join(lines)
