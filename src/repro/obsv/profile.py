"""Deterministic self-time profiler over the telemetry span tree.

Spans already record their slash-joined nesting ``path``
(``cli.import/bulkload.import/partition.ekm``), so a registry trace *is*
a call tree — this module aggregates it into per-path totals and
**self time** (a node's total minus its direct children's totals: the
time spent in that phase itself, e.g. DP cell evaluation vs. tree
traversal vs. page I/O).

The profile is a pure function of the recorded spans: aggregation,
tie-breaking and rendering order are fully deterministic, so two runs of
the same workload produce byte-identical *structure* (only the measured
seconds differ). Works on live :class:`~repro.telemetry.SpanRecord`
objects and on dict records loaded back from a JSONL export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Union

from repro.telemetry.core import MetricRegistry, SpanRecord, registry as _default_registry

Record = Union[SpanRecord, Mapping[str, Any]]


@dataclass
class ProfileNode:
    """Aggregated timings of every span that shares one nesting path."""

    path: str
    name: str
    calls: int = 0
    total: float = 0.0
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def child_total(self) -> float:
        return sum(child.total for child in self.children.values())

    @property
    def self_seconds(self) -> float:
        """Time attributed to this phase itself (never negative — a child
        overlapping its parent's recorded window by measurement jitter is
        clamped)."""
        return max(0.0, self.total - self.child_total)

    def sorted_children(self) -> list["ProfileNode"]:
        """Deterministic order: by total seconds descending, path as the
        tie-breaker."""
        return sorted(self.children.values(), key=lambda n: (-n.total, n.path))

    def walk(self):
        yield self
        for child in self.sorted_children():
            yield from child.walk()


def _fields(record: Record) -> tuple[str, str, float]:
    if isinstance(record, SpanRecord):
        return record.path, record.name, record.seconds
    return str(record["path"]), str(record["name"]), float(record["seconds"])


def build_profile(records: Iterable[Record]) -> ProfileNode:
    """Aggregate span records into a profile tree under a virtual root.

    Spans whose parent never recorded (e.g. trace truncation dropped it)
    attach to the nearest recorded ancestor path, falling back to the
    root — no time is silently lost.
    """
    root = ProfileNode(path="", name="(all)")
    nodes: dict[str, ProfileNode] = {"": root}

    def node_for(path: str, name: str) -> ProfileNode:  # repro-lint: allow-recursion (depth = span nesting depth, bounded by instrumented call nesting)
        existing = nodes.get(path)
        if existing is not None:
            return existing
        parent_path, _, leaf = path.rpartition("/")
        parent = node_for(parent_path, parent_path.rpartition("/")[2] or "(all)")
        node = nodes[path] = ProfileNode(path=path, name=name or leaf)
        parent.children[path] = node
        return node

    for record in records:
        path, name, seconds = _fields(record)
        node = node_for(path, name)
        node.calls += 1
        node.total += seconds
    # The virtual root's total is the sum of the top-level spans.
    root.total = root.child_total
    return root


def profile_registry(reg: Optional[MetricRegistry] = None) -> ProfileNode:
    """Profile the trace of ``reg`` (default: the global registry)."""
    reg = reg if reg is not None else _default_registry()
    return build_profile(reg.trace)


def format_profile(root: ProfileNode, min_fraction: float = 0.0) -> str:
    """Render a profile tree as an aligned, indented table.

    ``min_fraction`` hides subtrees below that share of the root total
    (0 shows everything).
    """
    if not root.children:
        return "no spans recorded (is telemetry enabled?)"
    denom = root.total or 1.0
    lines = [f"{'total s':>10}  {'self s':>10}  {'calls':>7}  {'%':>5}  phase"]

    def emit(node: ProfileNode, depth: int) -> None:  # repro-lint: allow-recursion (depth = profile tree depth, same bound as node_for)
        fraction = node.total / denom
        if node is not root and fraction < min_fraction:
            return
        label = ("  " * depth) + (node.name if node is not root else node.name)
        lines.append(
            f"{node.total:10.6f}  {node.self_seconds:10.6f}  {node.calls:7d}  "
            f"{fraction * 100:5.1f}  {label}"
        )
        for child in node.sorted_children():
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
