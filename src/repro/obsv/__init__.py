"""Deep observability: decision provenance, profiling, trace export.

Builds on :mod:`repro.telemetry` (metrics + spans) with three tools:

* :mod:`repro.obsv.explain` — *why* each partition exists: per-partition
  decision provenance recorded by the partitioners, rendered by the
  ``repro-explain`` CLI;
* :mod:`repro.obsv.profile` — deterministic self-time attribution over
  the span tree (``repro stats --profile``);
* :mod:`repro.obsv.chrometrace` — Chrome-trace/Perfetto JSON export of
  span records (``repro stats --chrome-trace``).
"""

from repro.obsv.chrometrace import (
    CHROME_SCHEMA,
    chrome_trace_events,
    export_chrome_trace,
    load_chrome_trace,
)
from repro.obsv.explain import (
    Decision,
    ExplainCollector,
    PartitionExplain,
    PartitionExplainEntry,
    explain_partition,
    explain_scope,
    explaining,
    format_diff,
    format_explain,
    format_fill_histogram,
)
from repro.obsv.profile import (
    ProfileNode,
    build_profile,
    format_profile,
    profile_registry,
)

__all__ = [
    "CHROME_SCHEMA",
    "Decision",
    "ExplainCollector",
    "PartitionExplain",
    "PartitionExplainEntry",
    "ProfileNode",
    "build_profile",
    "chrome_trace_events",
    "explain_partition",
    "explain_scope",
    "explaining",
    "export_chrome_trace",
    "format_diff",
    "format_explain",
    "format_fill_histogram",
    "format_profile",
    "load_chrome_trace",
    "profile_registry",
]
