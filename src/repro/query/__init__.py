"""XPath-subset query engine over the document store (paper Sec. 6.4).

Supports exactly what the XPathMark queries Q1–Q7 need — and a bit more:
the ``child``, ``descendant``, ``descendant-or-self``, ``self``,
``parent``, ``ancestor``, ``ancestor-or-self``, ``following-sibling`` and
``preceding-sibling`` axes, name and wildcard node tests, abbreviated
``/`` / ``//`` syntax, and predicates combining relative-path existence
tests with ``or`` / ``and``.

Every axis walk navigates :class:`~repro.storage.store.StoredNode`
handles, so query cost directly measures partition quality.
"""

from repro.query.ast import LocationPath, Step, Predicate
from repro.query.parser import parse_xpath
from repro.query.engine import evaluate, run_query, QueryRun
from repro.query.xpathmark import XPATHMARK_QUERIES, XPathMarkQuery

__all__ = [
    "LocationPath",
    "Step",
    "Predicate",
    "parse_xpath",
    "evaluate",
    "run_query",
    "QueryRun",
    "XPATHMARK_QUERIES",
    "XPathMarkQuery",
]
