"""Recursive-descent parser for the XPath subset.

Grammar (abbreviated syntax is normalized during parsing)::

    path       := ("/" | "//")? relative
    relative   := step (("/" | "//") step)*
    step       := (axisname "::")? nodetest predicate*
    nodetest   := NAME | "*" | "@" NAME | "@" "*" | "text()" | "node()"
    predicate  := "[" orexpr "]" | "[" NUMBER "]" | "[" "last()" "]"
    orexpr     := andexpr ("or" andexpr)*
    andexpr    := compexpr ("and" compexpr)*
    compexpr   := path (("=" | "!=") LITERAL)?

``//`` before a step is normalized to the ``descendant`` axis; ``@name``
to the ``attribute`` axis.

The parser is recursive descent; the ``path -> step -> predicate ->
or -> and -> comparison -> path`` ring recurses once per predicate
nesting level. Every traversal of that ring passes through
:meth:`_Parser.parse_predicate_expr`, which enforces ``MAX_NESTING`` so
the recursion depth is bounded by construction however deep a (possibly
hostile) expression nests — the ``allow-recursion`` pragmas below record
exactly that argument for ``repro-lint``.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    AXES_BY_NAME,
    Axis,
    BooleanExpr,
    Comparison,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Position,
    Predicate,
    PredicateExpr,
    STAR,
    Step,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<dslash>//)"
    r"|(?P<slash>/)"
    r"|(?P<axis_sep>::)"
    r"|(?P<lbracket>\[)"
    r"|(?P<rbracket>\])"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<at>@)"
    r"|(?P<neq>!=)"
    r"|(?P<eq>=)"
    r"|(?P<star>\*)"
    r"|(?P<number>\d+)"
    r"|(?P<literal>\"[^\"]*\"|'[^']*')"
    r"|(?P<name>[A-Za-z_][\w.-]*)"
    r")"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise QuerySyntaxError(f"unexpected character at {pos}: {text[pos:pos + 10]!r}")
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
        pos = match.end()
    return tokens


#: hard cap on predicate nesting depth (the only unbounded dimension of
#: the grammar); ~10 frames per level stays far below CPython's limit
MAX_NESTING = 50


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.nesting = 0

    def peek(self, offset: int = 0) -> Optional[tuple[str, str]]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def take(self, kind: Optional[str] = None) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(f"unexpected end of expression: {self.text!r}")
        if kind is not None and token[0] != kind:
            raise QuerySyntaxError(
                f"expected {kind}, found {token[1]!r} in {self.text!r}"
            )
        self.pos += 1
        return token

    # path := ("/" | "//")? relative
    def parse_path(self) -> LocationPath:  # repro-lint: allow-recursion (nesting capped in parse_predicate_expr)
        token = self.peek()
        absolute = False
        double = False
        if token is not None and token[0] in ("slash", "dslash"):
            absolute = True
            double = token[0] == "dslash"
            self.take()
            if self.peek() is None and not double:
                return LocationPath(steps=(), absolute=True)  # just "/"
        steps = [self.parse_step(descendant=double)]
        while True:
            token = self.peek()
            if token is None or token[0] not in ("slash", "dslash"):
                break
            double = token[0] == "dslash"
            self.take()
            steps.append(self.parse_step(descendant=double))
        return LocationPath(steps=tuple(steps), absolute=absolute)

    def parse_step(self, descendant: bool) -> Step:  # repro-lint: allow-recursion (nesting capped in parse_predicate_expr)
        axis: Optional[Axis] = None
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(f"unexpected end of expression: {self.text!r}")
        # explicit axis?
        if token[0] == "name" and self.peek(1) is not None and self.peek(1)[0] == "axis_sep":
            if descendant:
                raise QuerySyntaxError("'//' before an explicit axis is not supported")
            axis_name = self.take("name")[1]
            axis = AXES_BY_NAME.get(axis_name)
            if axis is None:
                raise QuerySyntaxError(f"unknown axis {axis_name!r} in {self.text!r}")
            self.take("axis_sep")
        node_test = self.parse_node_test(axis)
        if axis is None:
            if node_test.kind is NodeTestKind.ATTRIBUTE:
                # attributes are modelled as children, so "//@x" is just
                # the descendant axis with an attribute node test
                axis = Axis.DESCENDANT if descendant else Axis.ATTRIBUTE
            else:
                axis = Axis.DESCENDANT if descendant else Axis.CHILD
        predicates = []
        while self.peek() is not None and self.peek()[0] == "lbracket":
            self.take("lbracket")
            predicates.append(Predicate(self.parse_predicate_expr()))
            self.take("rbracket")
        return Step(axis=axis, node_test=node_test, predicates=tuple(predicates))

    def parse_node_test(self, axis: Optional[Axis]) -> NodeTest:
        token = self.take()
        if token[0] == "at":
            token = self.take()
            if token[0] == "star":
                return NodeTest(NodeTestKind.ATTRIBUTE, STAR)
            if token[0] == "name":
                return NodeTest(NodeTestKind.ATTRIBUTE, token[1])
            raise QuerySyntaxError(f"expected attribute name after '@' in {self.text!r}")
        if token[0] == "star":
            kind = (
                NodeTestKind.ATTRIBUTE if axis is Axis.ATTRIBUTE else NodeTestKind.ELEMENT
            )
            return NodeTest(kind, STAR)
        if token[0] == "name":
            name = token[1]
            # text() / node() kind tests
            if (
                self.peek() is not None
                and self.peek()[0] == "lparen"
                and name in ("text", "node")
            ):
                self.take("lparen")
                self.take("rparen")
                return NodeTest(
                    NodeTestKind.TEXT if name == "text" else NodeTestKind.ANY
                )
            kind = (
                NodeTestKind.ATTRIBUTE if axis is Axis.ATTRIBUTE else NodeTestKind.ELEMENT
            )
            return NodeTest(kind, name)
        raise QuerySyntaxError(f"expected node test, found {token[1]!r}")

    # predicate bodies ---------------------------------------------------

    def parse_predicate_expr(self) -> PredicateExpr:  # repro-lint: allow-recursion (enforces MAX_NESTING)
        self.nesting += 1
        try:
            return self._parse_predicate_expr_inner()
        finally:
            self.nesting -= 1

    def _parse_predicate_expr_inner(self) -> PredicateExpr:  # repro-lint: allow-recursion (guarded by MAX_NESTING above)
        if self.nesting > MAX_NESTING:
            raise QuerySyntaxError(
                f"expression nests more than {MAX_NESTING} predicate levels: {self.text!r}"
            )
        token = self.peek()
        if token is not None and token[0] == "number":
            self.take()
            return Position(int(token[1]))
        if (
            token is not None
            and token[0] == "name"
            and token[1] == "last"
            and self.peek(1) is not None
            and self.peek(1)[0] == "lparen"
        ):
            self.take()
            self.take("lparen")
            self.take("rparen")
            return Position(-1)
        return self.parse_or()

    def parse_or(self) -> PredicateExpr:  # repro-lint: allow-recursion (nesting capped in parse_predicate_expr)
        operands = [self.parse_and()]
        while self._keyword("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("or", tuple(operands))

    def parse_and(self) -> PredicateExpr:  # repro-lint: allow-recursion (nesting capped in parse_predicate_expr)
        operands = [self.parse_comparison()]
        while self._keyword("and"):
            operands.append(self.parse_comparison())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("and", tuple(operands))

    def parse_comparison(self) -> PredicateExpr:  # repro-lint: allow-recursion (nesting capped in parse_predicate_expr)
        path = self.parse_path()
        token = self.peek()
        if token is not None and token[0] in ("eq", "neq"):
            op = "=" if token[0] == "eq" else "!="
            self.take()
            literal = self.take("literal")[1]
            return Comparison(path=path, op=op, literal=literal[1:-1])
        return path

    def _keyword(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "name" and token[1] == word:
            # don't swallow "or"/"and" when used as an element name at the
            # start of a predicate — only treat as keyword between
            # expressions, which is exactly where this helper is called.
            self.take()
            return True
        return False


def parse_xpath(text: str) -> LocationPath:
    """Parse an expression of the supported XPath subset."""
    parser = _Parser(text)
    path = parser.parse_path()
    if parser.peek() is not None:
        raise QuerySyntaxError(
            f"trailing tokens after position {parser.pos} in {text!r}"
        )
    if not path.steps and not path.absolute:
        raise QuerySyntaxError("empty expression")
    return path
