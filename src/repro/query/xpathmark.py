"""The XPathMark queries used in the paper's Table 3 (Franceschet 2005).

Queries Q1–Q7 of the XPathMark-A functional suite, together with the
paper's measured Natix query times (seconds) on the KM and EKM layouts of
an XMark scale-0.1 document. The paper's headline: EKM wins on all seven,
in some cases by more than 2×.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class XPathMarkQuery:
    qid: str
    xpath: str
    paper_km_seconds: float
    paper_ekm_seconds: float

    @property
    def paper_speedup(self) -> float:
        return self.paper_km_seconds / self.paper_ekm_seconds


XPATHMARK_QUERIES: tuple[XPathMarkQuery, ...] = (
    XPathMarkQuery("Q1", "/site/regions/*/item", 0.065, 0.036),
    XPathMarkQuery(
        "Q2",
        "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword",
        0.033,
        0.023,
    ),
    XPathMarkQuery("Q3", "//keyword", 0.770, 0.595),
    XPathMarkQuery(
        "Q4",
        "/descendant-or-self::listitem/descendant-or-self::keyword",
        0.344,
        0.262,
    ),
    XPathMarkQuery(
        "Q5",
        "/site/regions/*/item[parent::namerica or parent::samerica]",
        0.150,
        0.074,
    ),
    XPathMarkQuery("Q6", "//keyword/ancestor::listitem", 0.870, 0.650),
    XPathMarkQuery("Q7", "//keyword/ancestor-or-self::mail", 0.854, 0.607),
)

#: Further XPathMark-A queries our extended engine supports (attributes,
#: positions, comparisons). The paper's Table 3 stops at Q7; these cover
#: the same document and are exercised by tests and the extended bench.
EXTENDED_QUERIES: tuple[tuple[str, str], ...] = (
    ("E1", '/site/people/person[@id = "person0"]/name'),
    ("E2", "/site/open_auctions/open_auction/bidder[1]/increase"),
    ("E3", "/site/open_auctions/open_auction[bidder]/initial"),
    ("E4", "//person[profile/@income]/name"),
    ("E5", "/site/regions/*/item[mailbox/mail]/name"),
    ("E6", "/site/closed_auctions/closed_auction[annotation/description/parlist]/price"),
    ("E7", "//item/description//keyword"),
    ("E8", "/site/categories/category/name/text()"),
)
