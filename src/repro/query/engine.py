"""Evaluation of the XPath subset over a document store.

Navigation-based, like Natix' query processor for these simple location
paths: context node sets are expanded axis by axis through
:class:`~repro.storage.store.StoredNode` hops (first-child /
next-sibling / parent), so the store's cost counters directly reflect the
work a navigational evaluator performs on the chosen partitioning.

Results are duplicate-free and in document order. Supported beyond the
paper's Table 3 needs: the attribute axis (attributes are modelled as
leading children of their element), ``text()``/``node()`` kind tests,
positional predicates (``[2]``, ``[last()]``) and string-value
comparisons (``[@id = "x"]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.errors import QueryEvaluationError
from repro.query.ast import (
    Axis,
    BooleanExpr,
    Comparison,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Position,
    Predicate,
    PredicateExpr,
    STAR,
    Step,
)
from repro.query.parser import parse_xpath
from repro.storage.constants import StorageConfig
from repro.storage.store import DocumentStore, StoredNode
from repro.tree.node import NodeKind


def _matches(node: StoredNode, test: NodeTest) -> bool:
    if test.kind is NodeTestKind.ANY:
        return True
    if test.kind is NodeTestKind.TEXT:
        return node.kind is NodeKind.TEXT
    if test.kind is NodeTestKind.ATTRIBUTE:
        return node.kind is NodeKind.ATTRIBUTE and (
            test.name == STAR or node.label == test.name
        )
    return node.is_element() and (test.name == STAR or node.label == test.name)


def _axis_nodes(context: StoredNode, axis: Axis):
    """Generate the axis population for one context node (all hops are
    charged by StoredNode). Order is proximity order for reverse axes,
    document order otherwise."""
    if axis is Axis.CHILD:
        yield from context.children()
    elif axis is Axis.ATTRIBUTE:
        # attributes are the leading children of an element
        for child in context.children():
            if child.kind is not NodeKind.ATTRIBUTE:
                break
            yield child
    elif axis is Axis.SELF:
        yield context
    elif axis is Axis.DESCENDANT:
        walker = context.descendants_or_self()
        next(walker)  # drop self
        yield from walker
    elif axis is Axis.DESCENDANT_OR_SELF:
        yield from context.descendants_or_self()
    elif axis is Axis.PARENT:
        parent = context.parent()
        if parent is not None:
            yield parent
    elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        if axis is Axis.ANCESTOR_OR_SELF:
            yield context
        node = context.parent()
        while node is not None:
            yield node
            node = node.parent()
    elif axis is Axis.FOLLOWING_SIBLING:
        node = context.next_sibling()
        while node is not None:
            yield node
            node = node.next_sibling()
    elif axis is Axis.PRECEDING_SIBLING:
        node = context.prev_sibling()
        while node is not None:
            yield node
            node = node.prev_sibling()
    else:  # pragma: no cover - exhaustive enum
        raise QueryEvaluationError(f"unsupported axis {axis}")


# ---------------------------------------------------------------------------
# Window-based axis evaluation over the structural index.
#
# When a store carries a valid repro.index.StructuralIndex, every axis
# step is answered from typed pre/post/level columns instead of
# navigation: descendant axes become one preorder window (a bisect over
# per-label postings when the test names an element), ancestor axes a
# parent-column chase, child/sibling/attribute axes CSR slices. Cost
# accounting switches units accordingly — a window step charges one
# buffer fetch per partition whose pre/post window overlaps the query
# window (everything else is *pruned*, counted in
# NavigationStats.partitions_pruned) rather than per-hop intra/cross
# steps. Results are bit-identical to navigation by construction (the
# per-context orders below mirror _axis_nodes exactly — the equivalence
# suite in tests/index pins this); any context the index cannot serve
# (absent or invalidated index) falls back to _axis_nodes, counted as
# index.fallbacks.
# ---------------------------------------------------------------------------

_KIND_ELEMENT = int(NodeKind.ELEMENT)
_KIND_TEXT = int(NodeKind.TEXT)
_KIND_ATTRIBUTE = int(NodeKind.ATTRIBUTE)


def _usable_index(store):
    """The store's structural index, if present and valid (else None —
    with the invalid case counted as a fallback)."""
    index = getattr(store, "structural_index", None)
    if index is None:
        return None
    if not index.valid:
        if telemetry.enabled():
            telemetry.count("index.fallbacks")
        return None
    return index


def _filter_ids(index, ids, test: NodeTest) -> list[int]:
    """Column-wise node-test filter: mirrors `_matches` over the index's
    kind/label columns without materializing handles."""
    if test.kind is NodeTestKind.ANY:
        return list(ids)
    kind_of = index.kind_of
    if test.kind is NodeTestKind.TEXT:
        return [i for i in ids if kind_of[i] == _KIND_TEXT]
    if test.kind is NodeTestKind.ATTRIBUTE:
        if test.name == STAR:
            return [i for i in ids if kind_of[i] == _KIND_ATTRIBUTE]
        lid = index.label_id(test.name)
        if lid is None:
            return []
        label_of = index.label_id_of
        return [
            i
            for i in ids
            if kind_of[i] == _KIND_ATTRIBUTE and label_of[i] == lid
        ]
    if test.name == STAR:
        return [i for i in ids if kind_of[i] == _KIND_ELEMENT]
    lid = index.label_id(test.name)
    if lid is None:
        return []
    label_of = index.label_id_of
    return [i for i in ids if kind_of[i] == _KIND_ELEMENT and label_of[i] == lid]


def _window_test_ids(index, window: tuple[int, int], test: NodeTest) -> list[int]:
    """Matching ids inside a preorder window, document order. A named
    element test bisects the label's sorted postings (the accelerator
    fast path); other tests scan the window's node_at slice."""
    lo, hi = window
    if hi <= lo:
        return []
    if test.kind is NodeTestKind.ELEMENT and test.name != STAR:
        lid = index.label_id(test.name)
        if lid is None:
            return []
        return index.label_ids_in_window(lid, lo, hi)
    return _filter_ids(index, index.ids_in_window(lo, hi), test)


def _handle_factory(proto):
    """Builds node handles of the same flavour as ``proto`` (tree-backed
    StoredNode or record-backed RecordNode) from bare node ids."""
    nav = getattr(proto, "navigator", None)
    cls = type(proto)
    if nav is not None:
        return lambda nid: cls(nav, nid)
    store = proto.store
    nodes = store.tree.nodes
    return lambda nid: cls(store, nodes[nid])


def _charge_window(context, store, index, window, ancestor_key, ids) -> None:
    """Charge one window-evaluated step to the navigation cost model:
    a buffer fetch per partition the step must decode (window-overlap
    set for range axes, the result partitions for point axes); skipped
    partitions count as pruned."""
    nav = getattr(context, "navigator", None)
    stats = nav.stats if nav is not None else store.stats
    stats.window_steps += 1
    stats.node_visits += len(ids)
    if window is not None:
        lo, hi = window
        rids = index.records_overlapping(lo, hi - 1)
        stats.partitions_pruned += index.record_count - len(rids)
    elif ancestor_key is not None:
        pre, post, or_self = ancestor_key
        rids = index.records_for_ancestors(pre, post, or_self)
        stats.partitions_pruned += index.record_count - len(rids)
    elif ids:
        record_of = store.record_of
        rids = {record_of[i] for i in ids}
    else:
        return
    page_of_record = store.manager.page_of_record
    buffer = store.buffer
    faults = 0
    pages = {page_of_record[rid] for rid in rids if rid in page_of_record}
    for page_id in pages:
        if not buffer.is_cached(page_id):
            faults += 1
        buffer.fetch(page_id)
    stats.page_faults += faults


def _window_step(context, step: Step):
    """Answer one (context, step) from the structural index; None means
    "no usable index here — navigate"."""
    if isinstance(context, _VirtualRoot):
        return _window_step_virtual(context, step)
    store = getattr(context, "store", None)
    if store is None:
        return None
    index = _usable_index(store)
    if index is None:
        return None
    axis = step.axis
    test = step.node_test
    nid = context.node_id
    window = None
    ancestor_key = None
    if axis is Axis.CHILD:
        ids = _filter_ids(index, index.children_of(nid), test)
    elif axis is Axis.ATTRIBUTE:
        ids = _filter_ids(index, index.attributes_of(nid), test)
    elif axis is Axis.SELF:
        ids = _filter_ids(index, (nid,), test)
    elif axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
        window = index.descendant_window(nid, axis is Axis.DESCENDANT_OR_SELF)
        ids = _window_test_ids(index, window, test)
    elif axis is Axis.PARENT:
        pid = index.parent_id(nid)
        ids = _filter_ids(index, (pid,), test) if pid >= 0 else []
    elif axis is Axis.ANCESTOR or axis is Axis.ANCESTOR_OR_SELF:
        or_self = axis is Axis.ANCESTOR_OR_SELF
        ancestor_key = (index.pre_of[nid], index.post_of[nid], or_self)
        ids = _filter_ids(index, index.ancestor_ids(nid, or_self), test)
    elif axis is Axis.FOLLOWING_SIBLING:
        ids = _filter_ids(index, index.following_siblings(nid), test)
    elif axis is Axis.PRECEDING_SIBLING:
        ids = _filter_ids(index, index.preceding_siblings(nid), test)
    else:  # pragma: no cover - exhaustive enum
        return None
    _charge_window(context, store, index, window, ancestor_key, ids)
    if not ids:
        return []
    make = _handle_factory(context)
    return [make(i) for i in ids]


def _window_step_virtual(context: "_VirtualRoot", step: Step):
    """Window evaluation from the XPath virtual root. Mirrors
    _VirtualRoot's navigation behaviour exactly, including yielding the
    virtual-root object itself where descendants-or-self / self /
    ancestor-or-self would (it stands in for the document element in
    dedup, so both paths must agree)."""
    store = context.store
    index = _usable_index(store)
    if index is None:
        return None
    axis = step.axis
    test = step.node_test
    doc_root = context._doc_root
    if axis is Axis.CHILD:
        # children() yields the document element without a charged hop
        return [doc_root] if _filter_ids(index, (doc_root.node_id,), test) else []
    if axis is Axis.SELF or axis is Axis.ANCESTOR_OR_SELF:
        return [context] if _matches(context, test) else []
    if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
        window = (0, index.node_count)
        ids = _window_test_ids(index, window, test)
        _charge_window(context, store, index, window, None, ids)
        make = _handle_factory(doc_root)
        out = [make(i) for i in ids]
        if axis is Axis.DESCENDANT_OR_SELF and _matches(context, test):
            out.insert(0, context)
        return out
    # attribute/parent/ancestor/sibling axes of the root are empty
    return []
#
# Location paths and predicate expressions nest mutually: a step's
# predicate may contain a comparison whose operand is another path, whose
# steps carry further predicates, and so on. Written as plain functions
# that shape is mutual recursion whose depth tracks the *query*, so a
# hostile or generated expression could exhaust the interpreter stack.
# Instead, each evaluation routine below is a generator "task" that
# `yield`s the sub-task it needs a result from; `_run` drives the task
# tree with an explicit stack. Yielding a freshly created generator only
# instantiates it — no Python frame is pushed until `_run` decides to —
# so evaluation depth is bounded by heap, not by the C stack.
# (`repro-lint` recognizes this pattern: a call that is the immediate
# operand of a `yield` inside a generator is stack-safe by construction.)
# ---------------------------------------------------------------------------


def _run(task):
    """Drive a task tree to completion with an explicit frame stack."""
    stack = [task]
    value = None
    while stack:
        try:
            sub = stack[-1].send(value)
        except StopIteration as stop:
            stack.pop()
            value = stop.value
        else:
            stack.append(sub)
            value = None
    return value


def _apply_step_task(contexts: list[StoredNode], step: Step):
    seen: set[int] = set()
    out: list[StoredNode] = []
    boolean_preds = [
        p for p in step.predicates if not isinstance(p.expr, Position)
    ]
    position_preds = [
        p.expr for p in step.predicates if isinstance(p.expr, Position)
    ]
    for context in contexts:
        # window evaluation when the store carries a valid structural
        # index; hop-by-hop navigation otherwise (bit-identical results)
        matched = _window_step(context, step)
        if matched is None:
            matched = [
                node
                for node in _axis_nodes(context, step.axis)
                if _matches(node, step.node_test)
            ]
        # positional predicates filter within this context's axis result
        for position in position_preds:
            index = position.index if position.index != -1 else len(matched)
            matched = [matched[index - 1]] if 1 <= index <= len(matched) else []
        for node in matched:
            if node.node_id in seen:
                continue
            holds = True
            for pred in boolean_preds:
                holds = yield _expr_holds_task(node, pred.expr)
                if not holds:
                    break
            if holds:
                seen.add(node.node_id)
                out.append(node)
    out.sort(key=lambda n: n.store.order_rank(n.node_id))  # document order
    return out


def _apply_step(contexts: list[StoredNode], step: Step) -> list[StoredNode]:
    return _run(_apply_step_task(contexts, step))


def string_value(node: StoredNode) -> str:
    """XPath string-value: own content for text/attribute nodes, the
    concatenation of descendant text for elements."""
    if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
        return node.content or ""
    parts = []
    for descendant in node.descendants_or_self():
        if descendant.kind is NodeKind.TEXT:
            parts.append(descendant.content or "")
    return "".join(parts)


def _predicate_holds(node: StoredNode, predicate: Predicate) -> bool:
    return _run(_expr_holds_task(node, predicate.expr))


def _expr_holds_task(node: StoredNode, expr: PredicateExpr):
    if isinstance(expr, BooleanExpr):
        for operand in expr.operands:
            holds = yield _expr_holds_task(node, operand)
            if expr.op == "or" and holds:
                return True
            if expr.op != "or" and not holds:
                return False
        return expr.op != "or"
    if isinstance(expr, Comparison):
        selected = yield _evaluate_path_task([node], expr.path, _source_of(node))
        values = (string_value(n) for n in selected)
        if expr.op == "=":
            return any(v == expr.literal for v in values)
        return any(v != expr.literal for v in values)
    if isinstance(expr, LocationPath):
        return bool((yield _evaluate_path_task([node], expr, _source_of(node))))
    raise QueryEvaluationError(f"unsupported predicate expression {expr!r}")


def _expr_holds(node: StoredNode, expr: PredicateExpr) -> bool:
    return _run(_expr_holds_task(node, expr))


def _source_of(node):
    """The navigator that produced a node handle (for absolute sub-paths)."""
    return getattr(node, "navigator", None) or node.store


def _evaluate_path_task(contexts: list[StoredNode], path: LocationPath, source):
    if path.absolute:
        root = source.root()
        store = getattr(source, "store", source)
        contexts = [_VirtualRoot(store, root)]  # type: ignore[list-item]
    current = contexts
    for step in path.steps:
        if not current:
            return []
        current = yield _apply_step_task(current, step)
    # A bare "/" selects the virtual root; report the document element.
    if path.absolute and not path.steps:
        return [source.root()]
    return current


def _evaluate_path(
    contexts: list[StoredNode], path: LocationPath, source
) -> list[StoredNode]:
    return _run(_evaluate_path_task(contexts, path, source))


class _VirtualRoot:
    """The XPath root node: parent of the document element.

    Duck-typed so it wraps either navigator's node handles (tree-backed
    :class:`StoredNode` or record-backed
    :class:`~repro.storage.navigator.RecordNode`).
    """

    __slots__ = ("store", "node_id", "_doc_root")

    def __init__(self, store: DocumentStore, doc_root):
        self.store = store
        self.node_id = doc_root.node_id
        self._doc_root = doc_root

    @property
    def kind(self) -> NodeKind:
        return NodeKind.OTHER

    def is_element(self) -> bool:
        return False

    def parent(self):
        return None

    def first_child(self):
        return self._doc_root

    def next_sibling(self):
        return None

    def prev_sibling(self):
        return None

    def children(self):
        yield self._doc_root

    def descendants_or_self(self):
        yield self
        yield from self._doc_root.descendants_or_self()


@dataclass(frozen=True)
class QueryRun:
    """Outcome of one measured query execution."""

    xpath: str
    result_count: int
    intra_steps: int
    cross_steps: int
    page_faults: int
    cost: float
    #: axis steps the structural index answered by window lookup
    window_steps: int = 0
    #: partitions those window steps skipped (window non-overlap)
    partitions_pruned: int = 0

    @property
    def total_steps(self) -> int:
        return self.intra_steps + self.cross_steps

    @property
    def cross_ratio(self) -> float:
        return self.cross_steps / self.total_steps if self.total_steps else 0.0


def evaluate(source, xpath: str) -> list[StoredNode]:
    """Evaluate an expression; returns matching nodes in document order.

    ``source`` is a :class:`DocumentStore` or any navigator exposing the
    same ``root()`` handle protocol (e.g.
    :class:`~repro.storage.navigator.RecordNavigator` for fully
    record-backed evaluation).
    """
    path = parse_xpath(xpath)
    return _evaluate_path([source.root()], path, source)


def run_query(
    store: DocumentStore, xpath: str, config: StorageConfig | None = None
) -> QueryRun:
    """Evaluate with fresh counters and return the measured
    :class:`QueryRun` (buffer content is left warm across runs, matching
    the paper's protocol)."""
    config = config or store.config
    store.stats.reset()
    with telemetry.span("query.run", xpath=xpath) as sp:
        results = evaluate(store, xpath)
        sp.attrs["results"] = len(results)
    stats = store.stats
    drain = store.heat_drain
    if drain is not None:
        drain()  # fold this query's buffered hops into the heat tallies
    if telemetry.enabled():
        telemetry.count("query.runs")
        telemetry.count("query.results", len(results))
        telemetry.count("query.nodes_visited", stats.node_visits)
        telemetry.count("query.steps.intra", stats.intra_steps)
        telemetry.count("query.steps.cross", stats.cross_steps)
        telemetry.count("query.page_faults", stats.page_faults)
        if stats.window_steps:
            telemetry.count("index.window_hits", stats.window_steps)
            if stats.partitions_pruned:
                telemetry.count(
                    "index.partitions_pruned", stats.partitions_pruned
                )
    return QueryRun(
        xpath=xpath,
        result_count=len(results),
        intra_steps=stats.intra_steps,
        cross_steps=stats.cross_steps,
        page_faults=stats.page_faults,
        cost=stats.cost(config),
        window_steps=stats.window_steps,
        partitions_pruned=stats.partitions_pruned,
    )
