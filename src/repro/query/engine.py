"""Evaluation of the XPath subset over a document store.

Navigation-based, like Natix' query processor for these simple location
paths: context node sets are expanded axis by axis through
:class:`~repro.storage.store.StoredNode` hops (first-child /
next-sibling / parent), so the store's cost counters directly reflect the
work a navigational evaluator performs on the chosen partitioning.

Results are duplicate-free and in document order. Supported beyond the
paper's Table 3 needs: the attribute axis (attributes are modelled as
leading children of their element), ``text()``/``node()`` kind tests,
positional predicates (``[2]``, ``[last()]``) and string-value
comparisons (``[@id = "x"]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.errors import QueryEvaluationError
from repro.query.ast import (
    Axis,
    BooleanExpr,
    Comparison,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Position,
    Predicate,
    PredicateExpr,
    STAR,
    Step,
)
from repro.query.parser import parse_xpath
from repro.storage.constants import StorageConfig
from repro.storage.store import DocumentStore, StoredNode
from repro.tree.node import NodeKind


def _matches(node: StoredNode, test: NodeTest) -> bool:
    if test.kind is NodeTestKind.ANY:
        return True
    if test.kind is NodeTestKind.TEXT:
        return node.kind is NodeKind.TEXT
    if test.kind is NodeTestKind.ATTRIBUTE:
        return node.kind is NodeKind.ATTRIBUTE and (
            test.name == STAR or node.label == test.name
        )
    return node.is_element() and (test.name == STAR or node.label == test.name)


def _axis_nodes(context: StoredNode, axis: Axis):
    """Generate the axis population for one context node (all hops are
    charged by StoredNode). Order is proximity order for reverse axes,
    document order otherwise."""
    if axis is Axis.CHILD:
        yield from context.children()
    elif axis is Axis.ATTRIBUTE:
        # attributes are the leading children of an element
        for child in context.children():
            if child.kind is not NodeKind.ATTRIBUTE:
                break
            yield child
    elif axis is Axis.SELF:
        yield context
    elif axis is Axis.DESCENDANT:
        walker = context.descendants_or_self()
        next(walker)  # drop self
        yield from walker
    elif axis is Axis.DESCENDANT_OR_SELF:
        yield from context.descendants_or_self()
    elif axis is Axis.PARENT:
        parent = context.parent()
        if parent is not None:
            yield parent
    elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        if axis is Axis.ANCESTOR_OR_SELF:
            yield context
        node = context.parent()
        while node is not None:
            yield node
            node = node.parent()
    elif axis is Axis.FOLLOWING_SIBLING:
        node = context.next_sibling()
        while node is not None:
            yield node
            node = node.next_sibling()
    elif axis is Axis.PRECEDING_SIBLING:
        node = context.prev_sibling()
        while node is not None:
            yield node
            node = node.prev_sibling()
    else:  # pragma: no cover - exhaustive enum
        raise QueryEvaluationError(f"unsupported axis {axis}")


# ---------------------------------------------------------------------------
# Trampolined evaluation core.
#
# Location paths and predicate expressions nest mutually: a step's
# predicate may contain a comparison whose operand is another path, whose
# steps carry further predicates, and so on. Written as plain functions
# that shape is mutual recursion whose depth tracks the *query*, so a
# hostile or generated expression could exhaust the interpreter stack.
# Instead, each evaluation routine below is a generator "task" that
# `yield`s the sub-task it needs a result from; `_run` drives the task
# tree with an explicit stack. Yielding a freshly created generator only
# instantiates it — no Python frame is pushed until `_run` decides to —
# so evaluation depth is bounded by heap, not by the C stack.
# (`repro-lint` recognizes this pattern: a call that is the immediate
# operand of a `yield` inside a generator is stack-safe by construction.)
# ---------------------------------------------------------------------------


def _run(task):
    """Drive a task tree to completion with an explicit frame stack."""
    stack = [task]
    value = None
    while stack:
        try:
            sub = stack[-1].send(value)
        except StopIteration as stop:
            stack.pop()
            value = stop.value
        else:
            stack.append(sub)
            value = None
    return value


def _apply_step_task(contexts: list[StoredNode], step: Step):
    seen: set[int] = set()
    out: list[StoredNode] = []
    boolean_preds = [
        p for p in step.predicates if not isinstance(p.expr, Position)
    ]
    position_preds = [
        p.expr for p in step.predicates if isinstance(p.expr, Position)
    ]
    for context in contexts:
        matched = [
            node
            for node in _axis_nodes(context, step.axis)
            if _matches(node, step.node_test)
        ]
        # positional predicates filter within this context's axis result
        for position in position_preds:
            index = position.index if position.index != -1 else len(matched)
            matched = [matched[index - 1]] if 1 <= index <= len(matched) else []
        for node in matched:
            if node.node_id in seen:
                continue
            holds = True
            for pred in boolean_preds:
                holds = yield _expr_holds_task(node, pred.expr)
                if not holds:
                    break
            if holds:
                seen.add(node.node_id)
                out.append(node)
    out.sort(key=lambda n: n.store.order_rank(n.node_id))  # document order
    return out


def _apply_step(contexts: list[StoredNode], step: Step) -> list[StoredNode]:
    return _run(_apply_step_task(contexts, step))


def string_value(node: StoredNode) -> str:
    """XPath string-value: own content for text/attribute nodes, the
    concatenation of descendant text for elements."""
    if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
        return node.content or ""
    parts = []
    for descendant in node.descendants_or_self():
        if descendant.kind is NodeKind.TEXT:
            parts.append(descendant.content or "")
    return "".join(parts)


def _predicate_holds(node: StoredNode, predicate: Predicate) -> bool:
    return _run(_expr_holds_task(node, predicate.expr))


def _expr_holds_task(node: StoredNode, expr: PredicateExpr):
    if isinstance(expr, BooleanExpr):
        for operand in expr.operands:
            holds = yield _expr_holds_task(node, operand)
            if expr.op == "or" and holds:
                return True
            if expr.op != "or" and not holds:
                return False
        return expr.op != "or"
    if isinstance(expr, Comparison):
        selected = yield _evaluate_path_task([node], expr.path, _source_of(node))
        values = (string_value(n) for n in selected)
        if expr.op == "=":
            return any(v == expr.literal for v in values)
        return any(v != expr.literal for v in values)
    if isinstance(expr, LocationPath):
        return bool((yield _evaluate_path_task([node], expr, _source_of(node))))
    raise QueryEvaluationError(f"unsupported predicate expression {expr!r}")


def _expr_holds(node: StoredNode, expr: PredicateExpr) -> bool:
    return _run(_expr_holds_task(node, expr))


def _source_of(node):
    """The navigator that produced a node handle (for absolute sub-paths)."""
    return getattr(node, "navigator", None) or node.store


def _evaluate_path_task(contexts: list[StoredNode], path: LocationPath, source):
    if path.absolute:
        root = source.root()
        store = getattr(source, "store", source)
        contexts = [_VirtualRoot(store, root)]  # type: ignore[list-item]
    current = contexts
    for step in path.steps:
        if not current:
            return []
        current = yield _apply_step_task(current, step)
    # A bare "/" selects the virtual root; report the document element.
    if path.absolute and not path.steps:
        return [source.root()]
    return current


def _evaluate_path(
    contexts: list[StoredNode], path: LocationPath, source
) -> list[StoredNode]:
    return _run(_evaluate_path_task(contexts, path, source))


class _VirtualRoot:
    """The XPath root node: parent of the document element.

    Duck-typed so it wraps either navigator's node handles (tree-backed
    :class:`StoredNode` or record-backed
    :class:`~repro.storage.navigator.RecordNode`).
    """

    __slots__ = ("store", "node_id", "_doc_root")

    def __init__(self, store: DocumentStore, doc_root):
        self.store = store
        self.node_id = doc_root.node_id
        self._doc_root = doc_root

    @property
    def kind(self) -> NodeKind:
        return NodeKind.OTHER

    def is_element(self) -> bool:
        return False

    def parent(self):
        return None

    def first_child(self):
        return self._doc_root

    def next_sibling(self):
        return None

    def prev_sibling(self):
        return None

    def children(self):
        yield self._doc_root

    def descendants_or_self(self):
        yield self
        yield from self._doc_root.descendants_or_self()


@dataclass(frozen=True)
class QueryRun:
    """Outcome of one measured query execution."""

    xpath: str
    result_count: int
    intra_steps: int
    cross_steps: int
    page_faults: int
    cost: float

    @property
    def total_steps(self) -> int:
        return self.intra_steps + self.cross_steps

    @property
    def cross_ratio(self) -> float:
        return self.cross_steps / self.total_steps if self.total_steps else 0.0


def evaluate(source, xpath: str) -> list[StoredNode]:
    """Evaluate an expression; returns matching nodes in document order.

    ``source`` is a :class:`DocumentStore` or any navigator exposing the
    same ``root()`` handle protocol (e.g.
    :class:`~repro.storage.navigator.RecordNavigator` for fully
    record-backed evaluation).
    """
    path = parse_xpath(xpath)
    return _evaluate_path([source.root()], path, source)


def run_query(
    store: DocumentStore, xpath: str, config: StorageConfig | None = None
) -> QueryRun:
    """Evaluate with fresh counters and return the measured
    :class:`QueryRun` (buffer content is left warm across runs, matching
    the paper's protocol)."""
    config = config or store.config
    store.stats.reset()
    with telemetry.span("query.run", xpath=xpath) as sp:
        results = evaluate(store, xpath)
        sp.attrs["results"] = len(results)
    stats = store.stats
    if telemetry.enabled():
        telemetry.count("query.runs")
        telemetry.count("query.results", len(results))
        telemetry.count("query.nodes_visited", stats.node_visits)
        telemetry.count("query.steps.intra", stats.intra_steps)
        telemetry.count("query.steps.cross", stats.cross_steps)
        telemetry.count("query.page_faults", stats.page_faults)
    return QueryRun(
        xpath=xpath,
        result_count=len(results),
        intra_steps=stats.intra_steps,
        cross_steps=stats.cross_steps,
        page_faults=stats.page_faults,
        cost=stats.cost(config),
    )
