"""Abstract syntax for the XPath subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


class Axis(enum.Enum):
    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    SELF = "self"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    ATTRIBUTE = "attribute"


AXES_BY_NAME = {axis.value: axis for axis in Axis}

#: wildcard node test
STAR = "*"


class NodeTestKind(enum.Enum):
    """What a step's node test selects."""

    ELEMENT = "element"  # named element or *
    ATTRIBUTE = "attribute"  # named attribute or @*
    TEXT = "text"  # text()
    ANY = "any"  # node()


@dataclass(frozen=True)
class NodeTest:
    kind: NodeTestKind
    name: str = STAR  # element/attribute name, or * for wildcards

    def __str__(self) -> str:
        if self.kind is NodeTestKind.TEXT:
            return "text()"
        if self.kind is NodeTestKind.ANY:
            return "node()"
        prefix = "@" if self.kind is NodeTestKind.ATTRIBUTE else ""
        return prefix + self.name


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::nodetest[predicate]*``."""

    axis: Axis
    node_test: NodeTest
    predicates: tuple["Predicate", ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis.value}::{self.node_test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A (possibly absolute) chain of steps."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        sep = "/" if self.absolute else ""
        return sep + "/".join(str(s) for s in self.steps)


@dataclass(frozen=True)
class BooleanExpr:
    """``or``/``and`` combination of predicate expressions."""

    op: str  # "or" | "and"
    operands: tuple["PredicateExpr", ...]

    def __str__(self) -> str:
        return f" {self.op} ".join(str(o) for o in self.operands)


@dataclass(frozen=True)
class Comparison:
    """``path = "literal"`` — string-value equality (or ``!=``)."""

    path: LocationPath
    op: str  # "=" | "!="
    literal: str

    def __str__(self) -> str:
        return f'{self.path} {self.op} "{self.literal}"'


@dataclass(frozen=True)
class Position:
    """A numeric predicate ``[n]`` or ``[last()]``."""

    index: int  # 1-based; -1 means last()

    def __str__(self) -> str:
        return "last()" if self.index == -1 else str(self.index)


PredicateExpr = Union[LocationPath, BooleanExpr, Comparison, Position]


@dataclass(frozen=True)
class Predicate:
    """A bracketed filter.

    Path / boolean / comparison predicates are truthy per context node;
    :class:`Position` predicates filter by proximity position within the
    step's axis result.
    """

    expr: PredicateExpr = field()

    def __str__(self) -> str:
        return str(self.expr)
