"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses mark the subsystem that raised them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TreeError(ReproError):
    """Structural problem with a tree (cycle, foreign node, bad order)."""


class InfeasiblePartitioningError(ReproError):
    """No feasible partitioning exists for the given tree and weight limit.

    This happens exactly when some single node weighs more than the limit
    ``K``: such a node cannot be placed in any partition.
    """

    def __init__(self, message: str, node_id: int | None = None):
        super().__init__(message)
        self.node_id = node_id


class InvalidPartitioningError(ReproError):
    """A proposed partitioning violates the sibling-interval model."""


class XmlFormatError(ReproError):
    """Malformed XML input or an unsupported construct."""


class StorageError(ReproError):
    """Problem inside the storage engine (records, pages, buffer)."""


class RecordOverflowError(StorageError):
    """A partition does not fit into a single record."""


class QuerySyntaxError(ReproError):
    """The XPath subset parser rejected an expression."""


class QueryEvaluationError(ReproError):
    """Runtime failure while evaluating a query against a store."""


class ContractViolationError(ReproError):
    """A partitioning algorithm broke its invariant contract.

    Raised by :mod:`repro.analysis.contracts` in checked mode
    (``REPRO_CHECK_INVARIANTS=1`` or ``partition(..., check=True)``) when
    an algorithm emits an infeasible/invalid partitioning or mutates its
    input tree.
    """

    def __init__(self, message: str, algorithm: str | None = None):
        super().__init__(message)
        self.algorithm = algorithm
