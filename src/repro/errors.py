"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses mark the subsystem that raised them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TreeError(ReproError):
    """Structural problem with a tree (cycle, foreign node, bad order)."""


class InfeasiblePartitioningError(ReproError):
    """No feasible partitioning exists for the given tree and weight limit.

    This happens exactly when some single node weighs more than the limit
    ``K``: such a node cannot be placed in any partition.
    """

    def __init__(self, message: str, node_id: int | None = None):
        super().__init__(message)
        self.node_id = node_id


class InvalidPartitioningError(ReproError):
    """A proposed partitioning violates the sibling-interval model."""


class XmlFormatError(ReproError):
    """Malformed XML input or an unsupported construct.

    When the parser knows where the problem is, ``line`` and ``column``
    carry the 1-based position (and are embedded in the message); they
    are ``None`` for structural errors detected after parsing.
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
    ):
        if line is not None:
            position = f"line {line}"
            if column is not None:
                position += f", column {column}"
            message = f"{message} ({position})"
        super().__init__(message)
        self.line = line
        self.column = column


class StorageError(ReproError):
    """Problem inside the storage engine (records, pages, buffer)."""


class RecordOverflowError(StorageError):
    """A partition does not fit into a single record."""


class CorruptPageError(StorageError):
    """A page failed its checksum or format-version verification.

    Raised by :meth:`repro.storage.page.Page.verify` — and therefore by
    every read path that goes through the buffer pool or the record
    manager — instead of ever letting corrupted bytes decode into a
    garbage tree. Carries the page id and the expected/actual CRC32 so
    operators can tell *which* page is damaged.
    """

    def __init__(
        self,
        message: str,
        page_id: int | None = None,
        expected: int | None = None,
        actual: int | None = None,
    ):
        super().__init__(message)
        self.page_id = page_id
        self.expected = expected
        self.actual = actual


class JournalError(StorageError):
    """A bulk-load journal is unreadable, inconsistent with its source
    document, or disagrees with a deterministic replay."""


class WalError(StorageError):
    """The write-ahead log is unusable: interior corruption (a frame
    fails its CRC32 with more frames following), a frame inconsistent
    with the transaction protocol, or misuse of the log API.

    A *torn tail* — an incomplete or checksum-failing final frame — is
    **not** an error: it is the expected shape of a crash mid-append and
    is reported (and discarded) by :func:`repro.recovery.wal.read_wal`.
    """


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent store.

    Raised by :mod:`repro.recovery.manager` when the surviving pages plus
    the write-ahead log are not enough — e.g. a corrupt page holds
    records with no logged after-image, or a record fails to decode even
    after redo. Recovery never silently returns a partial store.
    """


class InjectedFaultError(StorageError):
    """A fault deliberately injected by :mod:`repro.faults`.

    Never raised in production paths unless a :class:`~repro.faults.FaultPlan`
    is armed; the fault matrix and tests catch it to distinguish planned
    crashes from real bugs.
    """

    def __init__(self, message: str, point: str | None = None):
        super().__init__(message)
        self.point = point


class QuerySyntaxError(ReproError):
    """The XPath subset parser rejected an expression."""


class QueryEvaluationError(ReproError):
    """Runtime failure while evaluating a query against a store."""


class ContractViolationError(ReproError):
    """A partitioning algorithm broke its invariant contract.

    Raised by :mod:`repro.analysis.contracts` in checked mode
    (``REPRO_CHECK_INVARIANTS=1`` or ``partition(..., check=True)``) when
    an algorithm emits an infeasible/invalid partitioning or mutates its
    input tree.
    """

    def __init__(self, message: str, algorithm: str | None = None):
        super().__init__(message)
        self.algorithm = algorithm
