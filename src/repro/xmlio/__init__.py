"""XML substrate: streaming parsing, the slot weight model, serialization.

The partitioning algorithms operate on weighted trees; this package maps
real XML documents onto that model the way the paper does (Sec. 6.1):
every node costs one metadata slot, text and attribute nodes additionally
cost slots proportional to their content length, with a slot size of
8 bytes.
"""

from repro.xmlio.events import (
    Characters,
    EndDocument,
    EndElement,
    ParseEvent,
    StartDocument,
    StartElement,
)
from repro.xmlio.parser import iter_events, parse_tree
from repro.xmlio.weights import SlotWeightModel, DEFAULT_SLOT_SIZE
from repro.xmlio.serialize import tree_to_xml, write_xml

__all__ = [
    "ParseEvent",
    "StartDocument",
    "EndDocument",
    "StartElement",
    "EndElement",
    "Characters",
    "iter_events",
    "parse_tree",
    "SlotWeightModel",
    "DEFAULT_SLOT_SIZE",
    "tree_to_xml",
    "write_xml",
]
