"""The paper's slot weight model (Sec. 6.1).

Real-world storage engines align objects on secondary storage to a slot
size; the paper reflects this by weighing nodes in 8-byte slots rather
than bytes:

* every node uses **one slot for metadata** (tag name id, node type, …);
* text and attribute nodes additionally use ``ceil(len(content)/slot)``
  slots for their content string.

With the default slot size of 8 bytes, a limit of ``K = 256`` slots
corresponds to the paper's 2 KB storage units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tree.node import NodeKind

DEFAULT_SLOT_SIZE = 8

#: Paper configuration: K = 256 slots of 8 bytes = 2 KB storage units.
PAPER_LIMIT = 256


@dataclass(frozen=True)
class SlotWeightModel:
    """Maps node kind + content to a weight in storage slots."""

    slot_size: int = DEFAULT_SLOT_SIZE
    metadata_slots: int = 1

    def content_slots(self, content: str | None) -> int:
        """Slots for a content string (UTF-8 length, slot-aligned)."""
        if not content:
            return 0
        nbytes = len(content.encode("utf-8"))
        return -(-nbytes // self.slot_size)

    def weight(self, kind: NodeKind, content: str | None = None) -> int:
        """Total weight of one node.

        Elements carry no content payload (their children do); text and
        attribute nodes pay for their string.
        """
        if kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
            return self.metadata_slots + self.content_slots(content)
        return self.metadata_slots

    def element_weight(self) -> int:
        return self.weight(NodeKind.ELEMENT)

    def text_weight(self, text: str) -> int:
        return self.weight(NodeKind.TEXT, text)

    def attribute_weight(self, value: str) -> int:
        return self.weight(NodeKind.ATTRIBUTE, value)

    def bytes_for_weight(self, weight: int) -> int:
        """Storage bytes a given weight occupies."""
        return weight * self.slot_size
