"""Serialize weighted trees back to XML text.

The dataset generators build :class:`~repro.tree.node.Tree` objects
directly; serializing them to markup and re-parsing exercises the full
parser path and lets examples work with real files. Attribute nodes are
emitted as attributes, text nodes as character data.
"""

from __future__ import annotations

import io
import os
from typing import IO, Union
from xml.sax.saxutils import escape, quoteattr

from repro.errors import XmlFormatError
from repro.tree.node import NodeKind, Tree, TreeNode


def tree_to_xml(tree: Tree, declaration: bool = True) -> str:
    """Render the tree as an XML string."""
    out = io.StringIO()
    if declaration:
        out.write('<?xml version="1.0" encoding="UTF-8"?>')
    _write_node(out, tree.root)
    return out.getvalue()


def write_xml(tree: Tree, path: Union[str, os.PathLike, IO[str]]) -> None:
    """Serialize the tree into a file (path or text stream)."""
    text = tree_to_xml(tree)
    if hasattr(path, "write"):
        path.write(text)  # type: ignore[union-attr]
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _write_node(out: io.StringIO, root: TreeNode) -> None:
    # Iterative serializer: frames are (node, child_cursor); -1 = not opened.
    stack: list[tuple[TreeNode, int]] = [(root, -1)]
    while stack:
        node, cursor = stack.pop()
        if node.kind is NodeKind.TEXT:
            out.write(escape(node.content or ""))
            continue
        if node.kind is NodeKind.ATTRIBUTE:
            raise XmlFormatError(
                f"attribute node {node.label!r} outside an element start tag"
            )
        if cursor == -1:
            out.write(f"<{node.label}")
            content_children: list[TreeNode] = []
            for child in node.children:
                if child.kind is NodeKind.ATTRIBUTE:
                    out.write(f" {child.label}={quoteattr(child.content or '')}")
                else:
                    content_children.append(child)
            if not content_children:
                out.write("/>")
                continue
            out.write(">")
            stack.append((node, 0))
            stack.append((content_children[0], -1))
            continue
        content_children = [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
        nxt = cursor + 1
        if nxt < len(content_children):
            stack.append((node, nxt))
            stack.append((content_children[nxt], -1))
        else:
            out.write(f"</{node.label}>")
