"""Streaming XML parsing and weighted-tree construction (Sec. 6.1).

:func:`iter_events` wraps :mod:`xml.parsers.expat` into a generator of
:class:`~repro.xmlio.events.ParseEvent` objects, feeding the input in
chunks so that arbitrarily large documents never have to be resident as a
whole. :func:`parse_tree` folds such an event stream into the weighted
:class:`~repro.tree.node.Tree` the partitioning algorithms consume:

* one :data:`~repro.tree.node.NodeKind.ELEMENT` node per element,
* one :data:`~repro.tree.node.NodeKind.ATTRIBUTE` node per attribute
  (placed before the element's content children, mirroring DOM order),
* one :data:`~repro.tree.node.NodeKind.TEXT` node per maximal run of
  character data (whitespace-only runs are dropped by default — they are
  formatting noise, not document content).
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterable, Iterator, Union
from xml.parsers import expat

from repro.errors import XmlFormatError
from repro.faults import plan as faults
from repro.tree.node import NodeKind, Tree
from repro.xmlio.events import (
    Characters,
    EndDocument,
    EndElement,
    ParseEvent,
    StartDocument,
    StartElement,
)
from repro.xmlio.weights import SlotWeightModel

Source = Union[str, bytes, os.PathLike, IO[bytes], IO[str]]

_CHUNK = 64 * 1024


def _open_source(source: Source) -> tuple[IO[bytes], bool]:
    """Normalize the polymorphic source into a binary stream.

    Returns ``(stream, owned)``; owned streams are closed by the caller.
    """
    if isinstance(source, bytes):
        return io.BytesIO(source), True
    if isinstance(source, str):
        # Heuristic: document text if it looks like markup, else a path.
        if not source.strip():
            raise XmlFormatError("empty document")
        if source.lstrip()[:1] == "<":
            return io.BytesIO(source.encode("utf-8")), True
        return _open_path(source), True
    if isinstance(source, os.PathLike):
        return _open_path(source), True
    if hasattr(source, "read"):
        probe = source.read(0)
        if isinstance(probe, str):
            return io.BytesIO(source.read().encode("utf-8")), True  # type: ignore[arg-type]
        return source, False  # type: ignore[return-value]
    raise XmlFormatError(f"unsupported XML source: {type(source).__name__}")


def _open_path(path: Union[str, os.PathLike]) -> IO[bytes]:
    """Open a document path, folding I/O failure into the library's
    error hierarchy (a string that is neither markup nor a readable file
    would otherwise escape as a bare ``FileNotFoundError``)."""
    try:
        return open(path, "rb")
    except OSError as exc:
        raise XmlFormatError(
            f"cannot open XML source {os.fspath(path)!r}: {exc}"
        ) from exc


def iter_events(source: Source) -> Iterator[ParseEvent]:
    """Stream parse events from an XML document in depth-first preorder."""
    stream, owned = _open_source(source)
    buffer: list[ParseEvent] = []
    parser = expat.ParserCreate(namespace_separator=None)
    parser.buffer_text = True  # merge adjacent character data
    parser.ordered_attributes = True

    def start(name: str, attrs: list[str]) -> None:
        pairs = tuple(zip(attrs[0::2], attrs[1::2]))
        buffer.append(StartElement(name, pairs))

    def end(name: str) -> None:
        buffer.append(EndElement(name))

    def characters(data: str) -> None:
        buffer.append(Characters(data))

    parser.StartElementHandler = start
    parser.EndElementHandler = end
    parser.CharacterDataHandler = characters

    try:
        yield StartDocument()
        emitted = 1
        while True:
            chunk = stream.read(_CHUNK)
            final = not chunk
            try:
                parser.Parse(chunk, final)
            except expat.ExpatError as exc:
                # Truncated documents, undefined entities, mid-element
                # EOF, junk after the root — every malformed input
                # surfaces as XmlFormatError with the 1-based position.
                offset = getattr(exc, "offset", None)
                raise XmlFormatError(
                    f"XML parse error: {expat.ErrorString(exc.code)}",
                    line=getattr(exc, "lineno", None),
                    column=offset + 1 if offset is not None else None,
                ) from exc
            except (ValueError, UnicodeDecodeError) as exc:
                # expat raises bare ValueError for e.g. parsing after an
                # error or a closed parser; never let it escape raw.
                raise XmlFormatError(
                    f"XML parse error: {exc}",
                    line=parser.CurrentLineNumber,
                    column=parser.CurrentColumnNumber + 1,
                ) from exc
            for event in buffer:
                emitted += 1
                if faults.armed():
                    faults.check("parser.event", index=emitted)
                yield event
            buffer.clear()
            if final:
                break
        yield EndDocument()
    finally:
        if owned:
            stream.close()


def parse_tree(
    source: Source,
    weight_model: SlotWeightModel | None = None,
    strip_whitespace: bool = True,
) -> Tree:
    """Parse a document into a weighted tree using the slot model."""
    return tree_from_events(
        iter_events(source), weight_model=weight_model, strip_whitespace=strip_whitespace
    )


def tree_from_events(
    events: Iterable[ParseEvent],
    weight_model: SlotWeightModel | None = None,
    strip_whitespace: bool = True,
) -> Tree:
    """Fold a parse-event stream into a weighted tree."""
    wm = weight_model or SlotWeightModel()
    tree: Tree | None = None
    stack: list = []
    pending: list[str] = []  # adjacent character runs merge into one node

    def flush_text() -> None:
        if not pending:
            return
        text = "".join(pending)
        pending.clear()
        if strip_whitespace and not text.strip():
            return
        if tree is None or not stack:
            raise XmlFormatError("character data outside the document element")
        tree.add_child(stack[-1], "#text", wm.text_weight(text), NodeKind.TEXT, text)

    for event in events:
        if isinstance(event, StartElement):
            flush_text()
            if tree is None:
                tree = Tree(event.name, wm.element_weight(), NodeKind.ELEMENT)
                node = tree.root
            else:
                if not stack:
                    raise XmlFormatError("multiple document elements")
                node = tree.add_child(
                    stack[-1], event.name, wm.element_weight(), NodeKind.ELEMENT
                )
            for name, value in event.attributes:
                tree.add_child(
                    node, name, wm.attribute_weight(value), NodeKind.ATTRIBUTE, value
                )
            stack.append(node)
        elif isinstance(event, EndElement):
            flush_text()
            if not stack:
                raise XmlFormatError(f"unexpected closing tag {event.name!r}")
            stack.pop()
        elif isinstance(event, Characters):
            pending.append(event.text)
    flush_text()
    if tree is None:
        raise XmlFormatError("document contains no elements")
    if stack:
        raise XmlFormatError("document ended with unclosed elements")
    return tree
