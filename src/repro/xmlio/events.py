"""Parse events: the streaming currency between parser and consumers.

The bulkloader (Sec. 4.3) consumes documents as a stream of parse events
in depth-first preorder — "the typical result delivery of XML parsers" —
so the event vocabulary is kept deliberately small and SAX-like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class StartDocument:
    """Emitted once before any content."""


@dataclass(frozen=True)
class EndDocument:
    """Emitted once after all content."""


@dataclass(frozen=True)
class StartElement:
    """An opening tag with its attributes (in document order)."""

    name: str
    attributes: tuple[tuple[str, str], ...] = field(default=())


@dataclass(frozen=True)
class EndElement:
    """A closing tag."""

    name: str


@dataclass(frozen=True)
class Characters:
    """A run of character data (adjacent runs may arrive split)."""

    text: str


ParseEvent = Union[StartDocument, EndDocument, StartElement, EndElement, Characters]
