"""Convenience constructors for trees.

The compact *spec* format used across tests and examples is a nested tuple
``(label, weight, [child_spec, ...])``; the children list may be omitted
for leaves. The paper's Fig. 3 example tree is::

    ("a", 3, [
        ("b", 2),
        ("c", 1, [("d", 2), ("e", 2)]),
        ("f", 1),
        ("g", 1),
        ("h", 2),
    ])
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.errors import TreeError
from repro.tree.node import Tree, TreeNode

Spec = Union[tuple, list]


def tree_from_spec(spec: Spec) -> Tree:
    """Build a tree from a nested ``(label, weight[, children])`` spec."""
    label, weight, children = _unpack(spec)
    tree = Tree(label, weight)
    # Iterative expansion to survive deep specs.
    stack: list[tuple[TreeNode, Spec]] = [(tree.root, child) for child in reversed(children)]
    while stack:
        parent, child_spec = stack.pop()
        clabel, cweight, grandchildren = _unpack(child_spec)
        node = tree.add_child(parent, clabel, cweight)
        stack.extend((node, g) for g in reversed(grandchildren))
    return tree


def _unpack(spec: Spec) -> tuple[str, int, Sequence[Spec]]:
    if not isinstance(spec, (tuple, list)) or len(spec) not in (2, 3):
        raise TreeError(f"bad tree spec: {spec!r}")
    label, weight = spec[0], spec[1]
    children = spec[2] if len(spec) == 3 else []
    return str(label), int(weight), children


def spec_from_tree(tree: Tree) -> tuple:
    """Inverse of :func:`tree_from_spec` (children lists always present).

    Built bottom-up over an iterative postorder so arbitrarily deep trees
    round-trip without touching the interpreter recursion limit.
    """
    built: dict[int, tuple] = {}
    from repro.tree.traversal import iter_postorder

    for node in iter_postorder(tree):
        built[node.node_id] = (
            node.label,
            node.weight,
            [built[c.node_id] for c in node.children],
        )
    return built[0]


def build_tree(root_weight: int, child_weights: Sequence[int] = (), root_label: str = "t") -> Tree:
    """Shorthand for small ad-hoc trees: a root plus leaf children."""
    tree = Tree(root_label, root_weight)
    for i, w in enumerate(child_weights):
        tree.add_child(tree.root, f"c{i + 1}", w)
    return tree


def flat_tree(root_weight: int, child_weights: Sequence[int]) -> Tree:
    """A *flat tree* (Sec. 3.2): all nodes but the root are leaves."""
    return build_tree(root_weight, child_weights)


def chain_tree(weights: Sequence[int]) -> Tree:
    """A path: each node has exactly one child (worst case for depth)."""
    if not weights:
        raise TreeError("chain_tree needs at least one weight")
    tree = Tree("n0", weights[0])
    cur = tree.root
    for i, w in enumerate(weights[1:], start=1):
        cur = tree.add_child(cur, f"n{i}", w)
    return tree


def uniform_tree(depth: int, fanout: int, weight: int = 1) -> Tree:
    """Complete ``fanout``-ary tree of the given depth with uniform weights."""
    tree = Tree("r", weight)
    frontier = [tree.root]
    for level in range(depth):
        nxt = []
        for parent in frontier:
            for i in range(fanout):
                nxt.append(tree.add_child(parent, f"l{level}c{i}", weight))
        frontier = nxt
    return tree
