"""Left-child / right-sibling (LCRS) *binary view* of an ordered tree.

The EKM algorithm (paper Sec. 4.3.4) runs the Kundu-Misra cuts on the
binary representation in which every node has at most two children:

* the *left* binary child is the node's first child in the n-ary tree, and
* the *right* binary child is the node's next sibling in the n-ary tree.

No separate data structure is materialized: the accessors below interpret
the ordinary :class:`~repro.tree.node.TreeNode` links as the binary tree.
A key property (proved in DESIGN.md Sec. 4) is that cutting binary edges
yields components that correspond exactly to sibling partitions: each
component's nodes reachable from its root via *right* edges form the
sibling interval that identifies the partition.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.tree.node import Tree, TreeNode


def first_child(node: TreeNode) -> Optional[TreeNode]:
    """Left binary child: the first n-ary child, if any."""
    return node.children[0] if node.children else None


def next_sibling(node: TreeNode) -> Optional[TreeNode]:
    """Right binary child: the next n-ary sibling, if any."""
    return node.next_sibling()


def binary_children(node: TreeNode) -> list[TreeNode]:
    """The (0, 1 or 2) binary children, left before right."""
    out = []
    lc = first_child(node)
    if lc is not None:
        out.append(lc)
    rs = next_sibling(node)
    if rs is not None:
        out.append(rs)
    return out


def binary_parent(node: TreeNode) -> Optional[TreeNode]:
    """The binary parent: previous sibling if one exists, else the parent."""
    prev = node.prev_sibling()
    if prev is not None:
        return prev
    return node.parent


def iter_binary_postorder(tree: Tree) -> Iterator[TreeNode]:
    """Postorder of the binary view (left subtree, right subtree, node)."""
    stack: list[tuple[TreeNode, bool]] = [(tree.root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
        else:
            stack.append((node, True))
            rs = next_sibling(node)
            if rs is not None:
                stack.append((rs, False))
            lc = first_child(node)
            if lc is not None:
                stack.append((lc, False))


def binary_subtree_weights(tree: Tree) -> list[int]:
    """Weight of every node's *binary* subtree, indexed by node id.

    The binary subtree of ``v`` contains ``v``, its n-ary descendants, its
    right siblings, their descendants, and so on.
    """
    weights = [0] * len(tree)
    for node in iter_binary_postorder(tree):
        total = node.weight
        lc = first_child(node)
        if lc is not None:
            total += weights[lc.node_id]
        rs = next_sibling(node)
        if rs is not None:
            total += weights[rs.node_id]
        weights[node.node_id] = total
    return weights
