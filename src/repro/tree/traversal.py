"""Iterative tree traversals.

All traversals are iterative so that arbitrarily deep documents do not hit
Python's recursion limit (real XML trees and the pathological inputs in the
test suite can be thousands of levels deep).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Union

from repro.tree.node import Tree, TreeNode


def _root_of(tree_or_node: Union[Tree, TreeNode]) -> TreeNode:
    return tree_or_node.root if isinstance(tree_or_node, Tree) else tree_or_node


def iter_preorder(tree_or_node: Union[Tree, TreeNode]) -> Iterator[TreeNode]:
    """Depth-first preorder (document order): node before its children."""
    stack = [_root_of(tree_or_node)]
    while stack:
        node = stack.pop()
        yield node
        # Push children reversed so the leftmost child is visited first.
        stack.extend(reversed(node.children))


def iter_postorder(tree_or_node: Union[Tree, TreeNode]) -> Iterator[TreeNode]:
    """Depth-first postorder: children (left to right) before the node."""
    root = _root_of(tree_or_node)
    # Classic two-phase iterative postorder: (node, expanded?) frames.
    stack: list[tuple[TreeNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
        else:
            stack.append((node, True))
            stack.extend((child, False) for child in reversed(node.children))


def iter_levelorder(tree_or_node: Union[Tree, TreeNode]) -> Iterator[TreeNode]:
    """Breadth-first order: level by level, siblings left to right."""
    queue = deque([_root_of(tree_or_node)])
    while queue:
        node = queue.popleft()
        yield node
        queue.extend(node.children)


def iter_descendants(node: TreeNode) -> Iterator[TreeNode]:
    """All proper descendants of ``node`` in document order."""
    it = iter_preorder(node)
    next(it)  # skip the node itself
    return it


def iter_ancestors(node: TreeNode) -> Iterator[TreeNode]:
    """All proper ancestors, nearest first."""
    cur = node.parent
    while cur is not None:
        yield cur
        cur = cur.parent
