"""Measurements over trees: subtree weights, depths, shape statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tree.node import Tree
from repro.tree.traversal import iter_postorder, iter_preorder


def subtree_weights(tree: Tree) -> list[int]:
    """``W_T(v)`` for every node, indexed by node id (one postorder pass)."""
    weights = [0] * len(tree)
    for node in iter_postorder(tree):
        weights[node.node_id] = node.weight + sum(weights[c.node_id] for c in node.children)
    return weights


def node_depths(tree: Tree) -> list[int]:
    """Depth of every node (root depth 0), indexed by node id."""
    depths = [0] * len(tree)
    for node in iter_preorder(tree):
        if node.parent is not None:
            depths[node.node_id] = depths[node.parent.node_id] + 1
    return depths


def max_fanout(tree: Tree) -> int:
    """Largest number of children of any node."""
    return max(len(n.children) for n in tree)


@dataclass(frozen=True)
class TreeStats:
    """Shape summary used by dataset generators and benchmark reports."""

    nodes: int
    total_weight: int
    height: int
    max_fanout: int
    leaves: int
    max_node_weight: int

    def __str__(self) -> str:
        return (
            f"nodes={self.nodes} weight={self.total_weight} height={self.height} "
            f"max_fanout={self.max_fanout} leaves={self.leaves} "
            f"max_node_weight={self.max_node_weight}"
        )


def tree_stats(tree: Tree) -> TreeStats:
    """Compute a :class:`TreeStats` summary in one pass."""
    depths = node_depths(tree)
    return TreeStats(
        nodes=len(tree),
        total_weight=tree.total_weight(),
        height=max(depths) if depths else 0,
        max_fanout=max_fanout(tree),
        leaves=sum(1 for n in tree if n.is_leaf),
        max_node_weight=tree.max_node_weight(),
    )
