"""Core tree data structures.

A :class:`Tree` is the tuple ``T = (V, t, p, <, w)`` of the paper: a set of
nodes ``V``, a root ``t``, a parent function ``p``, a sibling order ``<``
and a positive integer weight function ``w``. Nodes are created through
:meth:`Tree.add_child` (or the builders in :mod:`repro.tree.builders`) so
that node ids are dense integers and the sibling order is the order of the
``children`` lists.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Optional

from repro.errors import TreeError


class NodeKind(enum.IntEnum):
    """XML-ish node kinds; partitioning only cares about weights, but the
    storage engine and weight model distinguish them."""

    ELEMENT = 0
    TEXT = 1
    ATTRIBUTE = 2
    OTHER = 3


class TreeNode:
    """One node of an ordered weighted tree.

    Attributes
    ----------
    node_id:
        Dense integer id, assigned in creation (document) order. The root
        always has id 0.
    label:
        Tag name for elements, attribute name for attributes; text nodes
        conventionally use ``"#text"``.
    weight:
        Positive integer weight (number of storage slots, Sec. 6.1).
    kind:
        A :class:`NodeKind`.
    content:
        Optional payload string (text value / attribute value). Kept so the
        storage engine can serialize real bytes.
    parent:
        Parent node or ``None`` for the root.
    children:
        Ordered list of child nodes; list order *is* the sibling order.
    index:
        Position of this node in ``parent.children`` (0 for the root).
    """

    __slots__ = (
        "node_id",
        "packed_id",
        "label",
        "weight",
        "kind",
        "content",
        "parent",
        "children",
        "index",
    )

    def __init__(
        self,
        node_id: int,
        label: str,
        weight: int,
        kind: NodeKind = NodeKind.ELEMENT,
        content: Optional[str] = None,
    ):
        if weight < 1:
            raise TreeError(f"node weight must be a positive integer, got {weight!r}")
        self.node_id = node_id
        # precomputed high half of telemetry.heat.pack_hop(node_id, _):
        # the navigation hot path ORs the target id straight in, avoiding
        # a per-hop shift (and its int allocation). Anything that remaps
        # node_id (see storage.reconstruct) must refresh this too.
        self.packed_id = node_id << 32
        self.label = label
        self.weight = int(weight)
        self.kind = kind
        self.content = content
        self.parent: Optional[TreeNode] = None
        self.children: list[TreeNode] = []
        self.index = 0

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def next_sibling(self) -> Optional["TreeNode"]:
        """The node immediately to the right in the sibling order."""
        if self.parent is None:
            return None
        siblings = self.parent.children
        nxt = self.index + 1
        return siblings[nxt] if nxt < len(siblings) else None

    def prev_sibling(self) -> Optional["TreeNode"]:
        """The node immediately to the left in the sibling order."""
        if self.parent is None or self.index == 0:
            return None
        return self.parent.children[self.index - 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode(id={self.node_id}, label={self.label!r}, w={self.weight})"


class Tree:
    """A rooted, ordered, weighted tree with dense integer node ids."""

    __slots__ = ("nodes", "_subtree_weights", "_total_weight")

    def __init__(
        self,
        root_label: str = "root",
        root_weight: int = 1,
        kind: NodeKind = NodeKind.ELEMENT,
        content: Optional[str] = None,
    ):
        root = TreeNode(0, root_label, root_weight, kind, content)
        self.nodes: list[TreeNode] = [root]
        self._subtree_weights: Optional[list[int]] = None
        self._total_weight: Optional[int] = None

    @property
    def root(self) -> TreeNode:
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[TreeNode]:
        """Iterate over all nodes in creation order (document order for
        trees built by the parsers/generators)."""
        return iter(self.nodes)

    def node(self, node_id: int) -> TreeNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    def add_child(
        self,
        parent: TreeNode,
        label: str,
        weight: int,
        kind: NodeKind = NodeKind.ELEMENT,
        content: Optional[str] = None,
    ) -> TreeNode:
        """Append a new rightmost child under ``parent`` and return it."""
        if self.nodes[parent.node_id] is not parent:
            raise TreeError("parent node does not belong to this tree")
        child = TreeNode(len(self.nodes), label, weight, kind, content)
        child.parent = parent
        child.index = len(parent.children)
        parent.children.append(child)
        self.nodes.append(child)
        self._subtree_weights = None
        self._total_weight = None
        return child

    def insert_child(
        self,
        parent: TreeNode,
        position: int,
        label: str,
        weight: int,
        kind: NodeKind = NodeKind.ELEMENT,
        content: Optional[str] = None,
    ) -> TreeNode:
        """Insert a child at a sibling ``position`` (used by incremental
        updates). Node ids remain creation-ordered, so after an insert
        they are no longer document order — consumers needing document
        order must recompute it (see ``DocumentStore.order_rank``)."""
        if self.nodes[parent.node_id] is not parent:
            raise TreeError("parent node does not belong to this tree")
        if not 0 <= position <= len(parent.children):
            raise TreeError(
                f"position {position} out of range for {len(parent.children)} children"
            )
        child = TreeNode(len(self.nodes), label, weight, kind, content)
        child.parent = parent
        parent.children.insert(position, child)
        for idx in range(position, len(parent.children)):
            parent.children[idx].index = idx
        self.nodes.append(child)
        self._subtree_weights = None
        self._total_weight = None
        return child

    def total_weight(self) -> int:
        """Sum of all node weights, ``W_T(t)``.

        Cached until the tree is mutated, so repeated calls (reports,
        benchmark rows, feasibility bounds) cost O(1) after the first.
        """
        if self._total_weight is None:
            self._total_weight = sum(n.weight for n in self.nodes)
        return self._total_weight

    def subtree_weight(self, node: TreeNode) -> int:
        """``W_T(v)``: total weight of the subtree induced by ``node``.

        Computed lazily for the whole tree in one postorder pass and cached
        until the tree is mutated.
        """
        if self._subtree_weights is None:
            from repro.tree.measure import subtree_weights

            self._subtree_weights = subtree_weights(self)
        return self._subtree_weights[node.node_id]

    def interval_nodes(self, left: TreeNode, right: TreeNode) -> list[TreeNode]:
        """The nodes of the sibling interval ``(left, right)_T``."""
        if left.parent is not right.parent:
            raise TreeError("interval endpoints must share a parent")
        if left.parent is None:
            if left is not right:
                raise TreeError("the root has no siblings")
            return [left]
        if left.index > right.index:
            raise TreeError("interval endpoints out of order")
        return left.parent.children[left.index : right.index + 1]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TreeError` if broken.

        Invariants: dense ids matching ``nodes`` positions, consistent
        parent/child/index links, a single root with id 0, positive
        weights, and every node reachable from the root.
        """
        if not self.nodes:
            raise TreeError("tree has no nodes")
        if self.nodes[0].parent is not None:
            raise TreeError("node 0 must be the root")
        seen = 0
        for nid, node in enumerate(self.nodes):
            if node.node_id != nid:
                raise TreeError(f"node at position {nid} has id {node.node_id}")
            if node.weight < 1:
                raise TreeError(f"node {nid} has non-positive weight")
            if nid != 0:
                if node.parent is None:
                    raise TreeError(f"non-root node {nid} has no parent")
                par = node.parent
                if self.nodes[par.node_id] is not par:
                    raise TreeError(f"node {nid} has a foreign parent")
                if par.children[node.index] is not node:
                    raise TreeError(f"node {nid} has a stale sibling index")
            for cidx, child in enumerate(node.children):
                if child.parent is not node or child.index != cidx:
                    raise TreeError(f"broken child link under node {nid}")
                seen += 1
        if seen != len(self.nodes) - 1:
            raise TreeError("tree contains unreachable nodes")

    def max_node_weight(self) -> int:
        return max(n.weight for n in self.nodes)

    def weights(self) -> list[int]:
        """Node weights indexed by node id."""
        return [n.weight for n in self.nodes]

    def copy(self) -> "Tree":
        """Deep structural copy (new node objects, same ids/labels/weights)."""
        root = self.root
        clone = Tree(root.label, root.weight, root.kind, root.content)
        # Creation order == id order guarantees parents are cloned first.
        for node in self.nodes[1:]:
            parent_clone = clone.nodes[node.parent.node_id]  # type: ignore[union-attr]
            clone.add_child(parent_clone, node.label, node.weight, node.kind, node.content)
        return clone


def ids(nodes: Iterable[TreeNode]) -> list[int]:
    """Convenience: map nodes to their ids (used heavily in tests)."""
    return [n.node_id for n in nodes]
