"""Ordered, labeled, weighted trees (the paper's Sec. 2.1 data model).

The central classes are :class:`~repro.tree.node.TreeNode` and
:class:`~repro.tree.node.Tree`. Trees are rooted and ordered; every node
carries a positive integer weight. Traversal helpers are iterative (no
recursion limits), and :mod:`repro.tree.binary` exposes the left-child /
right-sibling (binary) view used by the EKM algorithm.
"""

from repro.tree.node import Tree, TreeNode, NodeKind
from repro.tree.builders import build_tree, flat_tree, tree_from_spec, spec_from_tree
from repro.tree.traversal import iter_preorder, iter_postorder, iter_levelorder
from repro.tree.binary import (
    binary_children,
    binary_parent,
    first_child,
    next_sibling,
    iter_binary_postorder,
)
from repro.tree.measure import (
    TreeStats,
    subtree_weights,
    tree_stats,
    node_depths,
    max_fanout,
)

__all__ = [
    "Tree",
    "TreeNode",
    "NodeKind",
    "build_tree",
    "flat_tree",
    "tree_from_spec",
    "spec_from_tree",
    "iter_preorder",
    "iter_postorder",
    "iter_levelorder",
    "binary_children",
    "binary_parent",
    "first_child",
    "next_sibling",
    "iter_binary_postorder",
    "TreeStats",
    "subtree_weights",
    "tree_stats",
    "node_depths",
    "max_fanout",
]
