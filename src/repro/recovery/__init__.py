"""Crash-safe in-place updates: write-ahead logging and redo recovery.

:mod:`repro.recovery.wal` is the log (length+CRC32 frames, group
commit, atomic checkpoint/truncation); :mod:`repro.recovery.manager`
is the ARIES-lite redo recovery that turns surviving page images plus
the log back into a consistent :class:`~repro.storage.store.DocumentStore`.
See ``docs/ROBUSTNESS.md`` for the protocol and its guarantees.
"""

from repro.recovery.manager import (
    RecoveryReport,
    attach_pages,
    recover,
    recover_store,
)
from repro.recovery.wal import (
    WalState,
    WalTransaction,
    WriteAheadLog,
    read_wal,
    trim_torn_tail,
    write_checkpoint,
)

__all__ = [
    "RecoveryReport",
    "WalState",
    "WalTransaction",
    "WriteAheadLog",
    "attach_pages",
    "read_wal",
    "recover",
    "recover_store",
    "trim_torn_tail",
    "write_checkpoint",
]
