"""The write-ahead log: length+CRC32-framed redo records, group commit.

Every :meth:`~repro.storage.updates.StoreUpdater.flush` that runs with a
log attached (``store.attach_wal``) writes its intent *before* touching
any page: a ``BEGIN`` frame naming the dirty records (plus the label
dictionary, so cold recovery can rebuild it), one ``IMAGE`` frame per
record carrying the exact blob about to land on a page (the redo
after-image), and a ``COMMIT`` frame. The log is flushed after every
frame but **fsynced once, at commit** — group commit: a transaction's
durability costs a single fsync no matter how many records it touches.
After the pages are updated a checkpoint atomically truncates the log
(write temp file, fsync, ``os.replace``), so the log stays bounded by
the largest single flush instead of growing with history.

On-disk format — append-only frames::

    frame   := <u32 payload_len> <u32 crc32(payload)> payload
    payload := <u8 kind> rest

    BEGIN      (1): <u32 txn_id> json{"labels", "record_limit", "dirty"}
    IMAGE      (2): <u32 txn_id> <u32 record_id> blob
    COMMIT     (3): <u32 txn_id>
    CHECKPOINT (4): json{"labels", "record_limit", "next_txn"}

:func:`read_wal` is the single reader. Its torn-tail rule mirrors the
bulk-load journal's: an incomplete or CRC-failing **final** frame is the
expected residue of a crash mid-append and is reported (and skipped) as
a torn tail, while a CRC failure with more data following means interior
corruption and raises :class:`~repro.errors.WalError` — a log that lies
about history must never be replayed quietly.

Fault points (``repro.faults``): ``wal.append`` fires after each frame
is written + flushed — i.e. *at* the record boundary a crash would leave
behind, which is how the chaos matrix kills a flush at every boundary —
and ``wal.fsync`` fires just before each group-commit/checkpoint fsync.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.errors import WalError
from repro.faults import plan as faults

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
_TXN = struct.Struct("<I")  # txn_id
_IMAGE = struct.Struct("<II")  # txn_id, record_id

#: frame kinds (first payload byte)
BEGIN, IMAGE, COMMIT, CHECKPOINT = 1, 2, 3, 4

#: sanity bound on one frame; a length field beyond this is corruption,
#: not a real record (the largest legal image is one page's payload)
MAX_FRAME_BYTES = 1 << 26


@dataclass
class WalTransaction:
    """One logged flush: its id, metadata, and redo after-images."""

    txn_id: int
    labels: list[str]
    record_limit: int
    dirty: list[int]
    #: ``(record_id, blob)`` in append order — replay order matters only
    #: across transactions, but keeping it makes redo reproducible
    images: list[tuple[int, bytes]] = field(default_factory=list)


@dataclass
class WalState:
    """Everything :func:`read_wal` learned from one log file."""

    path: str
    #: complete, checksum-valid frames found
    frames: int = 0
    #: transactions with a COMMIT frame, in commit order
    committed: list[WalTransaction] = field(default_factory=list)
    #: a transaction begun but never committed (at most one; discarded)
    open_txn: Optional[WalTransaction] = None
    #: bytes of torn tail after the last valid frame (0 = clean shutdown)
    torn_bytes: int = 0
    #: file offset where the valid prefix ends (truncate target)
    valid_bytes: int = 0
    #: latest durable label dictionary (checkpoint or committed BEGIN)
    labels: Optional[list[str]] = None
    record_limit: Optional[int] = None
    #: next transaction id a writer should hand out
    next_txn: int = 1

    def latest_images(self) -> dict[int, bytes]:
        """Last committed after-image per record — what redo installs."""
        latest: dict[int, bytes] = {}
        for txn in self.committed:
            for record_id, blob in txn.images:
                latest[record_id] = blob
        return latest


def _parse_frames(data: bytes, path: str) -> tuple[list[bytes], int, int]:
    """Split ``data`` into valid payloads; returns (payloads, valid_bytes,
    torn_bytes). Raises :class:`WalError` on interior corruption."""
    payloads: list[bytes] = []
    offset = 0
    size = len(data)
    while offset < size:
        remaining = size - offset
        if remaining < _FRAME_HEADER.size:
            return payloads, offset, remaining  # torn mid-header
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        end = offset + _FRAME_HEADER.size + length
        if length > MAX_FRAME_BYTES or end > size:
            # the frame claims more bytes than exist: an append died
            # mid-frame (or tore the length field itself)
            return payloads, offset, remaining
        payload = data[offset + _FRAME_HEADER.size : end]
        if zlib.crc32(payload) != crc:
            if end >= size:
                return payloads, offset, remaining  # torn final frame
            raise WalError(
                f"{path}: frame at byte {offset} fails its checksum with "
                f"{size - end} bytes following — interior corruption, "
                "not a torn tail"
            )
        payloads.append(payload)
        offset = end
    return payloads, offset, 0


def read_wal(path: str) -> WalState:
    """Read and validate a log file; tolerate (and report) a torn tail.

    A missing file reads as an empty log — recovery on a store that
    never flushed is a no-op, not an error.
    """
    state = WalState(path=str(path))
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return state
    payloads, state.valid_bytes, state.torn_bytes = _parse_frames(data, str(path))
    open_txn: Optional[WalTransaction] = None
    for payload in payloads:
        if not payload:
            raise WalError(f"{path}: empty frame payload")
        kind = payload[0]
        if kind == BEGIN:
            (txn_id,) = _TXN.unpack_from(payload, 1)
            if open_txn is not None:
                raise WalError(
                    f"{path}: BEGIN {txn_id} while transaction "
                    f"{open_txn.txn_id} is still open"
                )
            meta = _frame_json(payload[1 + _TXN.size :], path, "BEGIN")
            open_txn = WalTransaction(
                txn_id=txn_id,
                labels=list(meta["labels"]),
                record_limit=int(meta["record_limit"]),
                dirty=list(meta.get("dirty", ())),
            )
        elif kind == IMAGE:
            txn_id, record_id = _IMAGE.unpack_from(payload, 1)
            if open_txn is None or open_txn.txn_id != txn_id:
                raise WalError(
                    f"{path}: IMAGE for transaction {txn_id} outside "
                    "its BEGIN/COMMIT window"
                )
            open_txn.images.append((record_id, payload[1 + _IMAGE.size :]))
        elif kind == COMMIT:
            (txn_id,) = _TXN.unpack_from(payload, 1)
            if open_txn is None or open_txn.txn_id != txn_id:
                raise WalError(
                    f"{path}: COMMIT for transaction {txn_id} that "
                    "was never begun"
                )
            state.committed.append(open_txn)
            state.labels = open_txn.labels
            state.record_limit = open_txn.record_limit
            open_txn = None
        elif kind == CHECKPOINT:
            if open_txn is not None:
                raise WalError(
                    f"{path}: CHECKPOINT inside transaction {open_txn.txn_id}"
                )
            meta = _frame_json(payload[1:], path, "CHECKPOINT")
            state.labels = list(meta["labels"])
            state.record_limit = int(meta["record_limit"])
            state.next_txn = max(state.next_txn, int(meta.get("next_txn", 1)))
        else:
            raise WalError(f"{path}: unknown frame kind {kind}")
        state.frames += 1
    state.open_txn = open_txn
    for txn in state.committed:
        state.next_txn = max(state.next_txn, txn.txn_id + 1)
    if open_txn is not None:
        state.next_txn = max(state.next_txn, open_txn.txn_id + 1)
    return state


def _frame_json(blob: bytes, path: str, kind: str) -> dict:
    try:
        meta = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalError(f"{path}: unreadable {kind} metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise WalError(f"{path}: {kind} metadata is not an object")
    return meta


def trim_torn_tail(path: str) -> int:
    """Truncate a log to its valid prefix; returns the bytes dropped.

    Safe to call on a clean log (no-op). Interior corruption still
    raises — trimming must never hide a lying log.
    """
    state = read_wal(path)
    if state.torn_bytes:
        with open(path, "r+b") as handle:
            handle.truncate(state.valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return state.torn_bytes


def _frame_bytes(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def write_checkpoint(
    path: str, labels: list[str], record_limit: int, next_txn: int
) -> None:
    """Atomically replace the log with a single CHECKPOINT frame.

    The classic crash-safe rewrite: write a temp file, flush, **fsync**,
    then ``os.replace`` — the log is never observable half-truncated,
    and the rename only happens once the new content is durable.
    """
    meta = json.dumps(
        {"labels": list(labels), "record_limit": record_limit, "next_txn": next_txn},
        sort_keys=True,
    ).encode("utf-8")
    frame = _frame_bytes(bytes([CHECKPOINT]) + meta)
    tmp = f"{path}.ckpt"
    with open(tmp, "wb") as handle:
        handle.write(frame)
        handle.flush()
        if faults.armed():
            faults.check("wal.fsync", path=path, checkpoint=True)
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(os.path.dirname(path) or ".")
    if telemetry.enabled():
        telemetry.count("recovery.wal.checkpoints")


def _fsync_directory(directory: str) -> None:
    """Make a rename durable (the directory entry itself needs a sync)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without O_RDONLY dirs
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(dir_fd)


class WriteAheadLog:
    """Single-writer append handle over one log file.

    Use as a context manager or via :meth:`open`/:meth:`close`. Opening
    an existing log validates it first (raising on interior corruption)
    and trims any torn tail so fresh appends never land after garbage.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._handle = None
        self._next_txn = 1
        self._open_txn: Optional[int] = None
        #: complete frames currently in the file
        self.frames = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "WriteAheadLog":
        if self._handle is not None:
            raise WalError(f"{self.path}: log already open")
        if os.path.exists(self.path):
            trim_torn_tail(self.path)
        state = read_wal(self.path)
        if state.open_txn is not None:
            # an uncommitted transaction is dead history; appending a new
            # BEGIN after it would violate the protocol, so truncate the
            # log back to its last durable point
            write_checkpoint(
                self.path,
                state.labels or [],
                state.record_limit or 0,
                state.next_txn,
            )
            state = read_wal(self.path)
        self._next_txn = state.next_txn
        self.frames = state.frames
        # io.open, not the builtin: inside a method named `open` the bare
        # name reads as self-recursion (REC001)
        self._handle = io.open(self.path, "ab")
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self.open() if self._handle is None else self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def is_open(self) -> bool:
        return self._handle is not None

    # -- appends -----------------------------------------------------------

    def _append(self, payload: bytes) -> None:
        if self._handle is None:
            raise WalError(f"{self.path}: log is not open")
        frame = _frame_bytes(payload)
        self._handle.write(frame)
        # flush to the OS so the frame is a durable *boundary* in the
        # simulator's failure model; durability proper waits for the
        # group-commit fsync
        self._handle.flush()
        self.frames += 1
        if telemetry.enabled():
            telemetry.count("recovery.wal.appends")
            telemetry.count("recovery.wal.bytes", len(frame))
        if faults.armed():
            faults.check("wal.append", path=self.path, frame=self.frames)

    def _sync(self) -> None:
        if faults.armed():
            faults.check("wal.fsync", path=self.path)
        os.fsync(self._handle.fileno())
        if telemetry.enabled():
            telemetry.count("recovery.wal.fsyncs")

    def begin(self, dirty, *, labels, record_limit: int) -> int:
        """Open a transaction; logs the label dictionary so cold
        recovery can rebuild it. Returns the transaction id."""
        if self._open_txn is not None:
            raise WalError(f"{self.path}: transaction {self._open_txn} still open")
        txn_id = self._next_txn
        self._next_txn += 1
        meta = json.dumps(
            {
                "labels": list(labels),
                "record_limit": record_limit,
                "dirty": sorted(dirty),
            },
            sort_keys=True,
        ).encode("utf-8")
        self._append(bytes([BEGIN]) + _TXN.pack(txn_id) + meta)
        self._open_txn = txn_id
        return txn_id

    def log_image(self, txn_id: int, record_id: int, blob: bytes) -> None:
        """Log the redo after-image of one record."""
        if self._open_txn != txn_id:
            raise WalError(
                f"{self.path}: image for transaction {txn_id} but "
                f"{self._open_txn} is open"
            )
        self._append(bytes([IMAGE]) + _IMAGE.pack(txn_id, record_id) + blob)

    def commit(self, txn_id: int) -> None:
        """Group commit: one append, one fsync, the whole flush durable."""
        if self._open_txn != txn_id:
            raise WalError(
                f"{self.path}: commit of transaction {txn_id} but "
                f"{self._open_txn} is open"
            )
        self._append(bytes([COMMIT]) + _TXN.pack(txn_id))
        self._sync()
        self._open_txn = None
        if telemetry.enabled():
            telemetry.count("recovery.wal.commits")

    def checkpoint(self, labels, record_limit: int) -> None:
        """Truncate the log once its transactions are applied to pages."""
        if self._open_txn is not None:
            raise WalError(f"{self.path}: cannot checkpoint inside a transaction")
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        write_checkpoint(self.path, list(labels), record_limit, self._next_txn)
        self.frames = 1
        self._handle = io.open(self.path, "ab")
