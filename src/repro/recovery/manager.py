"""ARIES-lite redo recovery: surviving pages + WAL -> consistent store.

What survives a crash in this simulator's failure model is exactly what
survives one on real hardware: the page images (``Page.slots`` is the
"disk") and the write-ahead log file. Everything in memory — the tree,
the node->record assignment, the label dictionary, the buffer pool — is
gone. Recovery rebuilds a byte-identical store in four steps:

1. **Analyze** — :func:`~repro.recovery.wal.read_wal` reads the log,
   discards a torn tail and the (at most one) uncommitted transaction,
   and surfaces every committed transaction's redo after-images.
2. **Repair** — every page is CRC-verified; a corrupt page is
   quarantined and each damaged slot with a logged after-image is
   overwritten from the log, then the page is resealed. Damage to a
   record the log never imaged is unrecoverable by redo and raises
   :class:`~repro.errors.RecoveryError` if the record fails to decode.
3. **Redo** — committed images the pages don't already hold are
   re-applied in commit order. Redo is idempotent (an image equal to the
   stored blob is skipped), so recovery interrupted by a second crash
   simply runs again. The ``updates.flush`` fault point fires before
   each re-apply — the chaos matrix uses it to kill recovery itself.
4. **Rebuild** — every record is decoded and the document tree is
   reconstructed (:func:`~repro.storage.reconstruct.reconstruct_tree`,
   node ids preserved) with the label dictionary recovered from the
   log's latest BEGIN/CHECKPOINT snapshot; the store adopts the pages
   without re-serializing anything, and a checkpoint truncates the log.

Redo-only recovery is enough because :meth:`StoreUpdater.flush` never
overwrites a page before its transaction is committed — there is nothing
to undo, ever. Per-node weights are re-derived from the slot model
(:class:`~repro.xmlio.weights.SlotWeightModel`), matching how documents
are weighed at parse time; stores updated under custom explicit weights
are outside the WAL's contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.errors import CorruptPageError, RecoveryError
from repro.faults import plan as faults
from repro.recovery.wal import WalState, read_wal, write_checkpoint
from repro.storage.constants import DEFAULT_CONFIG, StorageConfig
from repro.storage.manager import RecordManager
from repro.storage.record import Record, RecordCodec
from repro.storage.reconstruct import reconstruct_tree
from repro.storage.store import DocumentStore


@dataclass
class RecoveryReport:
    """What one recovery run found and did."""

    wal_path: str
    committed_transactions: int = 0
    #: transactions that actually needed redo work (ids, commit order)
    replayed_transactions: list[int] = field(default_factory=list)
    records_redone: int = 0
    #: pages that failed CRC verification and were quarantined/repaired
    pages_repaired: list[int] = field(default_factory=list)
    #: records overwritten from logged after-images during page repair
    records_restored: list[int] = field(default_factory=list)
    #: damaged-page records with no after-image (decode-checked only)
    records_unprotected: list[int] = field(default_factory=list)
    torn_bytes_discarded: int = 0
    #: id of the begun-but-uncommitted transaction, if one was dropped
    open_transaction_discarded: Optional[int] = None
    checkpointed: bool = False

    @property
    def clean(self) -> bool:
        """True when the store needed no work (clean shutdown)."""
        return not (
            self.replayed_transactions
            or self.pages_repaired
            or self.torn_bytes_discarded
            or self.open_transaction_discarded is not None
        )

    def summary(self) -> str:
        if self.clean:
            return f"recovery: clean ({self.committed_transactions} committed txns, no work)"
        parts = [
            f"replayed {len(self.replayed_transactions)} txn(s)",
            f"{self.records_redone} record(s) redone",
        ]
        if self.pages_repaired:
            parts.append(
                f"repaired {len(self.pages_repaired)} page(s) "
                f"({len(self.records_restored)} record(s) from images)"
            )
        if self.torn_bytes_discarded:
            parts.append(f"discarded {self.torn_bytes_discarded}B torn tail")
        if self.open_transaction_discarded is not None:
            parts.append(
                f"dropped uncommitted txn {self.open_transaction_discarded}"
            )
        return "recovery: " + ", ".join(parts)


def attach_pages(pages, config: StorageConfig) -> RecordManager:
    """Wrap surviving page images in a fresh :class:`RecordManager`.

    ``page_of_record`` and the byte accounting are rebuilt by scanning
    the slot directories — they are derivable state, not durable state.
    """
    manager = RecordManager(config)
    manager.pages = dict(pages)
    for page_id in sorted(manager.pages):
        for record_id in manager.pages[page_id].slots:
            if record_id in manager.page_of_record:
                raise RecoveryError(
                    f"record {record_id} appears on pages "
                    f"{manager.page_of_record[record_id]} and {page_id}"
                )
            manager.page_of_record[record_id] = page_id
    _refresh_record_bytes(manager)
    return manager


def _refresh_record_bytes(manager: RecordManager) -> None:
    manager._record_bytes = sum(
        len(blob) for page in manager.pages.values() for blob in page.slots.values()
    )


def _repair_pages(
    manager: RecordManager, latest: dict[int, bytes], report: RecoveryReport
) -> None:
    """Quarantine CRC-failing pages; restore imaged slots from the log."""
    for page_id in sorted(manager.pages):
        page = manager.pages[page_id]
        try:
            page.verify()
            continue
        except CorruptPageError:
            pass
        report.pages_repaired.append(page_id)
        for record_id in sorted(page.slots):
            image = latest.get(record_id)
            if image is None:
                report.records_unprotected.append(record_id)
            elif page.slots[record_id] != image:
                page.slots[record_id] = image
                report.records_restored.append(record_id)
        page.seal()
        if page.free_bytes < 0:
            raise RecoveryError(
                f"page {page_id} overflows after repair — the logged "
                "images do not belong to this page generation"
            )
        if telemetry.enabled():
            telemetry.count("recovery.pages.repaired")


def _redo(
    manager: RecordManager, state: WalState, report: RecoveryReport
) -> None:
    """Re-apply committed after-images the pages don't already hold."""
    for txn in state.committed:
        replayed = False
        for record_id, blob in txn.images:
            page_id = manager.page_of_record.get(record_id)
            if (
                page_id is not None
                and manager.pages[page_id].slots.get(record_id) == blob
            ):
                continue  # already applied (before the crash, or by a
                # recovery run a second crash interrupted)
            if faults.armed():
                faults.check("updates.flush", record_id=record_id, redo=True)
            if page_id is not None:
                manager.replace(record_id, blob)
            else:
                manager.store(record_id, blob)
            report.records_redone += 1
            replayed = True
        if replayed:
            report.replayed_transactions.append(txn.txn_id)
    _refresh_record_bytes(manager)
    if telemetry.enabled():
        telemetry.count("recovery.transactions.replayed", len(report.replayed_transactions))
        telemetry.count("recovery.records.redone", report.records_redone)


def _decode_records(manager: RecordManager, codec: RecordCodec) -> list[Record]:
    """Decode every stored record, verifying pages — the zero-corrupt-
    reads guarantee: damage that survived repair must surface here."""
    records: list[Record] = []
    for record_id in sorted(manager.page_of_record):
        page = manager.pages[manager.page_of_record[record_id]]
        page.verify()
        try:
            record = codec.decode(record_id, page.get(record_id))
        except Exception as exc:
            raise RecoveryError(
                f"record {record_id} fails to decode after redo: {exc}"
            ) from exc
        if record.nodes:
            records.append(record)
    return records


def _start_report(state: WalState) -> RecoveryReport:
    return RecoveryReport(
        wal_path=state.path,
        committed_transactions=len(state.committed),
        torn_bytes_discarded=state.torn_bytes,
        open_transaction_discarded=(
            state.open_txn.txn_id if state.open_txn is not None else None
        ),
    )


def recover_store(
    pages,
    wal_path: str,
    config: StorageConfig = DEFAULT_CONFIG,
    *,
    checkpoint: bool = True,
) -> tuple[DocumentStore, RecoveryReport]:
    """Cold-start recovery: surviving pages + log -> a working store.

    Returns the recovered :class:`DocumentStore` (adopting the given
    pages — no re-serialization, so its bytes are exactly the repaired/
    redone page images) and the :class:`RecoveryReport`. With
    ``checkpoint`` (default) the log is truncated once the store is
    consistent, making a follow-up recovery a no-op.
    """
    with telemetry.span("recovery.recover"):
        state = read_wal(wal_path)
        report = _start_report(state)
        manager = attach_pages(pages, config)
        _repair_pages(manager, state.latest_images(), report)
        _redo(manager, state, report)
        codec = RecordCodec(record_header=config.record_header, capacity_bytes=None)
        records = _decode_records(manager, codec)
        if state.labels is None:
            raise RecoveryError(
                f"{wal_path}: no label snapshot in the log — was the "
                "store ever attached to this WAL?"
            )
        tree = reconstruct_tree(records, state.labels)
        record_of = [-1] * len(tree)
        for record in records:
            for node in record.nodes:
                record_of[node.node_id] = record.record_id
        store = DocumentStore.adopt(manager, tree, record_of, state.labels, config)
        if checkpoint:
            write_checkpoint(
                wal_path,
                state.labels,
                state.record_limit or config.record_limit,
                state.next_txn,
            )
            report.checkpointed = True
    if telemetry.enabled():
        telemetry.count("recovery.runs")
        if report.torn_bytes_discarded:
            telemetry.count("recovery.torn_bytes", report.torn_bytes_discarded)
    return store, report


def recover(
    store: DocumentStore, wal_path: Optional[str] = None, *, checkpoint: bool = True
) -> RecoveryReport:
    """Recover a store in place from its (attached or given) log.

    The warm-start twin of :func:`recover_store`: the store's pages are
    repaired and redone, then its in-memory mirrors (tree, assignment,
    labels, weights, buffer) are rebuilt around them via
    :meth:`DocumentStore.rebind`.
    """
    if wal_path is None:
        if store.wal is None:
            raise RecoveryError("store has no WAL attached and no path was given")
        wal_path = store.wal.path
    with telemetry.span("recovery.recover"):
        state = read_wal(wal_path)
        report = _start_report(state)
        _repair_pages(store.manager, state.latest_images(), report)
        _redo(store.manager, state, report)
        records = _decode_records(store.manager, store.codec)
        labels = state.labels if state.labels is not None else store.labels
        tree = reconstruct_tree(records, labels)
        record_of = [-1] * len(tree)
        for record in records:
            for node in record.nodes:
                record_of[node.node_id] = record.record_id
        store.rebind(tree, record_of, labels)
        if checkpoint:
            if store.wal is not None and store.wal.is_open:
                store.wal.checkpoint(labels, store.config.record_limit)
            else:
                write_checkpoint(
                    wal_path,
                    labels,
                    state.record_limit or store.config.record_limit,
                    state.next_txn,
                )
            report.checkpointed = True
    if telemetry.enabled():
        telemetry.count("recovery.runs")
        if report.torn_bytes_discarded:
            telemetry.count("recovery.torn_bytes", report.torn_bytes_discarded)
    return report
