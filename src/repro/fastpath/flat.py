"""Structure-of-arrays tree representation for the fast-path kernels.

A :class:`FlatTree` stores one ordered weighted tree as parallel arrays
indexed by node id — parent, first-child, next-sibling, weight and
subtree weight, plus a CSR (offset + flat id list) view of the children
lists. The DP kernels in :mod:`repro.fastpath.kernels` iterate over these
arrays with plain integer indexing instead of chasing ``TreeNode``
attribute pointers, which is where most of the reference partitioners'
constant factor goes.

The arrays are built in **one pass** over ``tree.nodes``. That works
because :class:`~repro.tree.node.Tree` assigns dense ids in creation
order and every construction path (``add_child`` / ``insert_child``)
creates parents before children, so ``parent[i] < i`` for every non-root
``i``. The same invariant makes subtree weights a single *descending-id*
accumulation — a postorder without any traversal bookkeeping.

A ``FlatTree`` is round-trippable: :meth:`FlatTree.to_tree` rebuilds an
equivalent :class:`~repro.tree.node.Tree` (same ids, labels, weights,
kinds, contents and sibling order). Because the arrays are plain lists of
ints/strings, a ``FlatTree`` also pickles cheaply, which the parallel
bulk loader uses to ship worker results between processes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TreeError
from repro.tree.node import NodeKind, Tree


class FlatTree:
    """Immutable flat-array snapshot of a :class:`~repro.tree.node.Tree`.

    Attributes (all indexed by node id; ``-1`` encodes "none"):

    ``parent``
        parent id (``-1`` for the root),
    ``weight`` / ``subtree_weight``
        node weight ``w(v)`` and subtree weight ``W_T(v)``,
    ``first_child`` / ``next_sibling``
        classic binary-tree links in sibling order,
    ``child_offset`` / ``child_ids``
        CSR children view: the children of ``v`` in sibling order are
        ``child_ids[child_offset[v]:child_offset[v + 1]]``,
    ``labels`` / ``kinds`` / ``contents``
        payload columns, kept so ``to_tree`` is an exact round trip.
    """

    __slots__ = (
        "n",
        "parent",
        "weight",
        "subtree_weight",
        "first_child",
        "next_sibling",
        "child_offset",
        "child_ids",
        "labels",
        "kinds",
        "contents",
    )

    def __init__(
        self,
        n: int,
        parent: list[int],
        weight: list[int],
        subtree_weight: list[int],
        first_child: list[int],
        next_sibling: list[int],
        child_offset: list[int],
        child_ids: list[int],
        labels: list[str],
        kinds: list[int],
        contents: list[Optional[str]],
    ):
        self.n = n
        self.parent = parent
        self.weight = weight
        self.subtree_weight = subtree_weight
        self.first_child = first_child
        self.next_sibling = next_sibling
        self.child_offset = child_offset
        self.child_ids = child_ids
        self.labels = labels
        self.kinds = kinds
        self.contents = contents

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_tree(cls, tree: Tree) -> "FlatTree":
        """Flatten ``tree`` into arrays in a single pass over its nodes."""
        nodes = tree.nodes
        n = len(nodes)
        parent = [-1] * n
        weight = [0] * n
        first_child = [-1] * n
        next_sibling = [-1] * n
        child_offset = [0] * (n + 1)
        child_ids: list[int] = []
        labels: list[str] = []
        kinds: list[int] = []
        contents: list[Optional[str]] = []
        for i, node in enumerate(nodes):
            if node.node_id != i:
                raise TreeError(f"node at position {i} has id {node.node_id}")
            weight[i] = node.weight
            labels.append(node.label)
            kinds.append(int(node.kind))
            contents.append(node.content)
            par = node.parent
            if par is not None:
                pid = par.node_id
                if pid >= i:
                    raise TreeError(f"node {i} created before its parent {pid}")
                parent[i] = pid
            children = node.children
            if children:
                first_child[i] = children[0].node_id
                prev = children[0].node_id
                for child in children[1:]:
                    cid = child.node_id
                    next_sibling[prev] = cid
                    prev = cid
                child_ids.extend(c.node_id for c in children)
            child_offset[i + 1] = len(child_ids)
        subtree_weight = weight[:]
        for i in range(n - 1, 0, -1):
            subtree_weight[parent[i]] += subtree_weight[i]
        return cls(
            n,
            parent,
            weight,
            subtree_weight,
            first_child,
            next_sibling,
            child_offset,
            child_ids,
            labels,
            kinds,
            contents,
        )

    # ------------------------------------------------------------------
    # round trip

    def children(self, node_id: int) -> list[int]:
        """The child ids of ``node_id`` in sibling order."""
        return self.child_ids[self.child_offset[node_id] : self.child_offset[node_id + 1]]

    def to_tree(self) -> Tree:
        """Rebuild an equivalent :class:`Tree` (exact round trip).

        Nodes are recreated in id order so the new tree assigns the same
        dense ids. For trees built purely with ``add_child`` the sibling
        order equals the id order and children are appended directly; a
        parent whose CSR child list is *not* id-sorted (``insert_child``
        was used) gets its children placed via positional insertion.
        """
        kinds = self.kinds
        labels = self.labels
        contents = self.contents
        weight = self.weight
        tree = Tree(labels[0], weight[0], NodeKind(kinds[0]), contents[0])
        parent = self.parent
        offset = self.child_offset
        child_ids = self.child_ids
        # Final sibling position of every node under its parent.
        position = [0] * self.n
        sorted_children = [True] * self.n
        for v in range(self.n):
            prev = -1
            for slot, cid in enumerate(child_ids[offset[v] : offset[v + 1]]):
                position[cid] = slot
                if cid < prev:
                    sorted_children[v] = False
                prev = cid
        nodes = tree.nodes
        for i in range(1, self.n):
            pid = parent[i]
            par = nodes[pid]
            kind = NodeKind(kinds[i])
            if sorted_children[pid]:
                tree.add_child(par, labels[i], weight[i], kind, contents[i])
            else:
                # Among the already-created siblings (all with id < i),
                # count how many precede i in the final order.
                pos = 0
                for cid in child_ids[offset[pid] : offset[pid + 1]]:
                    if cid < i and position[cid] < position[i]:
                        pos += 1
                tree.insert_child(par, pos, labels[i], weight[i], kind, contents[i])
        return tree

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatTree(n={self.n}, weight={self.subtree_weight[0] if self.n else 0})"
