"""Parallel bulk load: independent top-level subtrees, ordered merge.

The streaming cut strategies (:mod:`repro.bulkload.strategies`) make all
their decisions per closing frame, so the import of one top-level element
subtree (a child of the document element) never depends on any other —
the only coupling points are the document root's own frame and the spill
machinery. Without a spill threshold the sequential loader therefore
decomposes exactly:

1. **Split.** The event stream is parsed once and sliced into one chunk
   per top-level element subtree (plus the document-level events the main
   process keeps: root start/end, root attributes, inter-chunk text).
2. **Fan out.** Each chunk goes to a ``multiprocessing`` worker that runs
   the ordinary :class:`~repro.bulkload.importer.BulkLoader` machinery
   with *local* node ids ``0..m-1`` and returns its partition intervals,
   its closing :class:`~repro.bulkload.strategies.ChildSummary` and a
   picklable :class:`~repro.fastpath.flat.FlatTree` of the subtree.
3. **Ordered merge.** The main process grafts worker trees in document
   order. Node ids are assigned in creation order, so a subtree whose
   root gets global id ``base`` occupies exactly ``base..base+m-1`` — the
   worker's local ids shift by ``base`` and every interval / summary
   remaps with one addition. Worker intervals are appended in document
   order, then the root frame closes exactly as in the sequential run.

The merged result is **bit-identical** to ``BulkLoader.load`` on the same
source (asserted by ``tests/fastpath/test_parallel.py``), including node
ids, the tree and the emission order of intervals.

Journal/crash-resume semantics are preserved: a parallel run journals
``begin`` + ``commit`` with no interior seals — precisely what a
sequential no-spill run writes — so an interrupted parallel import is
completed by the ordinary sequential
:func:`~repro.bulkload.journal.resume_import` replay, whose
committed-run verification then matches because the outputs are
identical. Spill thresholds are rejected: spilling couples frames across
subtrees and is inherently sequential.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Iterable, Optional

from repro import telemetry
from repro.bulkload.importer import BulkLoader, ImportResult, _LoadState
from repro.bulkload.journal import ImportJournal, source_fingerprint
from repro.bulkload.strategies import STRATEGY_CLASSES, ChildSummary
from repro.errors import JournalError, ReproError, XmlFormatError
from repro.fastpath.flat import FlatTree
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import NodeKind, Tree
from repro.xmlio.events import (
    Characters,
    EndDocument,
    EndElement,
    ParseEvent,
    StartDocument,
    StartElement,
)
from repro.xmlio.parser import Source, iter_events
from repro.xmlio.weights import SlotWeightModel


def _load_chunk(args: tuple) -> tuple:
    """Worker: import one top-level subtree with local node ids.

    Module-level so it pickles under every multiprocessing start method.
    Fork-safe by construction (repro-lint rule CC002): everything the
    worker touches is built locally from the pickled ``args`` — no
    module-level lock, open file, or RNG is reachable from here, so the
    fan-out behaves identically under ``fork`` and ``spawn``.
    Returns ``(flat_tree, intervals, summary_fields, peak, total, events)``
    where intervals are ``(left, right, freed)`` triples in emission order
    and all node ids are local (0 = subtree root).
    """
    algorithm, limit, wm, strip_whitespace, events = args
    loader = BulkLoader(
        algorithm=algorithm,
        limit=limit,
        spill_threshold=None,
        weight_model=wm,
        strip_whitespace=strip_whitespace,
    )
    state = _LoadState(loader)
    emitted: list[tuple[int, int, int]] = []
    original_emit = state._emit

    def record_emit(interval: SiblingInterval, freed: int) -> None:
        emitted.append((interval.left, interval.right, freed))
        original_emit(interval, freed)

    state._emit = record_emit  # type: ignore[method-assign]
    state.strategy = STRATEGY_CLASSES[algorithm](limit, record_emit)
    for event in events:
        state.handle(event)
    state._flush_text()
    if state.frames:
        raise XmlFormatError("subtree chunk ended with unclosed elements")
    summary = state.root_summary
    assert summary is not None and state.tree is not None
    fields = (
        summary.node_id,
        summary.own_weight,
        summary.residual,
        summary.emitted,
        summary.first_child,
        summary.first_chain_end,
        summary.res_first,
    )
    return (
        FlatTree.from_tree(state.tree),
        emitted,
        fields,
        state.peak_resident,
        state.total_weight,
        state.events,
    )


class ParallelBulkLoader:
    """Multi-process bulk import with deterministic ordered merge.

    Accepts the :class:`~repro.bulkload.importer.BulkLoader` parameters
    minus ``spill_threshold`` (parallel mode never spills), plus
    ``workers``: the pool size, default ``os.cpu_count()``. ``workers=1``
    (or a failing pool) degrades to in-process chunk execution with the
    same split/merge code path and identical output.
    """

    def __init__(
        self,
        algorithm: str = "ekm",
        limit: int = 256,
        workers: Optional[int] = None,
        weight_model: Optional[SlotWeightModel] = None,
        strip_whitespace: bool = True,
    ):
        if algorithm not in STRATEGY_CLASSES:
            raise ReproError(
                f"unknown streaming algorithm {algorithm!r}; "
                f"available: {', '.join(STRATEGY_CLASSES)}"
            )
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.algorithm = algorithm
        self.limit = limit
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.wm = weight_model or SlotWeightModel()
        self.strip_whitespace = strip_whitespace

    # ------------------------------------------------------------------

    def load(self, source: Source, journal_path: Optional[str] = None) -> ImportResult:
        """Import ``source``; with ``journal_path`` the run is crash-safe
        (sequential ``resume_import`` completes an interrupted run)."""
        journal = None
        if journal_path is not None:
            journal = ImportJournal(journal_path)
            if os.path.exists(journal.path) and os.path.getsize(journal.path) > 0:
                raise JournalError(
                    f"journal {journal.path} already exists; an interrupted "
                    "run must be completed with resume_import()"
                )
            journal.open()
            # Same header a sequential no-spill run writes, so the
            # resume replay reconstructs an equivalent loader.
            journal.begin(
                algorithm=self.algorithm,
                limit=self.limit,
                spill_threshold=None,
                strip_whitespace=self.strip_whitespace,
                source_sha256=source_fingerprint(source),
            )
        try:
            with telemetry.span("bulkload.parallel", algorithm=self.algorithm):
                result = self._load_events(iter_events(source), journal)
            if telemetry.enabled():
                telemetry.count("bulkload.parallel.runs")
                telemetry.count("bulkload.events", result.events)
                telemetry.count("bulkload.partitions", result.emitted_partitions)
                telemetry.count("bulkload.nodes", len(result.tree))
            return result
        finally:
            if journal is not None:
                journal.close()

    # ------------------------------------------------------------------

    def _load_events(
        self, events: Iterable[ParseEvent], journal: Optional[ImportJournal]
    ) -> ImportResult:
        chunks, plan = self._split(events)
        outputs = self._run_chunks(chunks)
        return self._merge(plan, outputs, journal)

    def _split(
        self, events: Iterable[ParseEvent]
    ) -> tuple[list[tuple[ParseEvent, ...]], list]:
        """Slice the stream into top-level subtree chunks.

        Returns the chunks plus the document-level *plan*: an ordered list
        of ``("root", StartElement)``, ``("text", str)``, ``("chunk", i)``
        and ``("end", event_count)`` steps the merge replays.
        """
        chunks: list[tuple[ParseEvent, ...]] = []
        plan: list = []
        depth = 0
        total_events = 0
        current: list[ParseEvent] = []
        pending_text: list[str] = []  # root-level text, merged like the
        saw_root = False  # sequential loader's pending_text buffer

        def flush_text() -> None:
            if pending_text:
                plan.append(("text", "".join(pending_text)))
                pending_text.clear()

        for event in events:
            total_events += 1
            if isinstance(event, (StartDocument, EndDocument)):
                continue
            if depth >= 2 or (depth == 1 and isinstance(event, StartElement)):
                # Inside (or starting) a top-level subtree.
                if not current:
                    flush_text()
                current.append(event)
                if isinstance(event, StartElement):
                    depth += 1
                elif isinstance(event, EndElement):
                    depth -= 1
                    if depth == 1:
                        chunks.append(tuple(current))
                        plan.append(("chunk", len(chunks) - 1))
                        current = []
                continue
            if isinstance(event, StartElement):  # depth 0: the document root
                if saw_root:
                    raise XmlFormatError("multiple document elements")
                saw_root = True
                depth = 1
                plan.append(("root", event))
            elif isinstance(event, EndElement):
                if depth != 1:
                    raise XmlFormatError("unbalanced closing tag")
                flush_text()
                depth = 0
            elif isinstance(event, Characters):
                if not saw_root or depth == 0:
                    if self.strip_whitespace and not event.text.strip():
                        continue
                    raise XmlFormatError("character data outside the document element")
                pending_text.append(event.text)
        if depth != 0 or current:
            raise XmlFormatError("document ended with unclosed elements")
        if not saw_root:
            raise XmlFormatError("document contains no elements")
        plan.append(("end", total_events))
        return chunks, plan

    def _run_chunks(self, chunks: list[tuple[ParseEvent, ...]]) -> list[tuple]:
        """Execute chunks, preserving order. Falls back to in-process
        execution when a pool is pointless (0/1 chunks, 1 worker) or
        cannot be created."""
        args = [
            (self.algorithm, self.limit, self.wm, self.strip_whitespace, chunk)
            for chunk in chunks
        ]
        workers = min(self.workers, len(args))
        if workers > 1:
            try:
                ctx = get_context()
                with ctx.Pool(processes=workers) as pool:
                    return pool.map(_load_chunk, args)
            except OSError:  # pool creation can fail in sandboxes
                telemetry.count("bulkload.parallel.pool_fallbacks")
        return [_load_chunk(a) for a in args]

    def _merge(
        self,
        plan: list,
        outputs: list[tuple],
        journal: Optional[ImportJournal],
    ) -> ImportResult:
        """Deterministic ordered merge, replaying the document-level plan."""
        limit = self.limit
        wm = self.wm
        strategy_cls = STRATEGY_CLASSES[self.algorithm]
        intervals: list[SiblingInterval] = []
        tree: Optional[Tree] = None
        root_children: list[ChildSummary] = []
        root_weight = 0
        peak = 0
        total_weight = 0
        total_events = 0
        emit = lambda iv, freed: intervals.append(iv)  # noqa: E731 — merge never spills
        strategy = strategy_cls(limit, emit)
        for step, payload in plan:
            if step == "root":
                event = payload
                root_weight = wm.element_weight()
                tree = Tree(event.name, root_weight, NodeKind.ELEMENT)
                total_weight += root_weight
                for name, value in event.attributes:
                    aw = wm.attribute_weight(value)
                    attr = tree.add_child(tree.root, name, aw, NodeKind.ATTRIBUTE, value)
                    total_weight += aw
                    root_children.append(strategy.leaf_summary(attr.node_id, aw))
            elif step == "text":
                text = payload
                if self.strip_whitespace and not text.strip():
                    continue
                assert tree is not None
                weight = wm.text_weight(text)
                node = tree.add_child(tree.root, "#text", weight, NodeKind.TEXT, text)
                total_weight += weight
                root_children.append(strategy.leaf_summary(node.node_id, weight))
            elif step == "chunk":
                flat, emitted, fields, chunk_peak, chunk_total, _chunk_events = outputs[
                    payload
                ]
                assert tree is not None
                base = len(tree.nodes)
                self._graft(tree, flat)
                for left, right, _freed in emitted:
                    intervals.append(SiblingInterval(left + base, right + base))
                summary = ChildSummary(
                    node_id=fields[0] + base,
                    own_weight=fields[1],
                    residual=fields[2],
                    emitted=fields[3],
                    first_child=fields[4] + base if fields[4] >= 0 else -1,
                    first_chain_end=fields[5] + base if fields[5] >= 0 else -1,
                    res_first=fields[6],
                )
                root_children.append(summary)
                peak = max(peak, chunk_peak)
                total_weight += chunk_total
            else:  # "end"
                total_events = payload
        assert tree is not None
        # Close the document root exactly like the sequential loader.
        from repro.bulkload.strategies import Frame

        root_frame = Frame(node_id=0, weight=root_weight)
        root_frame.children = root_children
        summary = strategy.close(root_frame)
        if summary.own_weight + summary.res_first > limit and summary.res_first:
            intervals.append(
                SiblingInterval(summary.first_child, summary.first_chain_end)
            )
        intervals.append(SiblingInterval(0, 0))
        if journal is not None:
            journal.commit(total_events, intervals, len(tree))
        return ImportResult(
            partitioning=Partitioning(intervals),
            tree=tree,
            peak_resident_weight=max(peak, root_weight),
            final_resident_weight=0,
            total_weight=total_weight,
            emitted_partitions=len(intervals),
            spills=0,
            events=total_events,
            seals=0,
            resumed=False,
        )

    @staticmethod
    def _graft(tree: Tree, flat: FlatTree) -> None:
        """Append a worker's subtree below the document root.

        Worker trees are parser-built (``add_child`` only), so sibling
        order equals id order and a single id-order pass reattaches every
        node under ``base + parent``.
        """
        base = len(tree.nodes)
        nodes = tree.nodes
        add_child = tree.add_child
        parent = flat.parent
        weight = flat.weight
        labels = flat.labels
        kinds = flat.kinds
        contents = flat.contents
        add_child(tree.root, labels[0], weight[0], NodeKind(kinds[0]), contents[0])
        for i in range(1, flat.n):
            add_child(
                nodes[base + parent[i]],
                labels[i],
                weight[i],
                NodeKind(kinds[i]),
                contents[i],
            )
