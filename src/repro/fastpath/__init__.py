"""repro.fastpath — flat-array kernels and DAG memoization (docs/PERFORMANCE.md).

The fast path accelerates the DP partitioners (and the bulk loader) while
producing results bit-identical to the reference implementations:

* :class:`~repro.fastpath.flat.FlatTree` — structure-of-arrays snapshot
  of a :class:`~repro.tree.node.Tree` (parent / first-child /
  next-sibling / weight / subtree-weight plus a CSR children view).
* :mod:`repro.fastpath.kernels` — iterative DHW / GHDW / FDW kernels
  over those arrays.
* :class:`~repro.fastpath.cache.FastpathCache` — subtree-shape
  hash-consing with an LRU-bounded per-``(shape, capacity)`` DP result
  cache (``fastpath.cache.{hit,miss,evict}`` telemetry counters).
* :class:`~repro.fastpath.parallel.ParallelBulkLoader` — bulk load that
  fans independent top-level subtrees over a ``multiprocessing`` pool
  with a deterministic ordered merge.

Selection: ``Partitioner(fastpath=True/False)`` per instance, or the
``REPRO_FASTPATH`` environment variable for whole sessions (the
constructor argument wins). The fast path auto-disables under an active
explain scope and under ``collect_stats=True`` — both need the reference
implementation's per-decision bookkeeping.
"""

from __future__ import annotations

import os

from repro.fastpath.cache import FastpathCache, clear_default_cache, default_cache
from repro.fastpath.flat import FlatTree
from repro.fastpath.kernels import dhw_fastpath, fdw_fastpath, ghdw_fastpath

#: environment switch: "1"/"true"/"on"/"yes" enable the fast path for
#: every capable partitioner whose ``fastpath`` argument was left unset
FASTPATH_ENV = "REPRO_FASTPATH"

_TRUTHY = frozenset({"1", "true", "on", "yes"})


def env_enabled() -> bool:
    """Does ``REPRO_FASTPATH`` request the fast path for this session?"""
    return os.environ.get(FASTPATH_ENV, "").strip().lower() in _TRUTHY


__all__ = [
    "FASTPATH_ENV",
    "FastpathCache",
    "FlatTree",
    "clear_default_cache",
    "default_cache",
    "dhw_fastpath",
    "env_enabled",
    "fdw_fastpath",
    "ghdw_fastpath",
]
