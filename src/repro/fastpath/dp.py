"""Fast-path variant of the shared :class:`~repro.partition.flatdp.FlatDP`.

The reference solver recomputes, for every cell ``D(s, j)``, the
candidate-2 scan of Lemma 2: it re-accumulates interval weights, re-checks
the feasibility break and — in DHW's deltas mode — re-derives the Lemma-5
downgrade picks with a full sort per ``(j, m)`` interval. All of that is
independent of the row's base root weight ``s``: the interval
``(c_{j-m}, c_j)`` has the same weight, the same feasibility and the same
pick set in every row. On wide nodes (a corpus root with thousands of
children) the reference therefore pays the scan once per *cell* where
once per *column* suffices.

:class:`FastFlatDP` hoists the scan: the first cell of column ``j``
materializes an ``(idx, extra, nearlyopt)`` candidate list; every later
row replays it with nothing but a chain lookup and the card/lean
comparison. Downgrade picks are maintained incrementally — extending the
interval head adds exactly one candidate, inserted with
:func:`bisect.insort` into a ``(-delta, index)``-ordered pool, which
reproduces the reference's stable descending-delta sort order exactly
(equal deltas tie-break by ascending child index in both).

The recurrence, tie-breaking and entry encoding are untouched — entries
remain interchangeable with the reference's and
:func:`~repro.partition.flatdp.chain_intervals` applies unchanged. The
equivalence suite in ``tests/fastpath/`` pins bit-identical output.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.partition.flatdp import INF, INFEASIBLE_ENTRY, Entry, FlatDP

#: per-column candidate tuple: (begin index, card increment, downgrades)
Candidate = tuple[int, int, tuple[int, ...]]


class FastFlatDP(FlatDP):
    """Drop-in :class:`FlatDP` with per-column candidate hoisting."""

    __slots__ = ("_candidates",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._candidates: dict[int, list[Candidate]] = {}

    def _compute(self, s: int, j: int) -> Entry:
        cw = self.cw
        cols = self.cols
        limit = self.limit

        # Candidate 1: c_j joins the root partition — share D(s + cw_j, j-1).
        s2 = s + cw[j - 1]
        best = cols[j - 1][s2] if s2 <= limit else INFEASIBLE_ENTRY
        best_card = best[0]
        best_rw = best[1]

        # Candidate 2: append an interval (c_{j-m}, c_j) to D(s, j-m-1),
        # replaying the hoisted s-independent candidate list.
        candidates = self._candidates.get(j)
        if candidates is None:
            candidates = self._scan_column(j)
            self._candidates[j] = candidates
        end = j - 1
        for idx, extra, nearlyopt in candidates:
            prev = cols[idx][s]
            prev_card = prev[0]
            if prev_card is INF:
                continue
            crd = prev_card + extra
            rw = prev[1]
            if crd < best_card or (crd == best_card and rw < best_rw):
                best_card = crd
                best_rw = rw
                best = (crd, rw, idx, end, nearlyopt, prev)
        return best

    def _scan_column(self, j: int) -> list[Candidate]:
        """The s-independent part of Lemma 2's candidate-2 loop for column
        ``j``, in the reference's ``m`` order (shortest interval first)."""
        cw = self.cw
        deltas = self.deltas
        limit = self.limit
        out: list[Candidate] = []
        w = 0
        max_m = j if j < limit else limit
        if deltas is None:
            for m in range(max_m):
                idx = j - m - 1
                w += cw[idx]
                if w > limit:
                    break
                out.append((idx, 1, ()))
            return out
        exclude = self.exclude_endpoints
        # Downgrade candidates ordered by (delta desc, index asc) — the
        # stable-sort order of the reference's _pick_nearly_optimal.
        pool: list[tuple[int, int]] = []
        dw = 0
        for m in range(max_m):
            idx = j - m - 1
            w += cw[idx]
            dw += deltas[idx]
            if w - dw > limit:
                # Even downgrading every member cannot make the interval
                # fit; wider intervals only get heavier.
                break
            if exclude:
                # Interval endpoints never need a downgrade (Sec. 3.3.6):
                # candidates are begin+1 .. j-2, so extending the head by
                # one admits the *previous* head (none before m == 2).
                if m >= 2:
                    joined = idx + 1
                    if deltas[joined] > 0:
                        insort(pool, (-deltas[joined], joined))
            elif deltas[idx] > 0:
                insort(pool, (-deltas[idx], idx))
            if w <= limit:
                out.append((idx, 1, ()))
                continue
            picks = self._walk_picks(pool, w)
            if picks is not None:
                out.append((idx, 1 + len(picks), picks))
        return out

    def _walk_picks(
        self, pool: list[tuple[int, int]], w: int
    ) -> Optional[tuple[int, ...]]:
        """Greedy Lemma-5 downgrade selection off the sorted pool."""
        limit = self.limit
        picks: list[int] = []
        for neg_delta, i in pool:
            if w <= limit:
                break
            w += neg_delta
            picks.append(i)
        if w > limit:
            return None
        return tuple(picks)
