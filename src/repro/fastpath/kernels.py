"""Iterative fast-path kernels for DHW / GHDW / FDW.

Each kernel is the reference algorithm re-expressed over a
:class:`~repro.fastpath.flat.FlatTree`: one descending-id loop replaces
the postorder generator (children have larger ids than parents, so the
loop sees every subtree solution before its parent consumes it), and all
child access goes through the CSR arrays — no ``TreeNode`` attribute
lookups and no recursion in the hot loop.

Two observations carry the speedup:

* **Trivial fit.** If a node's *subtree* weight is at most ``K``, the
  optimal solution is provably the empty chain with root weight
  ``W_T(v)`` (candidate 1 of Lemma 2 applies at every step), so entire
  below-capacity subtrees collapse in O(1) per node without touching the
  DP. GHDW and FDW skip those nodes outright; DHW still derives the
  nearly-optimal variant (Lemma 4) because ancestors may downgrade them.
* **Shape memoization.** The DP answer for a subtree depends only on its
  shape (weights + sibling order), so solved shapes are replayed from the
  :class:`~repro.fastpath.cache.FastpathCache` instead of re-running the
  DP — once per distinct shape instead of once per node.

Every kernel produces a :class:`~repro.partition.interval.Partitioning`
**bit-identical** to its reference implementation: the non-trivial solves
run :class:`~repro.fastpath.dp.FastFlatDP` — the reference
:class:`~repro.partition.flatdp.FlatDP` recurrence with its s-independent
candidate scan hoisted per column (same tie-breaking, same lean rule,
same Lemma-4/5 handling) — and the
equivalence suite in ``tests/fastpath/`` pins that across randomized
trees. ``tests/fastpath/test_equivalence.py`` is the contract; any change
here must keep it green.
"""

from __future__ import annotations

from typing import Optional

from repro import telemetry
from repro.errors import TreeError
from repro.fastpath.cache import FastpathCache, default_cache
from repro.fastpath.dp import FastFlatDP
from repro.fastpath.flat import FlatTree
from repro.partition.flatdp import CARD, INF, ROOTWEIGHT, chain_intervals
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree

#: cache-key mode tags. FDW shares GHDW's records: on a flat tree both
#: run the identical plain DP, so the same shape yields the same chain.
MODE_DHW = "dhw"
MODE_GHDW = "ghdw"

#: record field indices: (opt_chain, opt_rootweight, near_chain, delta)
OPT_CHAIN, OPT_RW, NEAR_CHAIN, DELTA = range(4)


def _solve_shape(
    own_weight: int,
    child_weights: list[int],
    limit: int,
    child_deltas: Optional[list[int]],
    exclude_endpoints: bool,
    want_near: bool,
) -> tuple:
    """Solve one flat subproblem; chains are (begin, end, nearlyopt)
    triples of 0-based child indices in right-to-left construction order
    (the exact :func:`~repro.partition.flatdp.chain_intervals` encoding).
    """
    dp = FastFlatDP(
        child_weights,
        limit,
        deltas=child_deltas if want_near else None,
        exclude_endpoints=exclude_endpoints,
    )
    total = own_weight + sum(child_weights)
    if total <= limit:
        # Candidate 1 of Lemma 2 is feasible at every step, so the DP's
        # answer is the cardinality-0 base entry with root weight W_T(v).
        opt_chain: tuple = ()
        opt_rw = total
        opt_card = 0
    else:
        opt = dp.top_entry(own_weight)
        assert opt[CARD] is not INF, "fastpath subproblem must be feasible"
        opt_chain = tuple(chain_intervals(opt))
        opt_rw = opt[ROOTWEIGHT]
        opt_card = opt[CARD]
    near_chain = None
    delta = 0
    if want_near:
        # Lemma 4: read the nearly-optimal variant off the same table at
        # the inflated base root weight.
        s_q = own_weight + limit - opt_rw + 1
        if s_q <= limit:
            near = dp.top_entry(s_q)
            if near[CARD] is not INF:
                assert near[CARD] >= opt_card + 1
                if near[CARD] == opt_card + 1:
                    near_chain = tuple(chain_intervals(near))
                    delta = limit + 1 - near[ROOTWEIGHT]
                    assert delta > 0
    return (opt_chain, opt_rw, near_chain, delta)


# ----------------------------------------------------------------------
# DHW


def dhw_fastpath(
    tree: Tree,
    limit: int,
    *,
    exclude_endpoints: bool = False,
    cache: Optional[FastpathCache] = None,
) -> Partitioning:
    """Fast-path DHW: flatten, collapse bottom-up, extract top-down."""
    if cache is None:
        cache = default_cache()
    with telemetry.span("dhw.fastpath"):
        with telemetry.span("dhw.fastpath.flatten"):
            ft = FlatTree.from_tree(tree)
            shapes = cache.shape_ids(ft)
        with telemetry.span("dhw.fastpath.dp"):
            records = _dhw_collapse(ft, shapes, limit, exclude_endpoints, cache)
        with telemetry.span("dhw.fastpath.extract"):
            intervals = _dhw_extract(ft, records)
    cache.flush_counters()
    return Partitioning(intervals)


def _dhw_collapse(
    ft: FlatTree,
    shapes: list[int],
    limit: int,
    exclude_endpoints: bool,
    cache: FastpathCache,
) -> list[Optional[tuple]]:
    """Per-node solution records, children before parents (Fig. 7)."""
    n = ft.n
    weight = ft.weight
    offset = ft.child_offset
    child_ids = ft.child_ids
    opt_rw = [0] * n
    delta = [0] * n
    records: list[Optional[tuple]] = [None] * n
    cache_get = cache.get
    cache_put = cache.put
    for v in range(n - 1, -1, -1):
        lo = offset[v]
        hi = offset[v + 1]
        if lo == hi:  # leaf: empty chain, no record needed
            opt_rw[v] = weight[v]
            continue
        key = (MODE_DHW, shapes[v], limit, exclude_endpoints)
        rec = cache_get(key)
        if rec is None:
            children = child_ids[lo:hi]
            rec = _solve_shape(
                weight[v],
                [opt_rw[c] for c in children],
                limit,
                [delta[c] for c in children],
                exclude_endpoints,
                want_near=True,
            )
            cache_put(key, rec)
        records[v] = rec
        opt_rw[v] = rec[OPT_RW]
        delta[v] = rec[DELTA]
    return records


def _dhw_extract(ft: FlatTree, records: list[Optional[tuple]]) -> set[SiblingInterval]:
    """Top-down D-/Q-chain choice, mirroring ``DHWPartitioner._extract``."""
    offset = ft.child_offset
    child_ids = ft.child_ids
    intervals = {SiblingInterval(0, 0)}
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        v, use_near = stack.pop()
        rec = records[v]
        if rec is None:  # leaf
            continue
        chain = rec[NEAR_CHAIN] if use_near else rec[OPT_CHAIN]
        assert chain is not None
        children = child_ids[offset[v] : offset[v + 1]]
        near_children: set[int] = set()
        for begin, end, nearly in chain:
            intervals.add(SiblingInterval(children[begin], children[end]))
            near_children.update(nearly)
        for idx, child in enumerate(children):
            stack.append((child, idx in near_children))
    return intervals


# ----------------------------------------------------------------------
# GHDW


def ghdw_fastpath(
    tree: Tree, limit: int, *, cache: Optional[FastpathCache] = None
) -> Partitioning:
    """Fast-path GHDW: one bottom-up collapse, intervals emitted inline."""
    if cache is None:
        cache = default_cache()
    with telemetry.span("ghdw.fastpath"):
        with telemetry.span("ghdw.fastpath.flatten"):
            ft = FlatTree.from_tree(tree)
            shapes = cache.shape_ids(ft)
        with telemetry.span("ghdw.fastpath.dp"):
            intervals = _ghdw_collapse(ft, shapes, limit, cache)
    cache.flush_counters()
    return Partitioning(intervals)


def _ghdw_collapse(
    ft: FlatTree, shapes: list[int], limit: int, cache: FastpathCache
) -> set[SiblingInterval]:
    n = ft.n
    weight = ft.weight
    subtree_weight = ft.subtree_weight
    offset = ft.child_offset
    child_ids = ft.child_ids
    opt_rw = [0] * n
    intervals = {SiblingInterval(0, 0)}
    cache_get = cache.get
    cache_put = cache.put
    for v in range(n - 1, -1, -1):
        if subtree_weight[v] <= limit:
            # Trivial fit: the whole subtree joins one partition; no
            # descendant of v emits an interval either (their subtrees
            # fit a fortiori), so they all take this branch.
            opt_rw[v] = subtree_weight[v]
            continue
        lo = offset[v]
        hi = offset[v + 1]
        children = child_ids[lo:hi]
        key = (MODE_GHDW, shapes[v], limit)
        rec = cache_get(key)
        if rec is None:
            rec = _solve_shape(
                weight[v],
                [opt_rw[c] for c in children],
                limit,
                None,
                False,
                want_near=False,
            )
            cache_put(key, rec)
        opt_rw[v] = rec[OPT_RW]
        for begin, end, _nearly in rec[OPT_CHAIN]:
            intervals.add(SiblingInterval(children[begin], children[end]))
    return intervals


# ----------------------------------------------------------------------
# FDW


def fdw_fastpath(
    tree: Tree, limit: int, *, cache: Optional[FastpathCache] = None
) -> Partitioning:
    """Fast-path FDW: a single root-level solve on a flat tree.

    Shares GHDW's cache records — on a flat tree both algorithms run the
    identical plain DP over the leaf weights.
    """
    if cache is None:
        cache = default_cache()
    with telemetry.span("fdw.fastpath"):
        ft = FlatTree.from_tree(tree)
        if ft.child_offset[1] != ft.n - 1:
            raise TreeError(
                "fdw_partition_flat requires a flat tree (all children are leaves)"
            )
        intervals = {SiblingInterval(0, 0)}
        if ft.subtree_weight[0] > limit:
            shapes = cache.shape_ids(ft)
            children = ft.child_ids[ft.child_offset[0] : ft.child_offset[1]]
            key = (MODE_GHDW, shapes[0], limit)
            rec = cache.get(key)
            if rec is None:
                rec = _solve_shape(
                    ft.weight[0],
                    [ft.weight[c] for c in children],
                    limit,
                    None,
                    False,
                    want_near=False,
                )
                cache.put(key, rec)
            for begin, end, _nearly in rec[OPT_CHAIN]:
                intervals.add(SiblingInterval(children[begin], children[end]))
    cache.flush_counters()
    return Partitioning(intervals)
