"""DAG-aware memoization for the fast-path DP kernels.

Real XML is dominated by repeated subtree shapes (relational exports
repeat one record template thousands of times), so the kernels pay the
flat DP once per *distinct* shape instead of once per node:

* **Shape interning (hash-consing).** Two subtrees share a shape id iff
  they have the same node weight and the same ordered child shapes —
  ``shape(v) = intern((w(v), (shape(c1), ..., shape(ck))))``. Labels and
  contents are irrelevant: the DP only sees weights and sibling order.
* **DP result cache.** For a fixed algorithm mode and capacity, the
  optimal (and for DHW the nearly-optimal) solution of a subtree is a
  pure function of its shape, so solved shapes are cached under
  ``(mode, shape_id, limit, exclude_endpoints)`` and replayed on every
  later occurrence. Cached records store interval chains in *child index*
  space, which maps onto any node with the same shape.

The cache is LRU-bounded (``REPRO_FASTPATH_CACHE`` entries, default
65536). The intern table grows with distinct shapes only; if it exceeds
four times the result bound, both tables are reset together — shape ids
name entries in the result cache, so they must never outlive it.

Kernels report per-run hit/miss/eviction deltas through
``fastpath.cache.{hit,miss,evict}`` telemetry counters.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional

from repro import telemetry
from repro.fastpath.flat import FlatTree

#: environment knob for the LRU bound (entries, not bytes)
CACHE_SIZE_ENV = "REPRO_FASTPATH_CACHE"
DEFAULT_CACHE_SIZE = 65536

#: cached DP record: (opt_intervals, opt_rootweight, near_intervals, delta)
#: where *_intervals are tuples of (begin, end, nearlyopt) child-index
#: triples in right-to-left construction order (see flatdp.chain_intervals)
Record = tuple


def _cache_size_from_env() -> int:
    raw = os.environ.get(CACHE_SIZE_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CACHE_SIZE
    return value if value > 0 else DEFAULT_CACHE_SIZE


class FastpathCache:
    """Shape intern table + LRU-bounded DP result cache.

    An instance is **single-thread property**: lookups mutate LRU order
    and counters without locking, because the kernels cannot afford a
    latch per probe. :func:`default_cache` hands each thread its own
    instance; don't share one across threads without external locking.
    """

    __slots__ = (
        "max_entries",
        "_intern",
        "_records",
        "hits",
        "misses",
        "evictions",
        "_flushed",
    )

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries if max_entries is not None else _cache_size_from_env()
        self._intern: dict[tuple, int] = {}
        self._records: OrderedDict[tuple, Record] = OrderedDict()
        # Cumulative counters; _flushed marks what telemetry already saw.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._flushed = (0, 0, 0)

    # ------------------------------------------------------------------
    # shape interning

    def shape_ids(self, ft: FlatTree) -> list[int]:
        """Shape id of every node of ``ft``, indexed by node id.

        Children have larger ids than their parents, so one descending-id
        loop sees every child's shape before its parent needs it.
        """
        if len(self._intern) > 4 * self.max_entries:
            self.clear()
        intern = self._intern
        n = ft.n
        weight = ft.weight
        offset = ft.child_offset
        child_ids = ft.child_ids
        shapes = [0] * n
        for v in range(n - 1, -1, -1):
            key = (
                weight[v],
                tuple(shapes[c] for c in child_ids[offset[v] : offset[v + 1]]),
            )
            sid = intern.get(key)
            if sid is None:
                sid = len(intern)
                intern[key] = sid
            shapes[v] = sid
        return shapes

    # ------------------------------------------------------------------
    # DP records

    def get(self, key: tuple) -> Optional[Record]:
        record = self._records.get(key)
        if record is None:
            self.misses += 1
            return None
        self._records.move_to_end(key)
        self.hits += 1
        return record

    def put(self, key: tuple, record: Record) -> None:
        records = self._records
        records[key] = record
        if len(records) > self.max_entries:
            records.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # bookkeeping

    def __len__(self) -> int:
        return len(self._records)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot (used by ``repro-stats`` and tests)."""
        return {
            "entries": len(self._records),
            "shapes": len(self._intern),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }

    def clear(self) -> None:
        """Drop the intern table and the record cache together."""
        self._intern.clear()
        self._records.clear()

    def flush_counters(self) -> None:
        """Emit since-last-flush deltas as telemetry counters.

        Kernels call this once per run, so the counters stay out of the
        hot loop and telemetry sees one batched update per run. The
        ``hits``/``misses``/``evictions`` attributes remain cumulative
        for ``stats()`` consumers.
        """
        flushed_hits, flushed_misses, flushed_evictions = self._flushed
        if telemetry.enabled():
            if self.hits > flushed_hits:
                telemetry.count("fastpath.cache.hit", self.hits - flushed_hits)
            if self.misses > flushed_misses:
                telemetry.count("fastpath.cache.miss", self.misses - flushed_misses)
            if self.evictions > flushed_evictions:
                telemetry.count("fastpath.cache.evict", self.evictions - flushed_evictions)
        self._flushed = (self.hits, self.misses, self.evictions)


# The default cache is *per-thread*, not process-wide. A FastpathCache
# does unlocked LRU bookkeeping (`hits += 1`, move_to_end) on every get,
# so a single shared instance would race the moment two threads run
# kernels concurrently (repro-lint rule CC003). Thread-local instances
# keep the hot path completely lock-free — the kernels' bench floors
# leave no room for a latch per lookup — while preserving full
# shape-reuse within each thread.
_tls = threading.local()


def default_cache() -> FastpathCache:
    """This thread's cache, shared by all its fastpath partitioner runs."""
    cache = getattr(_tls, "cache", None)
    if cache is None:
        cache = _tls.cache = FastpathCache()
    return cache


def clear_default_cache() -> None:
    """Reset the calling thread's default cache (tests and benchmark
    cold-start runs). Other threads' caches are untouched — each thread
    owns its cache outright."""
    _tls.cache = None
