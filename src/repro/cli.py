"""User-facing command line: partition, import and query XML documents.

Installed as ``repro`` (see pyproject)::

    repro partition doc.xml --algorithm ekm --limit 256 [--render]
    repro import doc.xml --algorithm ekm --spill-threshold 2048
    repro query doc.xml "//keyword" --algorithm ekm
    repro compare doc.xml --limit 256
    repro stats doc.xml --algorithm ekm --query "//keyword" [--json]
    repro serve --port 8080 --max-concurrency 64
    repro recover journals/store.wal [--trim] [--json]

``repro compare`` runs every registered heuristic on the document and
prints a Table-1-style summary; ``repro stats`` (also installed as
``repro-stats``) runs a full partition/import/store/query pipeline under
an enabled telemetry registry and dumps every metric it collected;
``repro-bench`` (the separate entry point) regenerates the paper's
experiments on the synthetic corpus.

All wall-clock timing goes through :mod:`repro.telemetry` spans — manual
``time.perf_counter()`` arithmetic is flagged by ``repro-lint`` (OBS001).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import telemetry
from repro.bulkload import BulkLoader
from repro.errors import ReproError
from repro.partition import available_algorithms, evaluate_partitioning, get_algorithm
from repro.partition.analysis import analyze_partitioning
from repro.partition.render import render_partitioning
from repro.query import run_query
from repro.storage import DocumentStore
from repro.xmlio import parse_tree


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("document", help="path to an XML file")
    parser.add_argument("--algorithm", default="ekm", help="partitioning algorithm (default: ekm)")
    parser.add_argument("--limit", type=int, default=256, help="weight limit K in slots (default: 256)")


def cmd_partition(args: argparse.Namespace) -> int:
    tree = parse_tree(args.document)
    with telemetry.span("cli.partition", algorithm=args.algorithm) as sp:
        partitioning = get_algorithm(args.algorithm).partition(tree, args.limit)
    elapsed = sp.elapsed
    report = evaluate_partitioning(tree, partitioning, args.limit)
    analysis = analyze_partitioning(tree, partitioning, args.limit)
    print(f"document: {args.document} ({len(tree)} nodes, weight {report.total_weight})")
    print(
        f"{args.algorithm}: {report.cardinality} partitions in {elapsed:.3f}s "
        f"(lower bound {report.lower_bound}, fill {report.fill_factor * 100:.0f}%)"
    )
    print(
        f"root weight {report.root_weight}, max partition {report.max_partition_weight}, "
        f"navigation crossings {analysis.navigation_crossings}"
    )
    if args.render:
        print()
        print(render_partitioning(tree, partitioning, args.limit, max_nodes=args.render_nodes))
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    if args.parallel is not None:
        if args.spill_threshold is not None:
            raise ReproError(
                "--parallel and --spill-threshold are mutually exclusive: "
                "spilling couples subtrees and is inherently sequential"
            )
        from repro.fastpath.parallel import ParallelBulkLoader

        loader: BulkLoader | ParallelBulkLoader = ParallelBulkLoader(
            algorithm=args.algorithm, limit=args.limit, workers=args.parallel
        )
    else:
        loader = BulkLoader(
            algorithm=args.algorithm,
            limit=args.limit,
            spill_threshold=args.spill_threshold,
        )
    with telemetry.span("cli.import", algorithm=args.algorithm) as sp:
        result = loader.load(args.document)
    elapsed = sp.elapsed
    store = DocumentStore.build(result.tree, result.partitioning)
    space = store.space_report()
    print(
        f"imported {len(result.tree)} nodes in {elapsed:.3f}s using "
        f"{args.algorithm} (K={args.limit})"
    )
    print(
        f"partitions: {result.partitioning.cardinality}; peak resident "
        f"{result.peak_resident_weight} slots "
        f"({result.peak_resident_fraction * 100:.1f}% of document), "
        f"{result.spills} spills"
    )
    print(
        f"storage: {space.records} records on {space.pages} pages, "
        f"{space.kib:.0f} KiB ({space.utilization * 100:.0f}% utilized)"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    tree = parse_tree(args.document)
    partitioning = get_algorithm(args.algorithm).partition(tree, args.limit)
    store = DocumentStore.build(tree, partitioning)
    store.warm_up()
    run = run_query(store, args.xpath)
    print(f"{run.result_count} results")
    print(
        f"navigation: {run.intra_steps} intra-record + {run.cross_steps} "
        f"cross-record steps ({run.cross_ratio * 100:.1f}% crossings), "
        f"cost {run.cost:.0f} units"
    )
    if args.show:
        from repro.query import evaluate
        from repro.query.engine import string_value

        for node in evaluate(store, args.xpath)[: args.show]:
            value = string_value(node)
            print(f"  <{node.label}> {value[:60]!r}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    tree = parse_tree(args.document)
    skip = {"brute", "fdw", "fallback"}  # fallback re-runs chain members
    if not args.with_dhw:
        skip.add("dhw")
    print(f"document: {args.document} ({len(tree)} nodes), K={args.limit}")
    print(f"{'algorithm':10s} {'partitions':>10s} {'crossings':>10s} {'seconds':>9s}")
    for name in available_algorithms():
        if name in skip:
            continue
        with telemetry.span("cli.compare", algorithm=name) as sp:
            partitioning = get_algorithm(name).partition(tree, args.limit)
        analysis = analyze_partitioning(tree, partitioning, args.limit)
        print(
            f"{name:10s} {partitioning.cardinality:10d} "
            f"{analysis.navigation_crossings:10d} {sp.elapsed:9.3f}"
        )
    return 0


def _fastpath_comparison(tree, algorithm: str, limit: int) -> dict:
    """Time the reference implementation against the fastpath kernel.

    Runs on a cold shape cache so the reported timings and hit ratio
    describe this document alone; both runs happen inside the caller's
    telemetry registry, so the ``stats.fastpath.*`` spans also land in
    the trace (and the Chrome-trace export, see ``dhw.fastpath``).
    """
    from repro.fastpath import clear_default_cache, default_cache

    name = algorithm if get_algorithm(algorithm).fastpath_capable else "dhw"
    reference = get_algorithm(name)
    reference.fastpath = False
    kernel = get_algorithm(name)
    kernel.fastpath = True
    clear_default_cache()
    with telemetry.span("stats.fastpath.reference") as sp_ref:
        ref_result = reference.partition(tree, limit, check=False)
    with telemetry.span("stats.fastpath.kernel") as sp_fast:
        fast_result = kernel.partition(tree, limit, check=False)
    return {
        "algorithm": name,
        "reference_seconds": sp_ref.elapsed,
        "kernel_seconds": sp_fast.elapsed,
        "speedup": sp_ref.elapsed / sp_fast.elapsed if sp_fast.elapsed else 0.0,
        "identical": ref_result == fast_result,
        "cache": default_cache().stats(),
    }


def _index_comparison(store: DocumentStore, query: str) -> dict:
    """Time window evaluation against pure navigation for one query.

    Runs the query twice — once with no structural index (the engine
    navigates record by record) and once after ``build_index`` (window
    evaluation with partition pruning) — and checks the node-id lists
    match bit for bit.
    """
    from repro.query import evaluate

    store.structural_index = None
    with telemetry.span("stats.index.navigation") as sp_nav:
        nav = run_query(store, query)
    nav_ids = [node.node_id for node in evaluate(store, query)]
    index = store.build_index()
    with telemetry.span("stats.index.window") as sp_win:
        win = run_query(store, query)
    win_ids = [node.node_id for node in evaluate(store, query)]
    return {
        "query": query,
        "navigation_seconds": sp_nav.elapsed,
        "window_seconds": sp_win.elapsed,
        "speedup": sp_nav.elapsed / sp_win.elapsed if sp_win.elapsed else 0.0,
        "identical": nav_ids == win_ids,
        "results": win.result_count,
        "window_steps": win.window_steps,
        "partitions_pruned": win.partitions_pruned,
        "navigation_cost": nav.cost,
        "window_cost": win.cost,
        "index": index.describe(),
    }


def _format_index(comparison: dict) -> str:
    desc = comparison["index"]
    lines = [
        "index ({query}): navigation {navigation_seconds:.3f}s, "
        "window {window_seconds:.3f}s ({speedup:.1f}x), identical "
        "output: {identical}".format(**comparison),
        "index: {results} results via {window_steps} window step(s), "
        "{partitions_pruned} partition(s) pruned; cost "
        "{window_cost:.0f} vs {navigation_cost:.0f} units".format(**comparison),
        f"index: {desc['nodes']} nodes, {desc['records']} records, "
        f"{desc['labels']} labels, valid={desc['valid']}",
    ]
    return "\n".join(lines)


def _format_fastpath(comparison: dict) -> str:
    cache = comparison["cache"]
    lines = [
        "fastpath ({algorithm}): reference {reference_seconds:.3f}s, "
        "kernel {kernel_seconds:.3f}s ({speedup:.1f}x), identical output: "
        "{identical}".format(**comparison),
        f"fastpath cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['hit_ratio'] * 100:.1f}% hit ratio), "
        f"{cache['evictions']} evictions, {cache['entries']} entries "
        f"({cache['shapes']} distinct shapes)",
    ]
    return "\n".join(lines)


def cmd_stats(args: argparse.Namespace) -> int:
    """Run the whole pipeline under a fresh telemetry registry and dump
    everything that was measured."""
    tracing = args.traces or args.slow is not None or args.heat
    tracer = None
    heat = None
    trace_token = None
    with telemetry.capture() as reg:
        if tracing:
            # one request-style trace for the whole CLI pipeline: the
            # engine spans below join it exactly like service requests do
            tracer = telemetry.Tracer(slow_threshold=args.slow)
            reg.add_sink(tracer)
            ctx = tracer.begin("cli-stats", path="cli.stats")
            trace_token = telemetry.set_trace(ctx)
        if args.heat:
            heat = telemetry.HeatAccumulator()
        start = telemetry.clock()
        tree = parse_tree(args.document)
        partitioning = get_algorithm(args.algorithm).partition(tree, args.limit)
        store = DocumentStore.build(tree, partitioning)
        store.warm_up()
        if heat is not None:
            heat.attach(args.document, store)
        if args.query:
            run_query(store, args.query)
        if args.with_import:
            from repro.xmlio.serialize import tree_to_xml

            loader = BulkLoader(algorithm=args.algorithm, limit=args.limit)
            loader.load(tree_to_xml(tree))
        elapsed = telemetry.clock() - start
        if tracer is not None:
            root = telemetry.SpanRecord(
                name="cli.stats",
                path="cli.stats",
                seconds=elapsed,
                depth=0,
                start=start,
                attrs={"document": args.document},
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
            )
            reg.record_span(root)
            tracer.finish(ctx, root, query=args.query, doc=args.document)
            telemetry.reset_trace(trace_token)
        heat_profile = heat.profile() if heat is not None else None
        fastpath = None
        if args.fastpath:
            fastpath = _fastpath_comparison(tree, args.algorithm, args.limit)
        index_report = None
        if args.index:
            if not args.query:
                raise ReproError(
                    "--index times a query two ways; add --query '//label'"
                )
            index_report = _index_comparison(store, args.query)
        if args.jsonl:
            telemetry.export_jsonl(sys.stdout, reg)
        elif args.prom:
            sys.stdout.write(telemetry.prometheus_text(reg))
        elif args.json:
            payload = telemetry.snapshot(reg)
            payload["environment"] = telemetry.environment_fingerprint()
            if fastpath is not None:
                payload["fastpath"] = fastpath
            if index_report is not None:
                payload["index"] = index_report
            if tracer is not None and args.traces:
                payload["traces"] = [t.as_dict() for t in tracer.traces()]
            if tracer is not None and args.slow is not None:
                payload["slow"] = [e.as_dict() for e in tracer.slow()]
            if heat_profile is not None:
                payload["heat"] = heat_profile.as_dict(include_edges=True)
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(telemetry.format_metrics(reg))
            if fastpath is not None:
                print()
                print(_format_fastpath(fastpath))
            if index_report is not None:
                print()
                print(_format_index(index_report))
            if args.profile:
                from repro.obsv import build_profile, format_profile

                print()
                print("profile (self-time per phase):")
                print(format_profile(build_profile(reg.trace)))
            if tracer is not None and args.traces:
                print()
                print("traces:")
                for trace in tracer.traces():
                    print(telemetry.format_trace(trace))
            if tracer is not None and args.slow is not None:
                print()
                print(f"slow requests (>= {args.slow:g}s):")
                entries = tracer.slow()
                if not entries:
                    print("  none")
                for entry in entries:
                    print(
                        f"  {entry.trace_id}  {entry.seconds * 1000:.3f} ms  "
                        f"doc={entry.doc}  query={entry.query}"
                    )
            if heat_profile is not None:
                print()
                print("access heat (hottest partitions):")
                hottest = heat_profile.hottest()
                if not hottest:
                    print("  none (run a --query to generate traffic)")
                for doc, pid, touches in hottest:
                    print(f"  {doc}  partition {pid}  touches={touches}")
                for doc, doc_heat in sorted(heat_profile.docs.items()):
                    print(
                        f"  {doc}: {doc_heat.steps} steps, "
                        f"{doc_heat.cross_steps} cross, "
                        f"{doc_heat.faults} faults, "
                        f"{len(doc_heat.edges)} hot edges "
                        f"(feed repro.partition.workload.heat_aware_lukes)"
                    )
        if args.chrome_trace:
            from repro.obsv import export_chrome_trace

            with open(args.chrome_trace, "w", encoding="utf-8") as fh:
                events = export_chrome_trace(fh, reg)
            print(
                f"wrote {events} trace events to {args.chrome_trace}", file=sys.stderr
            )
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Inspect (and optionally repair) a write-ahead log file.

    Pages live in process memory in this reproduction, so cold recovery
    proper happens where the pages are (:func:`repro.recovery.
    recover_store`); what an operator holds after a crash is the log
    file, and this verb answers the operational questions about it: is
    it readable, what would replay, is there crash residue (a torn tail
    or an uncommitted transaction), and — with ``--trim`` — truncates a
    torn tail in place. Interior corruption (a lying log) exits 1;
    untreated crash residue exits 2; a clean log exits 0.
    """
    from repro.recovery import read_wal, trim_torn_tail

    trimmed = 0
    if args.trim:
        trimmed = trim_torn_tail(args.wal)
    state = read_wal(args.wal)
    residue = state.torn_bytes > 0 or state.open_txn is not None
    if args.json:
        payload = {
            "wal": args.wal,
            "frames": state.frames,
            "committed_transactions": [
                {
                    "txn_id": txn.txn_id,
                    "dirty_records": txn.dirty,
                    "images": len(txn.images),
                }
                for txn in state.committed
            ],
            "open_transaction": (
                None if state.open_txn is None else state.open_txn.txn_id
            ),
            "torn_bytes": state.torn_bytes,
            "valid_bytes": state.valid_bytes,
            "trimmed_bytes": trimmed,
            "labels": None if state.labels is None else len(state.labels),
            "record_limit": state.record_limit,
            "next_txn": state.next_txn,
            "clean": not residue,
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(
            f"log: {args.wal} ({state.valid_bytes} valid bytes, "
            f"{state.frames} frame(s))"
        )
        for txn in state.committed:
            print(
                f"  committed txn {txn.txn_id}: {len(txn.images)} image(s), "
                f"dirty records {txn.dirty}"
            )
        if state.open_txn is not None:
            print(
                f"  open txn {state.open_txn.txn_id}: "
                f"{len(state.open_txn.images)} image(s) — uncommitted, "
                "discarded on recovery"
            )
        if trimmed:
            print(f"  trimmed {trimmed}B torn tail")
        elif state.torn_bytes:
            print(
                f"  torn tail: {state.torn_bytes}B after the last valid "
                "frame (--trim to repair)"
            )
        if state.labels is None:
            print("  snapshot: none — the log was never attached to a store")
        else:
            print(
                f"  snapshot: {len(state.labels)} label(s), "
                f"K={state.record_limit}; next txn {state.next_txn}"
            )
        print("  clean" if not residue else "  crash residue present")
    return 2 if residue else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the document-store HTTP service until interrupted."""
    from repro.service.app import ServiceConfig, run as run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        request_timeout=args.timeout,
        workers=args.workers,
        journal_dir=args.journal_dir,
        default_algorithm=args.algorithm,
        default_limit=args.limit,
        tracing=not args.no_tracing,
        trace_sample_rate=args.trace_sample_rate,
        trace_buffer=args.trace_buffer,
        slow_query_seconds=args.slow_query,
        heat=not args.no_heat,
        index=not args.no_index,
        query_cache=args.query_cache,
    )
    return run_service(config)


def _add_stats_arguments(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument(
        "--query", default=None, help="also run this XPath query against the store"
    )
    parser.add_argument(
        "--with-import",
        action="store_true",
        help="also stream-import the document (bulkload metrics)",
    )
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="print a JSON snapshot")
    fmt.add_argument(
        "--jsonl", action="store_true", help="print a JSON-lines metric export"
    )
    fmt.add_argument(
        "--prom",
        action="store_true",
        help="print the Prometheus text exposition (same format as the "
        "service's GET /metrics)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append a per-phase self-time profile of the span tree (text mode)",
    )
    parser.add_argument(
        "--fastpath",
        action="store_true",
        help="also time the fastpath kernel against the reference "
        "implementation and report cache hit ratios (docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="also write the span trace as Chrome trace JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--traces",
        action="store_true",
        help="trace the pipeline as one request-correlated span tree "
        "and print it (same machinery as the service's /debug/traces)",
    )
    parser.add_argument(
        "--slow",
        type=float,
        metavar="SECONDS",
        default=None,
        help="enable the slow-query log with this threshold and print "
        "any entries (same machinery as /debug/slow)",
    )
    parser.add_argument(
        "--heat",
        action="store_true",
        help="collect per-partition access heat for the run and print "
        "the hottest partitions (same machinery as /debug/heat; the "
        "edge counts feed repro.partition.workload.heat_aware_lukes)",
    )
    parser.add_argument(
        "--index",
        action="store_true",
        help="build the structural index and time the --query through "
        "window evaluation vs pure navigation, reporting pruning "
        "counters (docs/PERFORMANCE.md)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tree sibling partitioning toolkit (Kanne & Moerkotte, VLDB 2006)."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a document and report statistics")
    _add_common(p)
    p.add_argument("--render", action="store_true", help="print the partitioned tree")
    p.add_argument("--render-nodes", type=int, default=60, help="render at most N nodes")
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("import", help="stream-import a document (bulkload)")
    _add_common(p)
    p.add_argument(
        "--spill-threshold",
        type=int,
        default=None,
        help="bound resident memory (slots); enables Sec. 4.3 spilling",
    )
    p.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        default=None,
        help="fan top-level subtrees over N worker processes "
        "(deterministic ordered merge; incompatible with --spill-threshold)",
    )
    p.set_defaults(func=cmd_import)

    p = sub.add_parser("query", help="run an XPath query against a partitioned store")
    _add_common(p)
    p.add_argument("xpath", help="XPath expression (supported subset)")
    p.add_argument("--show", type=int, default=0, help="print the first N results")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("compare", help="run all heuristics on a document")
    _add_common(p)
    p.add_argument("--with-dhw", action="store_true", help="include the slow optimal algorithm")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "stats", help="run the pipeline with telemetry on and dump every metric"
    )
    _add_stats_arguments(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve", help="run the document-store HTTP service (docs/SERVICE.md)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080, help="bind port; 0 = ephemeral (default: 8080)")
    p.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        help="requests admitted at once (default: 64)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request admission + execution timeout in seconds (default: 30)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="executor threads for blocking engine work (default: stdlib sizing)",
    )
    p.add_argument(
        "--journal-dir",
        default=None,
        help="directory for crash-safe ingest journals (default: private temp dir)",
    )
    p.add_argument("--algorithm", default="ekm", help="default partitioning algorithm (default: ekm)")
    p.add_argument("--limit", type=int, default=256, help="default weight limit K (default: 256)")
    p.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable request tracing (/debug/traces, /debug/slow)",
    )
    p.add_argument(
        "--trace-sample-rate",
        type=int,
        default=1,
        metavar="N",
        help="keep 1-in-N traces, deterministic seeded head sampling "
        "(default: 1 = every request; 0 = none)",
    )
    p.add_argument(
        "--trace-buffer",
        type=int,
        default=256,
        metavar="N",
        help="completed traces retained for /debug/traces (default: 256)",
    )
    p.add_argument(
        "--slow-query",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="slow-query log threshold for /debug/slow (default: 1.0)",
    )
    p.add_argument(
        "--no-heat",
        action="store_true",
        help="disable per-partition access-heat accounting (/debug/heat)",
    )
    p.add_argument(
        "--no-index",
        action="store_true",
        help="skip building per-document structural indexes at ingest "
        "(queries fall back to pure navigation)",
    )
    p.add_argument(
        "--query-cache",
        type=int,
        default=0,
        metavar="N",
        help="cache up to N (document, xpath) query payloads, "
        "invalidated on ingest/delete (default: 0 = off)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "recover",
        help="inspect or repair a write-ahead log (docs/ROBUSTNESS.md)",
    )
    p.add_argument("wal", help="path to a .wal file")
    p.add_argument(
        "--trim",
        action="store_true",
        help="truncate a torn tail in place (no-op on a clean log)",
    )
    p.add_argument("--json", action="store_true", help="print a JSON report")
    p.set_defaults(func=cmd_recover)

    args = parser.parse_args(argv)
    # `query` puts xpath after document; reorder handled by argparse
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def stats_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-stats`` console script (equivalent to
    ``repro stats ...``)."""
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Run the partitioning pipeline with telemetry enabled "
        "and dump every collected metric.",
    )
    _add_stats_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return cmd_stats(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
