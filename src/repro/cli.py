"""User-facing command line: partition, import and query XML documents.

Installed as ``repro`` (see pyproject)::

    repro partition doc.xml --algorithm ekm --limit 256 [--render]
    repro import doc.xml --algorithm ekm --spill-threshold 2048
    repro query doc.xml "//keyword" --algorithm ekm
    repro compare doc.xml --limit 256

``repro compare`` runs every registered heuristic on the document and
prints a Table-1-style summary; ``repro-bench`` (the separate entry
point) regenerates the paper's experiments on the synthetic corpus.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.bulkload import BulkLoader
from repro.errors import ReproError
from repro.partition import available_algorithms, evaluate_partitioning, get_algorithm
from repro.partition.analysis import analyze_partitioning
from repro.partition.render import render_partitioning
from repro.query import run_query
from repro.storage import DocumentStore
from repro.xmlio import parse_tree


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("document", help="path to an XML file")
    parser.add_argument("--algorithm", default="ekm", help="partitioning algorithm (default: ekm)")
    parser.add_argument("--limit", type=int, default=256, help="weight limit K in slots (default: 256)")


def cmd_partition(args: argparse.Namespace) -> int:
    tree = parse_tree(args.document)
    start = time.perf_counter()
    partitioning = get_algorithm(args.algorithm).partition(tree, args.limit)
    elapsed = time.perf_counter() - start
    report = evaluate_partitioning(tree, partitioning, args.limit)
    analysis = analyze_partitioning(tree, partitioning, args.limit)
    print(f"document: {args.document} ({len(tree)} nodes, weight {report.total_weight})")
    print(
        f"{args.algorithm}: {report.cardinality} partitions in {elapsed:.3f}s "
        f"(lower bound {report.lower_bound}, fill {report.fill_factor * 100:.0f}%)"
    )
    print(
        f"root weight {report.root_weight}, max partition {report.max_partition_weight}, "
        f"navigation crossings {analysis.navigation_crossings}"
    )
    if args.render:
        print()
        print(render_partitioning(tree, partitioning, args.limit, max_nodes=args.render_nodes))
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    loader = BulkLoader(
        algorithm=args.algorithm,
        limit=args.limit,
        spill_threshold=args.spill_threshold,
    )
    start = time.perf_counter()
    result = loader.load(args.document)
    elapsed = time.perf_counter() - start
    store = DocumentStore.build(result.tree, result.partitioning)
    space = store.space_report()
    print(
        f"imported {len(result.tree)} nodes in {elapsed:.3f}s using "
        f"{args.algorithm} (K={args.limit})"
    )
    print(
        f"partitions: {result.partitioning.cardinality}; peak resident "
        f"{result.peak_resident_weight} slots "
        f"({result.peak_resident_fraction * 100:.1f}% of document), "
        f"{result.spills} spills"
    )
    print(
        f"storage: {space.records} records on {space.pages} pages, "
        f"{space.kib:.0f} KiB ({space.utilization * 100:.0f}% utilized)"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    tree = parse_tree(args.document)
    partitioning = get_algorithm(args.algorithm).partition(tree, args.limit)
    store = DocumentStore.build(tree, partitioning)
    store.warm_up()
    run = run_query(store, args.xpath)
    print(f"{run.result_count} results")
    print(
        f"navigation: {run.intra_steps} intra-record + {run.cross_steps} "
        f"cross-record steps ({run.cross_ratio * 100:.1f}% crossings), "
        f"cost {run.cost:.0f} units"
    )
    if args.show:
        from repro.query import evaluate
        from repro.query.engine import string_value

        for node in evaluate(store, args.xpath)[: args.show]:
            value = string_value(node)
            print(f"  <{node.label}> {value[:60]!r}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    tree = parse_tree(args.document)
    skip = {"brute", "fdw"}
    if not args.with_dhw:
        skip.add("dhw")
    print(f"document: {args.document} ({len(tree)} nodes), K={args.limit}")
    print(f"{'algorithm':10s} {'partitions':>10s} {'crossings':>10s} {'seconds':>9s}")
    for name in available_algorithms():
        if name in skip:
            continue
        start = time.perf_counter()
        partitioning = get_algorithm(name).partition(tree, args.limit)
        elapsed = time.perf_counter() - start
        analysis = analyze_partitioning(tree, partitioning, args.limit)
        print(
            f"{name:10s} {partitioning.cardinality:10d} "
            f"{analysis.navigation_crossings:10d} {elapsed:9.3f}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tree sibling partitioning toolkit (Kanne & Moerkotte, VLDB 2006)."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a document and report statistics")
    _add_common(p)
    p.add_argument("--render", action="store_true", help="print the partitioned tree")
    p.add_argument("--render-nodes", type=int, default=60, help="render at most N nodes")
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("import", help="stream-import a document (bulkload)")
    _add_common(p)
    p.add_argument(
        "--spill-threshold",
        type=int,
        default=None,
        help="bound resident memory (slots); enables Sec. 4.3 spilling",
    )
    p.set_defaults(func=cmd_import)

    p = sub.add_parser("query", help="run an XPath query against a partitioned store")
    _add_common(p)
    p.add_argument("xpath", help="XPath expression (supported subset)")
    p.add_argument("--show", type=int, default=0, help="print the first N results")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("compare", help="run all heuristics on a document")
    _add_common(p)
    p.add_argument("--with-dhw", action="store_true", help="include the slow optimal algorithm")
    p.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    # `query` puts xpath after document; reorder handled by argparse
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
