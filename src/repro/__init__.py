"""repro — optimal tree sibling partitioning and the Natix storage stack.

A faithful, self-contained reproduction of Kanne & Moerkotte, *"A Linear
Time Algorithm for Optimal Tree Sibling Partitioning and Approximation
Algorithms in Natix"* (VLDB 2006): the DHW optimal algorithm, the GHDW /
EKM near-optimal heuristics, the existing KM / RS / DFS / BFS baselines,
plus everything needed to evaluate them — XML parsing with the paper's
slot weight model, dataset generators, a Natix-style record/page storage
engine, an XPath subset query engine, and the benchmark harness that
regenerates the paper's Tables 1–3.

Quickstart::

    from repro import tree_from_spec, partition_tree, evaluate_partitioning

    tree = tree_from_spec(("a", 3, [("b", 2), ("c", 1, [("d", 2), ("e", 2)]),
                                    ("f", 1), ("g", 1), ("h", 2)]))
    partitioning = partition_tree(tree, limit=5, algorithm="dhw")
    report = evaluate_partitioning(tree, partitioning, limit=5)
    print(report.cardinality, report.root_weight)
"""

from repro.errors import (
    CorruptPageError,
    InfeasiblePartitioningError,
    InjectedFaultError,
    InvalidPartitioningError,
    JournalError,
    QuerySyntaxError,
    ReproError,
    StorageError,
    TreeError,
    XmlFormatError,
)
from repro.tree import (
    NodeKind,
    Tree,
    TreeNode,
    build_tree,
    flat_tree,
    tree_from_spec,
    tree_stats,
)
from repro.partition import (
    ALGORITHMS,
    Partitioner,
    Partitioning,
    SiblingInterval,
    available_algorithms,
    evaluate_partitioning,
    get_algorithm,
    is_feasible,
    partition_tree,
    partition_weights,
    validate_partitioning,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "TreeError",
    "InfeasiblePartitioningError",
    "InvalidPartitioningError",
    "XmlFormatError",
    "StorageError",
    "CorruptPageError",
    "JournalError",
    "InjectedFaultError",
    "QuerySyntaxError",
    "Tree",
    "TreeNode",
    "NodeKind",
    "build_tree",
    "flat_tree",
    "tree_from_spec",
    "tree_stats",
    "Partitioning",
    "SiblingInterval",
    "Partitioner",
    "ALGORITHMS",
    "available_algorithms",
    "get_algorithm",
    "partition_tree",
    "evaluate_partitioning",
    "partition_weights",
    "validate_partitioning",
    "is_feasible",
    "__version__",
]
