"""``repro-faults`` — run the fault-injection matrix from the shell.

Examples::

    repro-faults                          # smoke matrix (sampled points)
    repro-faults --full                   # every spill boundary and page
    repro-faults --updates                # chaos crash matrix for updates
    repro-faults --updates --full         # kill at every WAL boundary
    repro-faults --algorithm rs -K 32     # different import configuration
    repro-faults --list-points            # every named fault point
    repro-faults document.xml             # your own document

Exit status is 0 only when every scenario passed, so the command slots
directly into ``make verify`` (the *faults-smoke* and *chaos-smoke*
targets).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.faults.matrix import run_fault_matrix, run_update_crash_matrix
from repro.faults.plan import FAULT_POINTS

#: "unbounded" caps for --full (every boundary / page of a smoke document)
_FULL = 1 << 20


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="deterministic fault-injection matrix: crash/resume "
        "at spill boundaries, bit-flips on read, torn writes",
    )
    parser.add_argument(
        "document",
        nargs="?",
        default=None,
        help="XML document to import (default: generated XMark sample)",
    )
    parser.add_argument(
        "--algorithm",
        default="ekm",
        choices=("km", "rs", "ekm"),
        help="streaming import strategy (default: ekm)",
    )
    parser.add_argument(
        "-K", "--limit", type=int, default=64, help="partition weight limit"
    )
    parser.add_argument(
        "--spill-threshold",
        type=int,
        default=256,
        help="resident-weight bound that forces spills (default: 256)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006, help="fault plan / document seed"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.004,
        help="XMark scale for the generated document (default: 0.004)",
    )
    parser.add_argument(
        "--crash-points",
        type=int,
        default=6,
        help="spill boundaries to crash at (sampled evenly; default: 6)",
    )
    parser.add_argument(
        "--flip-pages",
        type=int,
        default=8,
        help="pages to bit-flip (sampled evenly; default: 8)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="exhaustive matrix: every spill boundary, every page "
        "(with --updates: every WAL record boundary)",
    )
    parser.add_argument(
        "--updates",
        action="store_true",
        help="run the chaos crash matrix for WAL-logged in-place updates "
        "instead of the bulk-load matrix",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=3,
        help="update batches (flush transactions) in the scripted "
        "workload (--updates only; default: 3)",
    )
    parser.add_argument(
        "--ops-per-batch",
        type=int,
        default=10,
        help="update operations per batch (--updates only; default: 10)",
    )
    parser.add_argument(
        "--list-points",
        action="store_true",
        help="print every named fault point and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print failures only"
    )
    args = parser.parse_args(argv)

    if args.list_points:
        for point in FAULT_POINTS:
            print(point)
        return 0

    source = None
    if args.document is not None:
        with open(args.document, encoding="utf-8") as handle:
            source = handle.read()

    if args.updates:
        report = run_update_crash_matrix(
            source=source,
            algorithm=args.algorithm,
            limit=args.limit,
            spill_threshold=args.spill_threshold,
            seed=args.seed,
            batches=args.batches,
            ops_per_batch=args.ops_per_batch,
            max_crash_points=_FULL if args.full else args.crash_points,
            scale=args.scale if args.scale != 0.004 else 0.002,
        )
    else:
        report = run_fault_matrix(
            source=source,
            algorithm=args.algorithm,
            limit=args.limit,
            spill_threshold=args.spill_threshold,
            seed=args.seed,
            max_crash_points=_FULL if args.full else args.crash_points,
            max_flip_pages=_FULL if args.full else args.flip_pages,
            scale=args.scale,
        )
    if args.quiet:
        for scenario in report.failures():
            print(f"FAIL {scenario.name} ({scenario.rule}): {scenario.detail}")
        print(
            f"fault matrix: {report.passed}/{len(report.scenarios)} passed",
            file=sys.stderr if report.ok else sys.stdout,
        )
    else:
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
