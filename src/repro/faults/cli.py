"""``repro-faults`` — run the fault-injection matrix from the shell.

Examples::

    repro-faults                          # smoke matrix (sampled points)
    repro-faults --full                   # every spill boundary and page
    repro-faults --algorithm rs -K 32     # different import configuration
    repro-faults document.xml             # your own document

Exit status is 0 only when every scenario passed, so the command slots
directly into ``make verify`` (the *faults-smoke* target).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.faults.matrix import run_fault_matrix

#: "unbounded" caps for --full (every boundary / page of a smoke document)
_FULL = 1 << 20


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="deterministic fault-injection matrix: crash/resume "
        "at spill boundaries, bit-flips on read, torn writes",
    )
    parser.add_argument(
        "document",
        nargs="?",
        default=None,
        help="XML document to import (default: generated XMark sample)",
    )
    parser.add_argument(
        "--algorithm",
        default="ekm",
        choices=("km", "rs", "ekm"),
        help="streaming import strategy (default: ekm)",
    )
    parser.add_argument(
        "-K", "--limit", type=int, default=64, help="partition weight limit"
    )
    parser.add_argument(
        "--spill-threshold",
        type=int,
        default=256,
        help="resident-weight bound that forces spills (default: 256)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006, help="fault plan / document seed"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.004,
        help="XMark scale for the generated document (default: 0.004)",
    )
    parser.add_argument(
        "--crash-points",
        type=int,
        default=6,
        help="spill boundaries to crash at (sampled evenly; default: 6)",
    )
    parser.add_argument(
        "--flip-pages",
        type=int,
        default=8,
        help="pages to bit-flip (sampled evenly; default: 8)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="exhaustive matrix: every spill boundary, every page",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print failures only"
    )
    args = parser.parse_args(argv)

    source = None
    if args.document is not None:
        with open(args.document, encoding="utf-8") as handle:
            source = handle.read()

    report = run_fault_matrix(
        source=source,
        algorithm=args.algorithm,
        limit=args.limit,
        spill_threshold=args.spill_threshold,
        seed=args.seed,
        max_crash_points=_FULL if args.full else args.crash_points,
        max_flip_pages=_FULL if args.full else args.flip_pages,
        scale=args.scale,
    )
    if args.quiet:
        for scenario in report.failures():
            print(f"FAIL {scenario.name} ({scenario.rule}): {scenario.detail}")
        print(
            f"fault matrix: {report.passed}/{len(report.scenarios)} passed",
            file=sys.stderr if report.ok else sys.stdout,
        )
    else:
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
