"""The fault matrix: end-to-end crash/resume and corruption drills.

:func:`run_fault_matrix` exercises the robustness guarantees the rest of
this package only makes possible:

* **Crash + resume** — a journaled bulk load is killed (via an injected
  fault) at spill boundaries and at finalize; each time the import is
  resumed and the matrix asserts the resumed partitioning *and* the
  store built from it are byte-identical to an uninterrupted run
  (:func:`store_fingerprint`).
* **Bit-flips on read** — every sampled page is corrupted with a seeded
  single-bit flip on its next fetch; the matrix asserts the read
  surfaces :class:`~repro.errors.CorruptPageError` (no silent garbage)
  and that the pool stays usable afterwards.
* **Torn writes** — a store is built under an injected short write; the
  matrix asserts full reconstruction refuses the damaged store.

:func:`run_update_crash_matrix` is the **chaos crash matrix** for
in-place updates: a deterministic scripted update workload runs against
a WAL-attached store and is killed at every sampled WAL record boundary
(``wal.append``), group-commit fsync (``wal.fsync``) and page apply
(``updates.flush``); each time, only the page images and the log file
"survive", :func:`repro.recovery.recover_store` rebuilds the store, and
the matrix asserts the recovered bytes land exactly on a flush boundary
of the uninterrupted control run, then replays the remaining script and
asserts final byte-identity, partitioning equality and full
reconstruction (zero corrupt reads). Extra cells tear the log's tail,
bit-flip its interior (must be refused loudly), bit-flip a surviving
page (must be repaired from logged images) and crash recovery itself
mid-redo (must be idempotent).

Every scenario is deterministic (seeded plans, fixed document), so a
failure reproduces exactly from its printed rule spec. The matrix is
exposed as the ``repro-faults`` command line (:mod:`repro.faults.cli`)
and a trimmed version runs in ``make verify`` (*faults-smoke* and
*chaos-smoke*).
"""

from __future__ import annotations

import copy
import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Optional

from repro.bulkload.importer import BulkLoader, ImportResult
from repro.bulkload.journal import resume_import
from repro.datasets.xmark import xmark_document
from repro.errors import (
    CorruptPageError,
    InjectedFaultError,
    StorageError,
    WalError,
)
from repro.faults.plan import FaultPlan, FaultRule, active
from repro.recovery.manager import recover_store
from repro.recovery.wal import WriteAheadLog, read_wal
from repro.storage.constants import StorageConfig
from repro.storage.page import Page
from repro.storage.reconstruct import verify_store_integrity
from repro.storage.store import DocumentStore
from repro.storage.updates import StoreUpdater
from repro.tree.node import NodeKind
from repro.xmlio.serialize import tree_to_xml


@dataclass
class FaultScenario:
    """One matrix cell: the injected rule and what happened."""

    name: str
    rule: str
    passed: bool
    detail: str = ""


@dataclass
class MatrixReport:
    """Outcome of a whole :func:`run_fault_matrix` run."""

    scenarios: list[FaultScenario] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for s in self.scenarios if s.passed)

    @property
    def failed(self) -> int:
        return sum(1 for s in self.scenarios if not s.passed)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def failures(self) -> list[FaultScenario]:
        return [s for s in self.scenarios if not s.passed]

    def summary(self) -> str:
        lines = [f"fault matrix: {self.passed}/{len(self.scenarios)} scenarios passed"]
        for scenario in self.scenarios:
            mark = "ok " if scenario.passed else "FAIL"
            line = f"  [{mark}] {scenario.name:<28} {scenario.rule}"
            if scenario.detail and not scenario.passed:
                line += f" — {scenario.detail}"
            lines.append(line)
        return "\n".join(lines)


def store_fingerprint(store: DocumentStore) -> str:
    """SHA-256 over the store's page images (headers + slot contents).

    Two stores with equal fingerprints hold byte-identical pages — the
    equality the crash/resume scenarios assert.
    """
    digest = hashlib.sha256()
    for page_id in sorted(store.manager.pages):
        page = store.manager.pages[page_id]
        digest.update(page.header_bytes())
        for record_id in sorted(page.slots):
            digest.update(record_id.to_bytes(4, "little"))
            digest.update(page.slots[record_id])
    return digest.hexdigest()


def _sample(count: int, cap: int) -> list[int]:
    """Up to ``cap`` 1-based indices spread evenly over ``1..count``."""
    if count <= 0:
        return []
    if count <= cap:
        return list(range(1, count + 1))
    step = count / cap
    picks = sorted({int(i * step) + 1 for i in range(cap)})
    return [p for p in picks if 1 <= p <= count]


def run_fault_matrix(
    source: Optional[str] = None,
    algorithm: str = "ekm",
    limit: int = 64,
    spill_threshold: int = 256,
    seed: int = 2006,
    max_crash_points: int = 6,
    max_flip_pages: int = 8,
    scale: float = 0.004,
) -> MatrixReport:
    """Run the whole matrix against one document; see the module doc.

    ``max_crash_points`` / ``max_flip_pages`` bound the matrix for smoke
    use; pass large values for the exhaustive run (``repro-faults
    --full``).
    """
    if source is None:
        source = tree_to_xml(xmark_document(scale=scale, seed=seed))
    report = MatrixReport()

    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        def loader() -> BulkLoader:
            return BulkLoader(algorithm, limit, spill_threshold)

        baseline = loader().load(
            source, journal_path=os.path.join(tmp, "baseline.journal")
        )
        base_store = DocumentStore.build(baseline.tree, baseline.partitioning)
        base_print = store_fingerprint(base_store)

        # -- crash + resume at every sampled spill boundary and finalize --
        crash_rules = [
            FaultRule("bulkload.spill", "raise", hit=h)
            for h in _sample(baseline.seals, max_crash_points)
        ]
        crash_rules.append(FaultRule("bulkload.finalize", "raise"))
        for index, rule in enumerate(crash_rules):
            journal = os.path.join(tmp, f"crash-{index}.journal")
            report.scenarios.append(
                _crash_resume_scenario(
                    loader(), source, journal, rule, baseline, base_print, seed
                )
            )

        # -- seeded bit-flips on read: every sampled page must scream ----
        page_ids = sorted(base_store.manager.pages)
        flip_step = max(1, len(page_ids) // max_flip_pages)
        for page_id in page_ids[::flip_step][:max_flip_pages]:
            report.scenarios.append(
                _bitflip_scenario(base_store, page_id, seed)
            )

        # -- torn write during store build: reconstruction must refuse ---
        report.scenarios.append(_torn_write_scenario(baseline, seed))

    return report


def _crash_resume_scenario(
    loader: BulkLoader,
    source: str,
    journal: str,
    rule: FaultRule,
    baseline: ImportResult,
    base_print: str,
    seed: int,
) -> FaultScenario:
    name = f"crash@{rule.point}#{rule.hit}"
    try:
        with active(FaultPlan([rule], seed=seed)):
            loader.load(source, journal_path=journal)
        return FaultScenario(name, rule.spec(), False, "fault never fired")
    except InjectedFaultError:
        pass
    except Exception as exc:  # pragma: no cover - diagnostic path
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")
    try:
        resumed = resume_import(source, journal)
    except Exception as exc:
        return FaultScenario(name, rule.spec(), False, f"resume failed: {exc!r}")
    if resumed.partitioning != baseline.partitioning:
        return FaultScenario(name, rule.spec(), False, "partitioning diverged")
    store = DocumentStore.build(resumed.tree, resumed.partitioning)
    if store_fingerprint(store) != base_print:
        return FaultScenario(name, rule.spec(), False, "store bytes diverged")
    return FaultScenario(name, rule.spec(), True, "resumed byte-identical")


def _bitflip_scenario(store: DocumentStore, page_id: int, seed: int) -> FaultScenario:
    rule = FaultRule("page.read", "bitflip")
    name = f"bitflip@page{page_id}"
    page = store.manager.pages[page_id]
    if not page.slots:
        return FaultScenario(name, rule.spec(), True, "empty page (skipped)")
    saved_slots = dict(page.slots)
    saved_checksum = page.checksum
    record_id = next(iter(sorted(page.slots)))
    store.buffer.clear()
    try:
        with active(FaultPlan([rule], seed=seed + page_id)):
            try:
                store.fetch_record(record_id)
                return FaultScenario(
                    name, rule.spec(), False, "corrupt read returned data"
                )
            except CorruptPageError:
                pass
        # The pool must not be poisoned: with the damage undone the same
        # fetch must succeed again (the corrupt page was never cached).
        page.slots.clear()
        page.slots.update(saved_slots)
        page.checksum = saved_checksum
        store.fetch_record(record_id)
    except Exception as exc:
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")
    finally:
        page.slots.clear()
        page.slots.update(saved_slots)
        page.checksum = saved_checksum
    return FaultScenario(name, rule.spec(), True, "caught, pool usable")


def _torn_write_scenario(baseline: ImportResult, seed: int) -> FaultScenario:
    # Target the *last* record write: a later put() on the same page
    # would re-seal the checksum over the damaged slots (the simulator's
    # pages dict is the disk), laundering the injected tear.
    last_write = baseline.emitted_partitions
    rule = FaultRule("page.write", "torn", hit=last_write)
    name = f"torn@page.write#{last_write}"
    try:
        with active(FaultPlan([rule], seed=seed)):
            store = DocumentStore.build(baseline.tree, baseline.partitioning)
        try:
            verify_store_integrity(store)
            return FaultScenario(
                name, rule.spec(), False, "damaged store verified clean"
            )
        except (CorruptPageError, StorageError):
            return FaultScenario(name, rule.spec(), True, "damage detected")
    except Exception as exc:  # pragma: no cover - diagnostic path
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")


# ---------------------------------------------------------------------------
# The chaos crash matrix: in-place updates killed at every WAL boundary.
# ---------------------------------------------------------------------------


@dataclass
class _UpdateWorkload:
    """Everything one update-crash scenario needs, computed once."""

    base: ImportResult
    config: StorageConfig
    #: batches of concrete ops; each batch ends in one WAL-logged flush
    script: list
    #: store fingerprint before any batch and after each batch's flush —
    #: the only byte states a crash may legally recover to
    checkpoints: list
    final_partitioning: object
    seed: int
    tmp: str


def _update_script(tree, seed: int, batches: int, ops_per_batch: int) -> list:
    """A deterministic update script against the *initial* tree.

    Every op references node ids that exist before the script starts, so
    the same batch replays identically from any flush boundary — inserts
    allocate node ids from the tree size, which is itself a function of
    the boundary.
    """
    rng = Random(seed)
    elements = [n.node_id for n in tree if n.kind is NodeKind.ELEMENT]
    texts = [n.node_id for n in tree if n.kind is NodeKind.TEXT]
    script = []
    for index in range(batches):
        ops = []
        for op in range(ops_per_batch):
            if texts and rng.random() < 0.3:
                ops.append(
                    (
                        "content",
                        rng.choice(texts),
                        f"upd-{index}-{op}-" + "x" * rng.randrange(1, 17),
                    )
                )
            else:
                ops.append(("insert", rng.choice(elements), f"n{index}x{op}"))
        script.append(ops)
    return script


def _apply_batch(store: DocumentStore, ops) -> None:
    updater = StoreUpdater(store)
    for op in ops:
        try:
            if op[0] == "insert":
                updater.insert_node(op[1], op[2])
            else:
                updater.update_content(op[1], op[2])
        except StorageError:
            continue  # a no-room outcome is deterministic and replays so
    updater.flush()


def _fresh_store(base: ImportResult, config: StorageConfig) -> DocumentStore:
    # deepcopy: updates mutate the tree, and every scenario must start
    # from the same pristine document
    return DocumentStore.build(copy.deepcopy(base.tree), base.partitioning, config)


def _surviving_pages(store: DocumentStore) -> dict:
    """What a crash leaves behind: the page images, nothing in memory."""
    return {
        page_id: Page(page.page_id, page.config, dict(page.slots), page.version, page.checksum)
        for page_id, page in store.manager.pages.items()
    }


def _control_run(
    base: ImportResult, config: StorageConfig, script, tmp: str, seed: int
):
    """The uninterrupted run: per-boundary fingerprints + fault-point
    hit counts (which bound the crash sweep)."""
    store = _fresh_store(base, config)
    wal = WriteAheadLog(os.path.join(tmp, "updates-control.wal")).open()
    store.attach_wal(wal)
    checkpoints = [store_fingerprint(store)]
    with active(FaultPlan([], seed=seed)) as plan:
        for ops in script:
            _apply_batch(store, ops)
            checkpoints.append(store_fingerprint(store))
    wal.close()
    final_partitioning = StoreUpdater(store).current_partitioning()
    return checkpoints, dict(plan.hits), final_partitioning


def _update_crash_scenario(
    workload: _UpdateWorkload,
    rule: FaultRule,
    index: int,
    *,
    suffix: str = "",
    damage: Optional[Callable] = None,
    recovery_rule: Optional[FaultRule] = None,
) -> FaultScenario:
    """Kill the scripted workload with ``rule``; recover; resume; compare.

    ``damage`` optionally corrupts the surviving pages / log before
    recovery (torn tails, bit rot); ``recovery_rule`` optionally crashes
    the *first* recovery attempt mid-redo (the double-crash drill).
    """
    name = f"update-crash@{rule.point}#{rule.hit}{suffix}"
    wal_path = os.path.join(workload.tmp, f"updates-crash-{index}.wal")
    store = _fresh_store(workload.base, workload.config)
    wal = WriteAheadLog(wal_path).open()
    store.attach_wal(wal)
    crashed = False
    try:
        with active(FaultPlan([rule], seed=workload.seed)):
            try:
                for ops in workload.script:
                    _apply_batch(store, ops)
            except (InjectedFaultError, OSError):
                crashed = True
    finally:
        wal.close()
    if not crashed:
        return FaultScenario(name, rule.spec(), False, "fault never fired")
    surviving = _surviving_pages(store)
    detail = ""
    if damage is not None:
        detail = damage(surviving, wal_path, Random(workload.seed * 31 + index)) or ""
    if recovery_rule is not None:
        try:
            with active(FaultPlan([recovery_rule], seed=workload.seed + 1)):
                recover_store(surviving, wal_path, workload.config)
            return FaultScenario(
                name, rule.spec(), False, "recovery fault never fired"
            )
        except (InjectedFaultError, OSError):
            pass  # recovery itself crashed; the retry below must succeed
    try:
        recovered, _report = recover_store(surviving, wal_path, workload.config)
    except Exception as exc:
        return FaultScenario(name, rule.spec(), False, f"recovery failed: {exc!r}")
    fingerprint = store_fingerprint(recovered)
    if fingerprint not in workload.checkpoints:
        return FaultScenario(
            name, rule.spec(), False, "recovered bytes match no flush boundary"
        )
    boundary = workload.checkpoints.index(fingerprint)
    resume_wal = WriteAheadLog(wal_path).open()
    recovered.attach_wal(resume_wal)
    try:
        for ops in workload.script[boundary:]:
            _apply_batch(recovered, ops)
    finally:
        resume_wal.close()
    if store_fingerprint(recovered) != workload.checkpoints[-1]:
        return FaultScenario(name, rule.spec(), False, "final store bytes diverged")
    if StoreUpdater(recovered).current_partitioning() != workload.final_partitioning:
        return FaultScenario(name, rule.spec(), False, "final partitioning diverged")
    try:
        verify_store_integrity(recovered)
    except StorageError as exc:
        return FaultScenario(name, rule.spec(), False, f"corrupt read: {exc!r}")
    note = f"recovered at boundary {boundary}/{len(workload.checkpoints) - 1}"
    if detail:
        note += f"; {detail}"
    return FaultScenario(name, rule.spec(), True, note)


def _tear_wal_tail(surviving, wal_path: str, rng: Random) -> str:
    """Shear 1-11 bytes off the log — a torn final frame."""
    size = os.path.getsize(wal_path)
    drop = rng.randrange(1, 12)
    with open(wal_path, "r+b") as handle:
        handle.truncate(max(0, size - drop))
    return f"tore {drop}B off the log tail"


def _flip_imaged_page_slot(surviving, wal_path: str, rng: Random) -> str:
    """Bit-flip a surviving page slot the log holds an after-image of —
    page repair, not redo, is what must fix this."""
    images = read_wal(wal_path).latest_images()
    for record_id in sorted(images):
        for page in surviving.values():
            blob = page.slots.get(record_id)
            if blob:
                at = rng.randrange(len(blob))
                bit = 1 << rng.randrange(8)
                page.slots[record_id] = (
                    blob[:at] + bytes([blob[at] ^ bit]) + blob[at + 1 :]
                )
                return f"flipped a bit in record {record_id} on page {page.page_id}"
    return "no imaged slot to flip"


def _wal_interior_corruption_scenario(
    workload: _UpdateWorkload, index: int
) -> FaultScenario:
    """A bit-flip *inside* the log (not its tail) must refuse to replay."""
    rule = FaultRule("updates.flush", "raise", hit=1)
    name = "update-crash@wal-interior-bitflip"
    wal_path = os.path.join(workload.tmp, f"updates-crash-{index}.wal")
    store = _fresh_store(workload.base, workload.config)
    wal = WriteAheadLog(wal_path).open()
    store.attach_wal(wal)
    try:
        with active(FaultPlan([rule], seed=workload.seed)):
            try:
                for ops in workload.script:
                    _apply_batch(store, ops)
                return FaultScenario(name, rule.spec(), False, "fault never fired")
            except InjectedFaultError:
                pass
    finally:
        wal.close()
    with open(wal_path, "r+b") as handle:
        data = bytearray(handle.read())
        data[9] ^= 0x40  # inside the first frame's payload; frames follow
        handle.seek(0)
        handle.write(bytes(data))
    try:
        recover_store(_surviving_pages(store), wal_path, workload.config)
    except WalError:
        return FaultScenario(name, rule.spec(), True, "interior corruption refused")
    except Exception as exc:  # pragma: no cover - diagnostic path
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")
    return FaultScenario(name, rule.spec(), False, "corrupt log replayed silently")


def run_update_crash_matrix(
    source: Optional[str] = None,
    algorithm: str = "ekm",
    limit: int = 64,
    spill_threshold: int = 256,
    seed: int = 2006,
    batches: int = 3,
    ops_per_batch: int = 10,
    max_crash_points: int = 6,
    scale: float = 0.002,
) -> MatrixReport:
    """Kill a WAL-logged update workload at every sampled boundary.

    ``max_crash_points`` bounds the sweep *per fault point* for smoke
    use; pass a large value for the exhaustive run (``repro-faults
    --updates --full`` covers every WAL record boundary).
    """
    if source is None:
        source = tree_to_xml(xmark_document(scale=scale, seed=seed))
    report = MatrixReport()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        base = BulkLoader(algorithm, limit, spill_threshold).load(
            source, journal_path=os.path.join(tmp, "updates-base.journal")
        )
        config = StorageConfig(record_limit=limit)
        script = _update_script(base.tree, seed, batches, ops_per_batch)
        checkpoints, hits, final_partitioning = _control_run(
            base, config, script, tmp, seed
        )
        workload = _UpdateWorkload(
            base, config, script, checkpoints, final_partitioning, seed, tmp
        )

        cells: list[tuple[FaultRule, dict]] = []
        for hit in _sample(hits.get("updates.flush", 0), max_crash_points):
            cells.append((FaultRule("updates.flush", "raise", hit=hit), {}))
        for hit in _sample(hits.get("wal.append", 0), max_crash_points):
            cells.append((FaultRule("wal.append", "raise", hit=hit), {}))
        # wal.fsync hit 1 is the attach-time snapshot, before any update
        # exists to recover — the sweep starts at the first group commit
        for hit in _sample(hits.get("wal.fsync", 0), max_crash_points):
            if hit >= 2:
                cells.append((FaultRule("wal.fsync", "io-error", hit=hit), {}))
        mid_append = max(2, hits.get("wal.append", 2) // 2)
        cells.append(
            (
                FaultRule("wal.append", "raise", hit=mid_append),
                {"suffix": "+torn-tail", "damage": _tear_wal_tail},
            )
        )
        cells.append(
            (
                FaultRule("updates.flush", "raise", hit=1),
                {"suffix": "+page-bitflip", "damage": _flip_imaged_page_slot},
            )
        )
        cells.append(
            (
                FaultRule("updates.flush", "raise", hit=1),
                {
                    "suffix": "+crash-in-recovery",
                    "recovery_rule": FaultRule("updates.flush", "raise", hit=1),
                },
            )
        )
        for index, (rule, extra) in enumerate(cells):
            report.scenarios.append(
                _update_crash_scenario(workload, rule, index, **extra)
            )
        report.scenarios.append(
            _wal_interior_corruption_scenario(workload, len(cells))
        )
    return report
