"""The fault matrix: end-to-end crash/resume and corruption drills.

:func:`run_fault_matrix` exercises the robustness guarantees the rest of
this package only makes possible:

* **Crash + resume** — a journaled bulk load is killed (via an injected
  fault) at spill boundaries and at finalize; each time the import is
  resumed and the matrix asserts the resumed partitioning *and* the
  store built from it are byte-identical to an uninterrupted run
  (:func:`store_fingerprint`).
* **Bit-flips on read** — every sampled page is corrupted with a seeded
  single-bit flip on its next fetch; the matrix asserts the read
  surfaces :class:`~repro.errors.CorruptPageError` (no silent garbage)
  and that the pool stays usable afterwards.
* **Torn writes** — a store is built under an injected short write; the
  matrix asserts full reconstruction refuses the damaged store.

Every scenario is deterministic (seeded plans, fixed document), so a
failure reproduces exactly from its printed rule spec. The matrix is
exposed as the ``repro-faults`` command line (:mod:`repro.faults.cli`)
and a trimmed version runs in ``make verify`` (*faults-smoke*).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional

from repro.bulkload.importer import BulkLoader, ImportResult
from repro.bulkload.journal import resume_import
from repro.datasets.xmark import xmark_document
from repro.errors import CorruptPageError, InjectedFaultError, StorageError
from repro.faults.plan import FaultPlan, FaultRule, active
from repro.storage.reconstruct import verify_store_integrity
from repro.storage.store import DocumentStore
from repro.xmlio.serialize import tree_to_xml


@dataclass
class FaultScenario:
    """One matrix cell: the injected rule and what happened."""

    name: str
    rule: str
    passed: bool
    detail: str = ""


@dataclass
class MatrixReport:
    """Outcome of a whole :func:`run_fault_matrix` run."""

    scenarios: list[FaultScenario] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for s in self.scenarios if s.passed)

    @property
    def failed(self) -> int:
        return sum(1 for s in self.scenarios if not s.passed)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def failures(self) -> list[FaultScenario]:
        return [s for s in self.scenarios if not s.passed]

    def summary(self) -> str:
        lines = [f"fault matrix: {self.passed}/{len(self.scenarios)} scenarios passed"]
        for scenario in self.scenarios:
            mark = "ok " if scenario.passed else "FAIL"
            line = f"  [{mark}] {scenario.name:<28} {scenario.rule}"
            if scenario.detail and not scenario.passed:
                line += f" — {scenario.detail}"
            lines.append(line)
        return "\n".join(lines)


def store_fingerprint(store: DocumentStore) -> str:
    """SHA-256 over the store's page images (headers + slot contents).

    Two stores with equal fingerprints hold byte-identical pages — the
    equality the crash/resume scenarios assert.
    """
    digest = hashlib.sha256()
    for page_id in sorted(store.manager.pages):
        page = store.manager.pages[page_id]
        digest.update(page.header_bytes())
        for record_id in sorted(page.slots):
            digest.update(record_id.to_bytes(4, "little"))
            digest.update(page.slots[record_id])
    return digest.hexdigest()


def _sample(count: int, cap: int) -> list[int]:
    """Up to ``cap`` 1-based indices spread evenly over ``1..count``."""
    if count <= 0:
        return []
    if count <= cap:
        return list(range(1, count + 1))
    step = count / cap
    picks = sorted({int(i * step) + 1 for i in range(cap)})
    return [p for p in picks if 1 <= p <= count]


def run_fault_matrix(
    source: Optional[str] = None,
    algorithm: str = "ekm",
    limit: int = 64,
    spill_threshold: int = 256,
    seed: int = 2006,
    max_crash_points: int = 6,
    max_flip_pages: int = 8,
    scale: float = 0.004,
) -> MatrixReport:
    """Run the whole matrix against one document; see the module doc.

    ``max_crash_points`` / ``max_flip_pages`` bound the matrix for smoke
    use; pass large values for the exhaustive run (``repro-faults
    --full``).
    """
    if source is None:
        source = tree_to_xml(xmark_document(scale=scale, seed=seed))
    report = MatrixReport()

    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        def loader() -> BulkLoader:
            return BulkLoader(algorithm, limit, spill_threshold)

        baseline = loader().load(
            source, journal_path=os.path.join(tmp, "baseline.journal")
        )
        base_store = DocumentStore.build(baseline.tree, baseline.partitioning)
        base_print = store_fingerprint(base_store)

        # -- crash + resume at every sampled spill boundary and finalize --
        crash_rules = [
            FaultRule("bulkload.spill", "raise", hit=h)
            for h in _sample(baseline.seals, max_crash_points)
        ]
        crash_rules.append(FaultRule("bulkload.finalize", "raise"))
        for index, rule in enumerate(crash_rules):
            journal = os.path.join(tmp, f"crash-{index}.journal")
            report.scenarios.append(
                _crash_resume_scenario(
                    loader(), source, journal, rule, baseline, base_print, seed
                )
            )

        # -- seeded bit-flips on read: every sampled page must scream ----
        page_ids = sorted(base_store.manager.pages)
        flip_step = max(1, len(page_ids) // max_flip_pages)
        for page_id in page_ids[::flip_step][:max_flip_pages]:
            report.scenarios.append(
                _bitflip_scenario(base_store, page_id, seed)
            )

        # -- torn write during store build: reconstruction must refuse ---
        report.scenarios.append(_torn_write_scenario(baseline, seed))

    return report


def _crash_resume_scenario(
    loader: BulkLoader,
    source: str,
    journal: str,
    rule: FaultRule,
    baseline: ImportResult,
    base_print: str,
    seed: int,
) -> FaultScenario:
    name = f"crash@{rule.point}#{rule.hit}"
    try:
        with active(FaultPlan([rule], seed=seed)):
            loader.load(source, journal_path=journal)
        return FaultScenario(name, rule.spec(), False, "fault never fired")
    except InjectedFaultError:
        pass
    except Exception as exc:  # pragma: no cover - diagnostic path
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")
    try:
        resumed = resume_import(source, journal)
    except Exception as exc:
        return FaultScenario(name, rule.spec(), False, f"resume failed: {exc!r}")
    if resumed.partitioning != baseline.partitioning:
        return FaultScenario(name, rule.spec(), False, "partitioning diverged")
    store = DocumentStore.build(resumed.tree, resumed.partitioning)
    if store_fingerprint(store) != base_print:
        return FaultScenario(name, rule.spec(), False, "store bytes diverged")
    return FaultScenario(name, rule.spec(), True, "resumed byte-identical")


def _bitflip_scenario(store: DocumentStore, page_id: int, seed: int) -> FaultScenario:
    rule = FaultRule("page.read", "bitflip")
    name = f"bitflip@page{page_id}"
    page = store.manager.pages[page_id]
    if not page.slots:
        return FaultScenario(name, rule.spec(), True, "empty page (skipped)")
    saved_slots = dict(page.slots)
    saved_checksum = page.checksum
    record_id = next(iter(sorted(page.slots)))
    store.buffer.clear()
    try:
        with active(FaultPlan([rule], seed=seed + page_id)):
            try:
                store.fetch_record(record_id)
                return FaultScenario(
                    name, rule.spec(), False, "corrupt read returned data"
                )
            except CorruptPageError:
                pass
        # The pool must not be poisoned: with the damage undone the same
        # fetch must succeed again (the corrupt page was never cached).
        page.slots.clear()
        page.slots.update(saved_slots)
        page.checksum = saved_checksum
        store.fetch_record(record_id)
    except Exception as exc:
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")
    finally:
        page.slots.clear()
        page.slots.update(saved_slots)
        page.checksum = saved_checksum
    return FaultScenario(name, rule.spec(), True, "caught, pool usable")


def _torn_write_scenario(baseline: ImportResult, seed: int) -> FaultScenario:
    # Target the *last* record write: a later put() on the same page
    # would re-seal the checksum over the damaged slots (the simulator's
    # pages dict is the disk), laundering the injected tear.
    last_write = baseline.emitted_partitions
    rule = FaultRule("page.write", "torn", hit=last_write)
    name = f"torn@page.write#{last_write}"
    try:
        with active(FaultPlan([rule], seed=seed)):
            store = DocumentStore.build(baseline.tree, baseline.partitioning)
        try:
            verify_store_integrity(store)
            return FaultScenario(
                name, rule.spec(), False, "damaged store verified clean"
            )
        except (CorruptPageError, StorageError):
            return FaultScenario(name, rule.spec(), True, "damage detected")
    except Exception as exc:  # pragma: no cover - diagnostic path
        return FaultScenario(name, rule.spec(), False, f"unexpected {exc!r}")
