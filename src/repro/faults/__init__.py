"""repro.faults — deterministic fault injection and the fault matrix.

The robustness harness of the repo (see ``docs/ROBUSTNESS.md``):

* :class:`FaultPlan` / :class:`FaultRule` — seeded, reproducible
  failure schedules armed at named fault points across the storage
  engine, the bulkloader and the parser (module :mod:`repro.faults.plan`),
* the ``REPRO_FAULTS`` environment variable — arms a plan for a whole
  process, mirroring ``REPRO_TELEMETRY`` / ``REPRO_CHECK_INVARIANTS``,
* :func:`run_fault_matrix` — the end-to-end kill/resume and bit-flip
  matrix (module :mod:`repro.faults.matrix`), also exposed as the
  ``repro-faults`` command line (:mod:`repro.faults.cli`).

With no plan armed every fault hook is one ``is None`` check — the same
no-op fast-path discipline as :mod:`repro.telemetry`.

The matrix names are loaded lazily: the storage and bulkload layers
import :mod:`repro.faults.plan` for their hooks, while the matrix
imports those layers to drive them end to end — eager re-export here
would close that loop into an import cycle.
"""

from repro.faults.plan import (
    FAULT_ACTIONS,
    FAULT_POINTS,
    FaultAction,
    FaultPlan,
    FaultRule,
    active,
    active_plan,
    arm,
    armed,
    check,
    disarm,
    fire,
)

_MATRIX_NAMES = ("FaultScenario", "MatrixReport", "run_fault_matrix", "store_fingerprint")


def __getattr__(name: str):
    if name in _MATRIX_NAMES:
        from repro.faults import matrix

        return getattr(matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_ACTIONS",
    "FAULT_POINTS",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "FaultScenario",
    "MatrixReport",
    "active",
    "active_plan",
    "arm",
    "armed",
    "check",
    "disarm",
    "fire",
    "run_fault_matrix",
    "store_fingerprint",
]
