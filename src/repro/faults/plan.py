"""Deterministic fault injection: seeded plans armed at named fault points.

The storage engine, the bulkloader and the parser call into this module
at **fault points** — named places where a real system meets a real
failure mode (a torn page write, an I/O error on read, a crash between
two spills). With no plan armed every hook is a single ``is None`` check,
so production paths pay nothing; with a plan armed, the plan decides —
deterministically, from its seed and per-point hit counters — whether
this particular hit fails and how.

Fault points wired into the stack (see ``docs/ROBUSTNESS.md``):

==================  =======================================================
``page.write``      a record blob landed on a page (torn write / bit rot /
                    write error happen *after* the checksum was sealed)
``page.read``       a page is read from "disk" on a buffer-pool miss
``buffer.evict``    the pool evicted a page to make room
``bulkload.spill``  the importer sealed a spill boundary in its journal
``bulkload.finalize``  the importer is about to commit its journal
``parser.event``    one XML parse event was produced
``wal.append``      a frame landed in the write-ahead log (fires after the
                    frame is written + flushed, i.e. *at* the record
                    boundary a crash would leave behind)
``wal.fsync``       the log is about to fsync a group commit / checkpoint
``updates.flush``   an updated record blob is about to be applied to its
                    page (and re-applied during recovery redo)
==================  =======================================================

Actions:

* ``raise`` — raise :class:`~repro.errors.InjectedFaultError` (a planned
  crash; the fault matrix kills bulk loads this way),
* ``io-error`` — raise :class:`OSError` (what a failing device returns),
* ``bitflip`` — flip one seeded-random bit of one record blob on the
  page (silent media corruption; must be caught by page checksums),
* ``torn`` — truncate the tail of one record blob (a torn/short write).

Plans come from code (:class:`FaultPlan` + :func:`active`) or from the
``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="page.read:bitflip@2;bulkload.spill:raise;seed=7"

arms a bit-flip on the second page read and a crash on the first spill
boundary, with all randomness drawn from seed 7.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Iterator, Optional

from repro import telemetry
from repro.errors import InjectedFaultError, ReproError

#: every fault point a plan may name (unknown points are config errors)
FAULT_POINTS = (
    "page.write",
    "page.read",
    "buffer.evict",
    "bulkload.spill",
    "bulkload.finalize",
    "parser.event",
    "wal.append",
    "wal.fsync",
    "updates.flush",
)

#: every action a rule may request
FAULT_ACTIONS = ("raise", "io-error", "bitflip", "torn")

#: actions that corrupt data in place instead of raising
_DATA_ACTIONS = frozenset({"bitflip", "torn"})


@dataclass(frozen=True)
class FaultRule:
    """One armed failure: *which point*, *what happens*, *which hits*.

    ``hit`` is 1-based: the rule fires on the ``hit``-th time its point
    is reached, and keeps firing for ``count`` consecutive hits.
    """

    point: str
    action: str
    hit: int = 1
    count: int = 1

    def __post_init__(self):
        if self.point not in FAULT_POINTS:
            raise ReproError(
                f"unknown fault point {self.point!r}; known: {', '.join(FAULT_POINTS)}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; known: {', '.join(FAULT_ACTIONS)}"
            )
        if self.hit < 1 or self.count < 1:
            raise ReproError("fault rule hit/count must be >= 1")

    def matches(self, hit_number: int) -> bool:
        return self.hit <= hit_number < self.hit + self.count

    def spec(self) -> str:
        """The ``REPRO_FAULTS`` term this rule round-trips to."""
        out = f"{self.point}:{self.action}"
        if self.hit != 1:
            out += f"@{self.hit}"
        if self.count != 1:
            out += f"x{self.count}"
        return out


class FaultAction:
    """A rule that fired on this hit; the fault point applies it."""

    __slots__ = ("rule", "rng", "ctx")

    def __init__(self, rule: FaultRule, rng: Random, ctx: dict):
        self.rule = rule
        self.rng = rng
        self.ctx = ctx

    def trip(self) -> None:
        """Raise the planned failure (control-flow fault points).

        Data actions (``bitflip``/``torn``) make no sense at a pure
        control point, so they degrade to a planned crash there too —
        a misconfigured plan should be loud, not silent.
        """
        point = self.rule.point
        if self.rule.action == "io-error":
            raise OSError(f"injected I/O error at fault point {point!r}")
        raise InjectedFaultError(
            f"injected fault at fault point {point!r}", point=point
        )

    def apply_to_page(self, page) -> None:
        """Apply the fault to a (duck-typed) page: raise, or corrupt its
        stored blobs *after* the checksum was sealed — exactly what torn
        writes and bit rot do to real media."""
        if self.rule.action not in _DATA_ACTIONS:
            self.trip()
        if not page.slots:
            return  # nothing stored yet; an empty page cannot be damaged
        record_id = self.rng.choice(sorted(page.slots))
        blob = page.slots[record_id]
        if self.rule.action == "bitflip":
            index = self.rng.randrange(len(blob))
            bit = 1 << self.rng.randrange(8)
            page.slots[record_id] = (
                blob[:index] + bytes([blob[index] ^ bit]) + blob[index + 1 :]
            )
        else:  # torn: drop a non-empty tail, keeping at least one byte
            keep = self.rng.randrange(max(1, len(blob) - 1))
            page.slots[record_id] = blob[:keep]


class FaultPlan:
    """A deterministic schedule of failures over the named fault points.

    Per-point hit counters advance on every :meth:`fire` call; rules
    match on those counters, and all randomness (which blob, which bit)
    comes from the plan's seeded generator — the same plan against the
    same workload always injects the same faults.
    """

    def __init__(self, rules: Iterator[FaultRule] | list[FaultRule] = (), seed: int = 0):
        self.rules: list[FaultRule] = list(rules)
        self.seed = seed
        self.rng = Random(seed)
        self.hits: dict[str, int] = {}
        #: log of fired injections: (point, hit_number, action)
        self.fired: list[tuple[str, int, str]] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style spec string.

        Grammar: semicolon-separated terms, each either ``seed=N`` or
        ``point:action[@hit][xcount]``; whitespace around terms is
        ignored. An empty spec yields an armed-but-empty plan (useful as
        a no-fault harness smoke).
        """
        rules: list[FaultRule] = []
        seed = 0
        for term in spec.split(";"):
            term = term.strip()
            if not term:
                continue
            if term.startswith("seed="):
                try:
                    seed = int(term[len("seed=") :])
                except ValueError:
                    raise ReproError(f"bad fault seed in {term!r}") from None
                continue
            if ":" not in term:
                raise ReproError(
                    f"bad fault term {term!r}; expected point:action[@hit][xcount]"
                )
            point, _, rest = term.partition(":")
            count = 1
            if "x" in rest:
                rest, _, count_s = rest.rpartition("x")
                try:
                    count = int(count_s)
                except ValueError:
                    raise ReproError(f"bad fault count in {term!r}") from None
            hit = 1
            if "@" in rest:
                rest, _, hit_s = rest.partition("@")
                try:
                    hit = int(hit_s)
                except ValueError:
                    raise ReproError(f"bad fault hit in {term!r}") from None
            rules.append(FaultRule(point.strip(), rest.strip(), hit=hit, count=count))
        return cls(rules, seed=seed)

    def spec(self) -> str:
        terms = [rule.spec() for rule in self.rules]
        if self.seed:
            terms.append(f"seed={self.seed}")
        return ";".join(terms)

    # -- firing -----------------------------------------------------------

    def fire(self, point: str, **ctx) -> Optional[FaultAction]:
        """Advance the point's hit counter; return the action to apply if
        a rule matches this hit, else ``None``."""
        n = self.hits.get(point, 0) + 1
        self.hits[point] = n
        for rule in self.rules:
            if rule.point == point and rule.matches(n):
                self.fired.append((point, n, rule.action))
                if telemetry.enabled():
                    telemetry.count("faults.injected")
                    telemetry.count(f"faults.injected.{point}")
                return FaultAction(rule, self.rng, ctx)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r}, fired={len(self.fired)})"


# ---------------------------------------------------------------------------
# The process-wide armed plan — every hook checks this first.
# ---------------------------------------------------------------------------

_active: Optional[FaultPlan] = None


def _env_plan() -> Optional[FaultPlan]:
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    return FaultPlan.from_spec(spec) if spec else None


def armed() -> bool:
    """Is any fault plan currently armed?"""
    return _active is not None


def active_plan() -> Optional[FaultPlan]:
    return _active


def arm(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (replacing any armed plan)."""
    global _active
    _active = plan


def disarm() -> None:
    global _active
    _active = None


@contextmanager
def active(plan: FaultPlan):
    """Scope a plan: ``with faults.active(plan): ...`` restores the
    previously armed plan (usually none) on exit, even on a planned
    crash."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def fire(point: str, **ctx) -> Optional[FaultAction]:
    """Hook for fault points that can apply data corruption themselves:
    returns the matched action (or ``None``) without raising."""
    if _active is None:
        return None
    return _active.fire(point, **ctx)


def check(point: str, **ctx) -> None:
    """Hook for pure control-flow fault points: raises the planned
    failure if a rule matches this hit, else returns."""
    if _active is None:
        return
    action = _active.fire(point, **ctx)
    if action is not None:
        action.trip()


def describe_points() -> str:
    """Human-readable fault point list (CLI help)."""
    return ", ".join(FAULT_POINTS)


# A plan named in the environment is armed for the whole process the
# moment any instrumented layer imports this module — mirroring how
# REPRO_TELEMETRY / REPRO_CHECK_INVARIANTS switch whole sessions.
_env = _env_plan()
if _env is not None:  # pragma: no cover - exercised via subprocess tests
    _active = _env
