"""End-to-end service smoke: boot, ingest, query, scrape, shut down.

``python -m repro.service.smoke`` (also ``make service-smoke`` and the
CI ``service-smoke`` job) boots a real server on an ephemeral port,
drives it over real sockets with the blocking client, and checks every
endpoint once. Exit 0 means the whole request path — parser, router,
middleware, executor offload, engine, telemetry export — works.
"""

from __future__ import annotations

import io
import json
import sys

from repro.obsv.chrometrace import load_chrome_trace
from repro.service.app import ServiceConfig, ServiceThread
from repro.service.client import ServiceClient, ServiceClientError

SMOKE_XML = (
    "<site><people>"
    + "".join(
        f"<person id='p{i}'><name>person {i}</name>"
        f"<interest><keyword>k{i % 7}</keyword></interest></person>"
        for i in range(40)
    )
    + "</people></site>"
)


def main() -> int:
    failures: list[str] = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        mark = "ok" if ok else "FAIL"
        print(f"  [{mark}] {label}" + (f" ({detail})" if detail else ""))
        if not ok:
            failures.append(label)

    config = ServiceConfig(
        port=0,
        max_concurrency=8,
        # a zero threshold pushes every request into the slow-query log,
        # so the /debug/slow check below has something to find
        slow_query_seconds=0.0,
    )
    with ServiceThread(config) as server:
        print(f"service-smoke: listening on 127.0.0.1:{server.port}")
        with ServiceClient(port=server.port) as client:
            info = client.ingest(SMOKE_XML, doc_id="smoke", journal=True)
            check(
                "ingest",
                info["status"] == "ready" and info["nodes"] > 0,
                f"{info['nodes']} nodes, {info['partitions']} partitions",
            )

            result = client.query("smoke", "//keyword", show=3)
            check(
                "query //keyword",
                result["results"] == 40 and len(result["values"]) == 3,
                f"{result['results']} results, cost {result['cost']:.1f}",
            )

            health = client.healthz()
            check(
                "healthz",
                health["status"] == "ok"
                and health["documents"]["ready"] == 1,
                f"status={health['status']}",
            )

            snapshot = client.metrics_json()
            requests_total = snapshot["counters"].get("service.requests", 0)
            check(
                "metrics json",
                snapshot["schema"] == "repro-telemetry/1" and requests_total >= 3,
                f"{requests_total} requests counted",
            )

            prom = client.metrics_text()
            check(
                "metrics prometheus",
                "# TYPE repro_service_requests_total counter" in prom
                and "repro_service_request_seconds_count" in prom,
                f"{len(prom.splitlines())} lines",
            )

            try:
                client.query("smoke", "//(")
                check("query syntax error -> 400", False)
            except ServiceClientError as exc:
                check(
                    "query syntax error -> 400",
                    exc.status == 400 and exc.problem.get("status") == 400,
                )

            traces = client.debug_traces()
            query_traces = [
                t for t in traces["traces"] if t["attrs"].get("route") == "query"
            ]
            check(
                "debug traces",
                traces["tracing"]["sampled"] >= 1 and len(query_traces) >= 1,
                f"{len(traces['traces'])} buffered",
            )

            trace_id = query_traces[-1]["trace_id"]
            trace = client.debug_trace(trace_id)
            roots = [s for s in trace["spans"] if s.get("parent_id") is None]
            engine_spans = [
                s for s in trace["spans"] if s["name"] == "query.run"
            ]
            check(
                "debug trace span tree",
                len(roots) == 1
                and roots[0]["name"] == "service.request"
                and len(engine_spans) == 1,
                f"{len(trace['spans'])} spans, {len(roots)} root(s)",
            )

            chrome = client.debug_trace(trace_id, chrome=True)
            reloaded = load_chrome_trace(io.StringIO(json.dumps(chrome)))
            check(
                "debug trace chrome round-trip",
                len(reloaded) == len(trace["spans"])
                and chrome["otherData"]["trace_id"] == trace_id,
                f"{len(reloaded)} events",
            )

            slow = client.debug_slow()
            slow_queries = [
                entry for entry in slow["slow"] if entry["route"] == "query"
            ]
            check(
                "debug slow",
                len(slow_queries) >= 1
                and slow_queries[0]["query"] == "//keyword",
                f"{len(slow['slow'])} entries",
            )

            heat = client.debug_heat()
            hottest = heat.get("hottest", [])
            smoke_heat = heat["documents"].get("smoke", {})
            check(
                "debug heat",
                len(hottest) >= 1
                and hottest[0]["doc"] == "smoke"
                and smoke_heat.get("steps", 0) > 0,
                f"{len(hottest)} hot partitions, "
                f"{smoke_heat.get('steps', 0)} steps",
            )

            deleted = client.delete("smoke")
            check("delete", deleted["status"] == "deleted")
    print(
        "service-smoke: "
        + ("OK" if not failures else f"FAILED ({', '.join(failures)})")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
