"""Blocking HTTP client for the service (tests, smoke, load generator).

Only the *server* side is hand-rolled; the client rides
:mod:`http.client` from the stdlib. One :class:`ServiceClient` wraps one
keep-alive connection and is **not** thread-safe — give each thread its
own client (the load generator does exactly that).

Error model: any problem-JSON response raises :class:`ServiceClientError`
carrying the parsed problem document, so test assertions can look at
``exc.status`` / ``exc.problem["detail"]`` instead of string-matching.

Resilience: pass a :class:`RetryPolicy` to retry transient failures —
503 (saturated admission queue, injected fault, backend I/O hiccup) and
504 (request timeout) — with capped exponential backoff and seeded
jitter. The server stamps ``Retry-After`` on those statuses; the client
honors it as a floor under its own backoff. Every retry bumps the
``service.client.retries`` counter.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union
from urllib.parse import quote, urlencode

from repro import telemetry
from repro.errors import ReproError

#: statuses worth retrying: both are transient by the server's contract
#: (saturation clears, faults/I/O errors are resumable, timeouts pass)
RETRYABLE_STATUSES = (503, 504)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff and seeded jitter.

    ``attempts`` counts *total* tries, so ``attempts=4`` means one
    initial request plus at most three retries. The delay before retry
    *n* (1-based) is ``min(max_delay, base_delay * multiplier**(n-1))``,
    spread by ``jitter`` (a ±fraction, drawn from a :class:`random.Random`
    seeded per client — deterministic in tests, decorrelated across the
    load generator's worker threads), then floored by any ``Retry-After``
    the server sent.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    statuses: tuple[int, ...] = RETRYABLE_STATUSES

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """Jittered delay before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ValueError(f"retry_number must be >= 1, got {retry_number}")
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry_number - 1)
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


def _retry_after_seconds(headers: dict[str, str]) -> float:
    """Parse a ``Retry-After`` header; 0 when absent or not delta-seconds."""
    raw = headers.get("retry-after", "").strip()
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0  # HTTP-date form (or garbage): fall back to backoff only


class ServiceClientError(ReproError):
    """An error response (or transport failure) from the service."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        problem: Optional[dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.problem = problem or {}


class ServiceClient:
    """Minimal blocking client over one keep-alive connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        #: retries performed over this client's lifetime
        self.retries = 0
        self._sleep = sleep
        self._rng = random.Random(retry.seed if retry is not None else 0)
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- transport -------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        params: Optional[dict[str, Any]] = None,
        body: Optional[bytes] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round trip; returns ``(status, headers, body)`` raw.

        Retries exactly once on a dropped connection — the server
        closes keep-alive sockets on shutdown and on protocol errors,
        and ``http.client`` surfaces that as ``BadStatusLine`` or a
        connection reset on the *next* request.
        """
        target = quote(path)
        if params:
            target += "?" + urlencode(
                {key: value for key, value in params.items() if value is not None}
            )
        for attempt in (1, 2):
            try:
                self._conn.request(method, target, body=body, headers=headers or {})
                response = self._conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._conn.close()
                if attempt == 2:
                    raise ServiceClientError(
                        f"{method} {target} failed: {type(exc).__name__}: {exc}"
                    ) from exc
                continue
            return (
                response.status,
                {name.lower(): value for name, value in response.getheaders()},
                data,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def request_json(
        self,
        method: str,
        path: str,
        params: Optional[dict[str, Any]] = None,
        body: Optional[bytes] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> dict[str, Any]:
        """A round trip that decodes JSON and raises on error statuses.

        With a :class:`RetryPolicy` attached, transient statuses (the
        policy's ``statuses``; 503/504 by default) are retried up to
        ``attempts`` total tries. The wait before each retry is the
        policy's jittered backoff or the server's ``Retry-After``,
        whichever is larger.
        """
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(1, attempts + 1):
            status, response_headers, data = self.request(
                method, path, params=params, body=body, headers=headers
            )
            if (
                policy is None
                or attempt == attempts
                or status not in policy.statuses
            ):
                break
            wait = max(
                policy.backoff(attempt, self._rng),
                _retry_after_seconds(response_headers),
            )
            self.retries += 1
            telemetry.count("service.client.retries")
            telemetry.count(f"service.client.retries.{status}")
            self._sleep(wait)
        content_type = response_headers.get("content-type", "")
        payload: Any = None
        if "json" in content_type and data:
            payload = json.loads(data.decode("utf-8"))
        if status >= 400:
            problem = payload if isinstance(payload, dict) else {}
            detail = problem.get("detail") or data.decode("utf-8", "replace")
            raise ServiceClientError(
                f"{method} {path} -> {status}: {detail}",
                status=status,
                problem=problem,
            )
        if not isinstance(payload, dict):
            raise ServiceClientError(
                f"{method} {path} -> {status}: expected a JSON object body, "
                f"got {content_type!r}"
            )
        return payload

    # -- endpoints -------------------------------------------------------

    def ingest(
        self,
        xml: Union[str, bytes],
        doc_id: Optional[str] = None,
        algorithm: Optional[str] = None,
        limit: Optional[int] = None,
        parallel: Optional[int] = None,
        journal: bool = False,
        resume: bool = False,
    ) -> dict[str, Any]:
        body = xml.encode("utf-8") if isinstance(xml, str) else xml
        params: dict[str, Any] = {
            "id": doc_id,
            "algorithm": algorithm,
            "limit": limit,
            "parallel": parallel,
        }
        if journal:
            params["journal"] = "1"
        if resume:
            params["resume"] = "1"
        return self.request_json(
            "POST",
            "/documents",
            params=params,
            body=body,
            headers={"content-type": "application/xml"},
        )

    def query(
        self, doc_id: str, xpath: str, show: int = 0
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"xpath": xpath}
        if show:
            params["show"] = show
        return self.request_json(
            "GET", f"/documents/{doc_id}/query", params=params
        )

    def documents(self) -> list[dict[str, Any]]:
        return self.request_json("GET", "/documents")["documents"]

    def document(self, doc_id: str) -> dict[str, Any]:
        return self.request_json("GET", f"/documents/{doc_id}")

    def delete(self, doc_id: str) -> dict[str, Any]:
        return self.request_json("DELETE", f"/documents/{doc_id}")

    def healthz(self) -> dict[str, Any]:
        return self.request_json("GET", "/healthz")

    def metrics_json(self) -> dict[str, Any]:
        return self.request_json("GET", "/metrics", params={"format": "json"})

    def metrics_text(self) -> str:
        status, _headers, data = self.request(
            "GET", "/metrics", params={"format": "prom"}
        )
        if status != 200:
            raise ServiceClientError(
                f"GET /metrics -> {status}", status=status
            )
        return data.decode("utf-8")

    def debug_traces(self) -> dict[str, Any]:
        return self.request_json("GET", "/debug/traces")

    def debug_trace(self, trace_id: str, chrome: bool = False) -> dict[str, Any]:
        """One sampled trace; ``chrome=True`` fetches the Chrome-trace
        JSON payload (round-trips through
        :func:`repro.obsv.chrometrace.load_chrome_trace`)."""
        params = {"format": "chrome"} if chrome else None
        return self.request_json(
            "GET", f"/debug/traces/{trace_id}", params=params
        )

    def debug_slow(self) -> dict[str, Any]:
        return self.request_json("GET", "/debug/slow")

    def debug_heat(
        self, top: Optional[int] = None, edges: bool = False
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"top": top}
        if edges:
            params["edges"] = "1"
        return self.request_json("GET", "/debug/heat", params=params)
