"""Blocking HTTP client for the service (tests, smoke, load generator).

Only the *server* side is hand-rolled; the client rides
:mod:`http.client` from the stdlib. One :class:`ServiceClient` wraps one
keep-alive connection and is **not** thread-safe — give each thread its
own client (the load generator does exactly that).

Error model: any problem-JSON response raises :class:`ServiceClientError`
carrying the parsed problem document, so test assertions can look at
``exc.status`` / ``exc.problem["detail"]`` instead of string-matching.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Optional, Union
from urllib.parse import quote, urlencode

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """An error response (or transport failure) from the service."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        problem: Optional[dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.problem = problem or {}


class ServiceClient:
    """Minimal blocking client over one keep-alive connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- transport -------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        params: Optional[dict[str, Any]] = None,
        body: Optional[bytes] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round trip; returns ``(status, headers, body)`` raw.

        Retries exactly once on a dropped connection — the server
        closes keep-alive sockets on shutdown and on protocol errors,
        and ``http.client`` surfaces that as ``BadStatusLine`` or a
        connection reset on the *next* request.
        """
        target = quote(path)
        if params:
            target += "?" + urlencode(
                {key: value for key, value in params.items() if value is not None}
            )
        for attempt in (1, 2):
            try:
                self._conn.request(method, target, body=body, headers=headers or {})
                response = self._conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._conn.close()
                if attempt == 2:
                    raise ServiceClientError(
                        f"{method} {target} failed: {type(exc).__name__}: {exc}"
                    ) from exc
                continue
            return (
                response.status,
                {name.lower(): value for name, value in response.getheaders()},
                data,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def request_json(
        self,
        method: str,
        path: str,
        params: Optional[dict[str, Any]] = None,
        body: Optional[bytes] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> dict[str, Any]:
        """A round trip that decodes JSON and raises on error statuses."""
        status, response_headers, data = self.request(
            method, path, params=params, body=body, headers=headers
        )
        content_type = response_headers.get("content-type", "")
        payload: Any = None
        if "json" in content_type and data:
            payload = json.loads(data.decode("utf-8"))
        if status >= 400:
            problem = payload if isinstance(payload, dict) else {}
            detail = problem.get("detail") or data.decode("utf-8", "replace")
            raise ServiceClientError(
                f"{method} {path} -> {status}: {detail}",
                status=status,
                problem=problem,
            )
        if not isinstance(payload, dict):
            raise ServiceClientError(
                f"{method} {path} -> {status}: expected a JSON object body, "
                f"got {content_type!r}"
            )
        return payload

    # -- endpoints -------------------------------------------------------

    def ingest(
        self,
        xml: Union[str, bytes],
        doc_id: Optional[str] = None,
        algorithm: Optional[str] = None,
        limit: Optional[int] = None,
        parallel: Optional[int] = None,
        journal: bool = False,
        resume: bool = False,
    ) -> dict[str, Any]:
        body = xml.encode("utf-8") if isinstance(xml, str) else xml
        params: dict[str, Any] = {
            "id": doc_id,
            "algorithm": algorithm,
            "limit": limit,
            "parallel": parallel,
        }
        if journal:
            params["journal"] = "1"
        if resume:
            params["resume"] = "1"
        return self.request_json(
            "POST",
            "/documents",
            params=params,
            body=body,
            headers={"content-type": "application/xml"},
        )

    def query(
        self, doc_id: str, xpath: str, show: int = 0
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"xpath": xpath}
        if show:
            params["show"] = show
        return self.request_json(
            "GET", f"/documents/{doc_id}/query", params=params
        )

    def documents(self) -> list[dict[str, Any]]:
        return self.request_json("GET", "/documents")["documents"]

    def document(self, doc_id: str) -> dict[str, Any]:
        return self.request_json("GET", f"/documents/{doc_id}")

    def delete(self, doc_id: str) -> dict[str, Any]:
        return self.request_json("DELETE", f"/documents/{doc_id}")

    def healthz(self) -> dict[str, Any]:
        return self.request_json("GET", "/healthz")

    def metrics_json(self) -> dict[str, Any]:
        return self.request_json("GET", "/metrics", params={"format": "json"})

    def metrics_text(self) -> str:
        status, _headers, data = self.request(
            "GET", "/metrics", params={"format": "prom"}
        )
        if status != 200:
            raise ServiceClientError(
                f"GET /metrics -> {status}", status=status
            )
        return data.decode("utf-8")
