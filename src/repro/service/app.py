"""HTTP front end: router, connection handling, service lifecycle.

The server is a hand-rolled HTTP/1.1 implementation over
:func:`asyncio.start_server` — no ``http.server``, no third-party
framework. It speaks the subset the document store needs: request line +
headers, ``Content-Length`` bodies (chunked uploads are a 501),
keep-alive connections, and problem-JSON errors for every protocol
failure.

Threading model:

* **one event-loop thread** parses sockets, routes, and runs the
  middleware; it never calls the engine,
* **a bounded ThreadPoolExecutor** runs every blocking engine call via
  :meth:`DocumentService.run_blocking` — the executor-offload wrapper
  repro-lint rule RB002 checks async handler bodies for.

:class:`ServiceThread` hosts a service on a dedicated loop thread so
synchronous callers (tests, the smoke script, the load generator's
setup) can start/stop one with a context manager.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import os
import shutil
import sys
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional
from urllib.parse import parse_qs, unquote, urlsplit

from repro import telemetry
from repro.service.handlers import Handlers
from repro.service.middleware import (
    Handler,
    HeaderTooLargeError,
    MethodNotAllowedError,
    MiddlewareStack,
    PayloadTooLargeError,
    ProtocolError,
    Request,
    Response,
    RouteNotFoundError,
    ServiceError,
    UnsupportedProtocolError,
    map_exception,
)
from repro.service.state import StoreRegistry

#: request-head size bound (request line + headers); also the stream limit
MAX_HEADER_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServiceConfig:
    """Tunables for one :class:`DocumentService` instance."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the bound port lands in ``service.port``)
    port: int = 8080
    #: admission-control bound: requests in flight at once
    max_concurrency: int = 64
    #: seconds a request may wait for admission, and then run
    request_timeout: float = 30.0
    #: executor threads for blocking engine work (None = stdlib default)
    workers: Optional[int] = None
    #: largest accepted request body
    max_body_bytes: int = 64 * 1024 * 1024
    #: where ingest journals live (None = private temp dir, cleaned on stop)
    journal_dir: Optional[str] = None
    default_algorithm: str = "ekm"
    default_limit: int = 256
    #: turn the telemetry registry on at startup (metrics endpoints need it)
    enable_telemetry: bool = True
    #: request-correlated tracing (needs telemetry; ``/debug/traces``)
    tracing: bool = True
    #: head-sampling: keep 1-in-N traces (1 = all, 0 = none)
    trace_sample_rate: int = 1
    #: completed traces retained in the ring buffer
    trace_buffer: int = 256
    #: seed for the deterministic sampling decision
    trace_seed: int = 2006
    #: requests slower than this land in ``/debug/slow`` (None = off)
    slow_query_seconds: Optional[float] = 1.0
    #: per-(document, partition) access-heat accounting (``/debug/heat``)
    heat: bool = True
    #: build a structural index per document at ingest (window-based
    #: axis evaluation; dropped on delete, rebuilt on re-ingest)
    index: bool = True
    #: (document, xpath) response-cache capacity; 0 disables. Off by
    #: default: a cache hit skips the engine entirely, which changes the
    #: one-`query.run`-span-per-request shape traced benches assert
    query_cache: int = 0


class Router:
    """Literal-and-placeholder segment router (``/documents/{doc_id}/query``)."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler, str]] = []

    def add(self, method: str, pattern: str, handler: Handler, name: str) -> None:
        segments = tuple(seg for seg in pattern.split("/") if seg)
        self._routes.append((method.upper(), segments, handler, name))

    def resolve(
        self, method: str, path: str
    ) -> tuple[Handler, str, dict[str, str]]:
        """Match a request; 404 on unknown path, 405 on wrong method."""
        segments = tuple(seg for seg in path.split("/") if seg)
        allowed: list[str] = []
        for route_method, pattern, handler, name in self._routes:
            params = _match_segments(pattern, segments)
            if params is None:
                continue
            if route_method != method.upper():
                allowed.append(route_method)
                continue
            return handler, name, params
        if allowed:
            raise MethodNotAllowedError(
                f"{method} not allowed for {path!r} "
                f"(allowed: {', '.join(sorted(set(allowed)))})"
            )
        raise RouteNotFoundError(f"no route matches {method} {path!r}")


def _match_segments(
    pattern: tuple[str, ...], segments: tuple[str, ...]
) -> Optional[dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


class DocumentService:
    """The document-store service: state + router + asyncio server."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        if self.config.journal_dir is not None:
            journal_dir = self.config.journal_dir
            os.makedirs(journal_dir, exist_ok=True)
            self._owns_journal_dir = False
        else:
            journal_dir = tempfile.mkdtemp(prefix="repro-service-")
            self._owns_journal_dir = True
        self.tracer: Optional[telemetry.Tracer] = None
        if self.config.tracing and self.config.enable_telemetry:
            self.tracer = telemetry.Tracer(
                capacity=self.config.trace_buffer,
                sample_rate=self.config.trace_sample_rate,
                seed=self.config.trace_seed,
                slow_threshold=self.config.slow_query_seconds,
            )
        self.heat: Optional[telemetry.HeatAccumulator] = (
            telemetry.HeatAccumulator() if self.config.heat else None
        )
        self.state = StoreRegistry(
            journal_dir,
            default_algorithm=self.config.default_algorithm,
            default_limit=self.config.default_limit,
            heat=self.heat,
            index=self.config.index,
            query_cache=self.config.query_cache,
        )
        self.middleware = MiddlewareStack(
            max_concurrency=self.config.max_concurrency,
            request_timeout=self.config.request_timeout,
            tracer=self.tracer,
        )
        self.router = Router()
        Handlers(self).install(self.router)
        self.port = self.config.port
        self.started_at = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        # live connections (loop-thread only); stop() closes them so every
        # connection task completes before the loop is torn down
        self._connections: set[asyncio.StreamWriter] = set()
        self._connection_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "DocumentService":
        if self.config.enable_telemetry:
            telemetry.enable()
        if self.tracer is not None:
            # the tracer collects request-correlated spans as a registry
            # sink; span records from executor threads reach it through
            # the normal record_span fan-out
            telemetry.registry().add_sink(self.tracer)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-service"
        )
        # crash-leftover sweep (torn WAL tails, orphan ingest journals)
        # runs before the socket binds: no request ever races recovery
        await self.run_blocking(self.state.boot_recovery)
        self.started_at = telemetry.clock()
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        telemetry.count("service.starts")
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._connection_tasks:
            await asyncio.gather(
                *list(self._connection_tasks), return_exceptions=True
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.tracer is not None:
            try:
                telemetry.registry().remove_sink(self.tracer)
            except ValueError:
                pass  # registry was swapped under us (capture/bench runs)
        if self._owns_journal_dir:
            shutil.rmtree(self.state.journal_dir, ignore_errors=True)

    async def run_blocking(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run a blocking engine call on the worker pool, never the loop.

        This is the executor-offload wrapper repro-lint rule RB002
        requires: async handler bodies must route blocking engine entry
        points (parse / partition / ingest / query) through here so the
        event loop keeps serving sockets while the engine works.

        The current :mod:`contextvars` context is copied onto the worker
        thread, so the request's :class:`~repro.telemetry.TraceContext`
        survives the executor hop and engine spans opened there join the
        request's span tree instead of forming orphan per-thread traces.
        """
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(
            self._executor, functools.partial(ctx.run, fn, *args, **kwargs)
        )

    # -- connection handling ---------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._connections.add(writer)
        telemetry.count("service.connections")
        try:
            keep_alive = True
            while keep_alive:
                try:
                    request = await self._read_request(reader)
                except ServiceError as exc:
                    telemetry.count("service.protocol_errors")
                    await self._send(writer, map_exception(exc), keep_alive=False)
                    break
                if request is None:
                    break
                keep_alive = _wants_keep_alive(request)
                response = await self._dispatch(request)
                await self._send(writer, response, keep_alive)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            telemetry.count("service.connections.aborted")
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                telemetry.count("service.connections.aborted")

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        """Parse one request off the stream; ``None`` on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError("truncated request head") from None
        except asyncio.LimitOverrunError:
            raise HeaderTooLargeError(
                f"request head exceeds {MAX_HEADER_BYTES} bytes"
            ) from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise ProtocolError(f"unsupported protocol version: {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                raise ProtocolError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise UnsupportedProtocolError(
                "chunked transfer encoding is not supported; "
                "send a Content-Length body"
            )
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ProtocolError(
                f"malformed Content-Length: {headers['content-length']!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"negative Content-Length: {length}")
        if length > self.config.max_body_bytes:
            raise PayloadTooLargeError(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        params = {
            key: values[-1]
            for key, values in parse_qs(
                split.query, keep_blank_values=True
            ).items()
        }
        return Request(
            method=method.upper(),
            path=unquote(split.path) or "/",
            params=params,
            headers=headers,
            body=body,
            http_version=version.removeprefix("HTTP/"),
        )

    async def _dispatch(self, request: Request) -> Response:
        try:
            handler, name, path_params = self.router.resolve(
                request.method, request.path
            )
        except ServiceError as exc:
            # run the failure through the middleware anyway so 404/405s
            # get request ids, counters and latency accounting too

            async def _reraise(_request: Request, _exc: ServiceError = exc) -> Response:
                raise _exc

            return await self.middleware.run(request, _reraise)
        request.route_name = name
        request.path_params = path_params
        return await self.middleware.run(request, handler)

    async def _send(
        self, writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        headers = {
            "content-type": response.content_type,
            "content-length": str(len(response.body)),
            "connection": "keep-alive" if keep_alive else "close",
            "server": "repro-service/1",
        }
        headers.update(response.headers)
        status_text = _STATUS_TEXT.get(response.status, "Unknown")
        head = f"HTTP/1.1 {response.status} {status_text}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + response.body)
        await writer.drain()


def _wants_keep_alive(request: Request) -> bool:
    connection = request.headers.get("connection", "").lower()
    if request.http_version == "1.0":
        return connection == "keep-alive"
    return connection != "close"


# ---------------------------------------------------------------------------
# Hosting helpers
# ---------------------------------------------------------------------------


class ServiceThread:
    """Host a :class:`DocumentService` on a dedicated event-loop thread.

    For synchronous callers — tests, the smoke script, the load
    generator — that need a live server without owning a loop::

        with ServiceThread(ServiceConfig(port=0)) as server:
            client = ServiceClient(port=server.port)
            ...
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig(port=0)
        self.service: Optional[DocumentService] = None
        self.port = 0
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service thread did not come up within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            loop, stop_event = self._loop, self._stop_event
            loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.service = DocumentService(self.config)
        try:
            await self.service.start()
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.service.port
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()


async def _serve_until_cancelled(config: ServiceConfig) -> None:
    service = DocumentService(config)
    await service.start()
    print(
        f"repro-service listening on http://{config.host}:{service.port}",
        file=sys.stderr,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await service.stop()


def run(config: Optional[ServiceConfig] = None) -> int:
    """Blocking entry point for ``repro serve`` (Ctrl-C stops it)."""
    try:
        asyncio.run(_serve_until_cancelled(config or ServiceConfig()))
    except KeyboardInterrupt:
        print("repro-service: shutting down", file=sys.stderr)
    return 0
