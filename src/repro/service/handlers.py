"""Route handlers for the document-store service.

Async methods here never touch the engine directly: every blocking call
— parse, partition, page I/O, even registry dict work — rides
``DocumentService.run_blocking`` so the event-loop thread only shuffles
sockets and JSON. repro-lint rule RB002 enforces the discipline for the
engine entry points.

Exceptions are the observability endpoints: ``/healthz``, ``/metrics``
and the trace-reading ``/debug/*`` endpoints read the telemetry
registry / tracer (all internally locked, microsecond critical
sections) directly on the loop so they stay responsive even when the
worker pool is saturated with ingests — exactly when you want a health
probe or a trace lookup to answer. ``/debug/heat`` is the one debug
route that *does* offload: orienting raw hop tallies onto tree edges is
O(distinct hops), engine-grade work that belongs on the executor.
"""

from __future__ import annotations

import json

from typing import TYPE_CHECKING

from repro import telemetry
from repro.obsv.chrometrace import CHROME_SCHEMA, chrome_trace_events
from repro.service.middleware import (
    DocumentNotFoundError,
    Request,
    Response,
    ValidationError,
)

if TYPE_CHECKING:  # import cycle: app builds Handlers
    from repro.service.app import DocumentService, Router

#: counters surfaced (and summed) by /healthz as degradation signals —
#: every one of these is zero in a healthy process
DEGRADATION_COUNTERS = (
    "faults.injected",
    "partition.fallback.downgrades",
    "storage.buffer.corrupt_reads",
    "service.documents.failed",
    "service.errors.corrupt",
    "service.errors.fault",
    "service.errors.internal",
    "service.errors.io",
    "service.recovery.wal_quarantined",
)


class Handlers:
    """The service's route handlers, bound to one :class:`DocumentService`."""

    def __init__(self, service: "DocumentService"):
        self.service = service
        self.state = service.state

    def install(self, router: "Router") -> None:
        router.add("GET", "/", self.root, "root")
        router.add("GET", "/healthz", self.healthz, "healthz")
        router.add("GET", "/metrics", self.metrics, "metrics")
        router.add("POST", "/documents", self.ingest, "ingest")
        router.add("GET", "/documents", self.list_documents, "documents")
        router.add("GET", "/documents/{doc_id}", self.document_info, "document")
        router.add("DELETE", "/documents/{doc_id}", self.delete_document, "delete")
        router.add("GET", "/documents/{doc_id}/query", self.query, "query")
        router.add("GET", "/debug/traces", self.debug_traces, "debug_traces")
        router.add(
            "GET", "/debug/traces/{trace_id}", self.debug_trace, "debug_trace"
        )
        router.add("GET", "/debug/slow", self.debug_slow, "debug_slow")
        router.add("GET", "/debug/heat", self.debug_heat, "debug_heat")

    # -- document lifecycle ----------------------------------------------

    async def ingest(self, request: Request) -> Response:
        """``POST /documents[?id=&algorithm=&limit=&parallel=&journal=&resume=]``

        Body: the XML document. 201 with the document info on success.
        """
        if not request.body:
            raise ValidationError("POST /documents requires a non-empty XML body")
        info = await self.service.run_blocking(
            self.state.ingest_document,
            request.body,
            doc_id=request.params.get("id"),
            algorithm=request.params.get("algorithm"),
            limit=request.param_int("limit", minimum=1),
            parallel=request.param_int("parallel", minimum=1),
            journal=request.param_flag("journal"),
            resume=request.param_flag("resume"),
        )
        return Response.json(info, status=201)

    async def query(self, request: Request) -> Response:
        """``GET /documents/{doc_id}/query?xpath=...[&show=N]``"""
        xpath = request.params.get("xpath")
        if not xpath:
            raise ValidationError("query requires an ?xpath=... parameter")
        show = request.param_int("show", default=0, minimum=0)
        payload = await self.service.run_blocking(
            self.state.query_document,
            request.path_params["doc_id"],
            xpath,
            show or 0,
        )
        return Response.json(payload)

    async def list_documents(self, request: Request) -> Response:
        documents = await self.service.run_blocking(self.state.list_documents)
        return Response.json({"documents": documents})

    async def document_info(self, request: Request) -> Response:
        info = await self.service.run_blocking(
            self.state.document_info, request.path_params["doc_id"]
        )
        return Response.json(info)

    async def delete_document(self, request: Request) -> Response:
        info = await self.service.run_blocking(
            self.state.delete_document, request.path_params["doc_id"]
        )
        return Response.json(info)

    # -- observability ---------------------------------------------------

    async def root(self, request: Request) -> Response:
        return Response.json(
            {
                "service": "repro-service",
                "description": "tree-sibling-partitioned XML document store",
                "endpoints": [
                    "POST /documents",
                    "GET /documents",
                    "GET /documents/{doc_id}",
                    "GET /documents/{doc_id}/query?xpath=...",
                    "DELETE /documents/{doc_id}",
                    "GET /healthz",
                    "GET /metrics",
                    "GET /debug/traces",
                    "GET /debug/traces/{trace_id}",
                    "GET /debug/slow",
                    "GET /debug/heat",
                ],
            }
        )

    async def healthz(self, request: Request) -> Response:
        """Liveness + degradation counters; always 200 while serving."""
        reg = telemetry.registry()
        degradation = {}
        for name in DEGRADATION_COUNTERS:
            counter = reg.counters.get(name)
            degradation[name] = counter.value if counter is not None else 0
        degradation["telemetry.sink_errors"] = reg.sink_errors
        degraded = any(value > 0 for value in degradation.values())
        payload = {
            "status": "degraded" if degraded else "ok",
            "uptime_seconds": round(
                telemetry.clock() - self.service.started_at, 3
            ),
            "documents": self.state.status_counts(),
            "inflight": self.service.middleware.inflight,
            "max_concurrency": self.service.middleware.max_concurrency,
            "degradation": degradation,
            # what boot_recovery swept out of the journal dir at startup
            "recovery": self.state.recovery,
            # structural-index coverage (and cache occupancy if enabled)
            "index": self.state.index_status(),
        }
        return Response.json(payload)

    async def metrics(self, request: Request) -> Response:
        """``GET /metrics[?format=json|prom]`` — registry export.

        Default is the Prometheus text exposition (what a scraper
        expects); ``?format=json`` or an ``Accept: application/json``
        header selects the JSON snapshot.
        """
        fmt = request.params.get("format")
        if fmt not in (None, "json", "prom", "prometheus"):
            raise ValidationError(
                f"unknown metrics format {fmt!r} (use json or prom)"
            )
        reg = telemetry.registry()
        wants_json = fmt == "json" or (
            fmt is None and "application/json" in request.headers.get("accept", "")
        )
        if wants_json:
            return Response.json(telemetry.snapshot(reg))
        return Response.text(
            telemetry.prometheus_text(reg),
            content_type=telemetry.PROMETHEUS_CONTENT_TYPE,
        )

    # -- debug: tracing / slow queries / heat -----------------------------

    def _tracer(self) -> "telemetry.Tracer":
        tracer = self.service.tracer
        if tracer is None:
            raise ValidationError(
                "tracing is disabled for this service instance "
                "(ServiceConfig.tracing)"
            )
        return tracer

    async def debug_traces(self, request: Request) -> Response:
        """``GET /debug/traces`` — recent sampled traces, oldest first."""
        tracer = self._tracer()
        return Response.json(
            {
                "tracing": tracer.stats(),
                "sample_rate": tracer.sample_rate,
                "traces": [trace.summary() for trace in tracer.traces()],
            }
        )

    async def debug_trace(self, request: Request) -> Response:
        """``GET /debug/traces/{trace_id}[?format=chrome]`` — one span tree.

        ``?format=chrome`` renders the trace through the PR 4
        Chrome-trace exporter: the payload round-trips through
        :func:`repro.obsv.chrometrace.load_chrome_trace` and opens in
        ``chrome://tracing`` / Perfetto.
        """
        tracer = self._tracer()
        trace_id = request.path_params["trace_id"]
        trace = tracer.trace(trace_id)
        if trace is None:
            raise DocumentNotFoundError(
                f"no sampled trace {trace_id!r} in the ring buffer "
                f"(capacity {tracer.capacity})"
            )
        fmt = request.params.get("format")
        if fmt in ("chrome", "perfetto"):
            payload = {
                "traceEvents": chrome_trace_events(trace.spans),
                "displayTimeUnit": "ms",
                "otherData": {
                    "schema": CHROME_SCHEMA,
                    "trace_id": trace.trace_id,
                },
            }
            return Response.text(
                json.dumps(payload, sort_keys=True) + "\n",
                content_type="application/json",
            )
        if fmt is not None:
            raise ValidationError(
                f"unknown trace format {fmt!r} (use chrome)"
            )
        return Response.json(trace.as_dict())

    async def debug_slow(self, request: Request) -> Response:
        """``GET /debug/slow`` — requests over the slow-query threshold."""
        tracer = self._tracer()
        return Response.json(
            {
                "threshold_seconds": tracer.slow_threshold,
                "slow": [entry.as_dict() for entry in tracer.slow()],
            }
        )

    async def debug_heat(self, request: Request) -> Response:
        """``GET /debug/heat[?top=N][&edges=1]`` — access heat per
        (document, partition); ``edges=1`` includes the oriented edge
        counts that feed ``repro.partition.workload``."""
        heat = self.service.heat
        if heat is None:
            raise ValidationError(
                "heat accounting is disabled for this service instance "
                "(ServiceConfig.heat)"
            )
        top = request.param_int("top", default=10, minimum=1)
        include_edges = request.param_flag("edges")
        profile = await self.service.run_blocking(heat.profile)
        return Response.json(
            profile.as_dict(top=top, include_edges=include_edges)
        )
