"""Route handlers for the document-store service.

Async methods here never touch the engine directly: every blocking call
— parse, partition, page I/O, even registry dict work — rides
``DocumentService.run_blocking`` so the event-loop thread only shuffles
sockets and JSON. repro-lint rule RB002 enforces the discipline for the
engine entry points.

Exceptions are the two observability endpoints: ``/healthz`` and
``/metrics`` read the telemetry registry (internally locked, microsecond
critical sections) directly on the loop so they stay responsive even
when the worker pool is saturated with ingests — exactly when you want a
health probe to answer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import telemetry
from repro.service.middleware import Request, Response, ValidationError

if TYPE_CHECKING:  # import cycle: app builds Handlers
    from repro.service.app import DocumentService, Router

#: counters surfaced (and summed) by /healthz as degradation signals —
#: every one of these is zero in a healthy process
DEGRADATION_COUNTERS = (
    "faults.injected",
    "partition.fallback.downgrades",
    "storage.buffer.corrupt_reads",
    "service.documents.failed",
    "service.errors.corrupt",
    "service.errors.fault",
    "service.errors.internal",
    "service.errors.io",
    "service.recovery.wal_quarantined",
)


class Handlers:
    """The service's route handlers, bound to one :class:`DocumentService`."""

    def __init__(self, service: "DocumentService"):
        self.service = service
        self.state = service.state

    def install(self, router: "Router") -> None:
        router.add("GET", "/", self.root, "root")
        router.add("GET", "/healthz", self.healthz, "healthz")
        router.add("GET", "/metrics", self.metrics, "metrics")
        router.add("POST", "/documents", self.ingest, "ingest")
        router.add("GET", "/documents", self.list_documents, "documents")
        router.add("GET", "/documents/{doc_id}", self.document_info, "document")
        router.add("DELETE", "/documents/{doc_id}", self.delete_document, "delete")
        router.add("GET", "/documents/{doc_id}/query", self.query, "query")

    # -- document lifecycle ----------------------------------------------

    async def ingest(self, request: Request) -> Response:
        """``POST /documents[?id=&algorithm=&limit=&parallel=&journal=&resume=]``

        Body: the XML document. 201 with the document info on success.
        """
        if not request.body:
            raise ValidationError("POST /documents requires a non-empty XML body")
        info = await self.service.run_blocking(
            self.state.ingest_document,
            request.body,
            doc_id=request.params.get("id"),
            algorithm=request.params.get("algorithm"),
            limit=request.param_int("limit", minimum=1),
            parallel=request.param_int("parallel", minimum=1),
            journal=request.param_flag("journal"),
            resume=request.param_flag("resume"),
        )
        return Response.json(info, status=201)

    async def query(self, request: Request) -> Response:
        """``GET /documents/{doc_id}/query?xpath=...[&show=N]``"""
        xpath = request.params.get("xpath")
        if not xpath:
            raise ValidationError("query requires an ?xpath=... parameter")
        show = request.param_int("show", default=0, minimum=0)
        payload = await self.service.run_blocking(
            self.state.query_document,
            request.path_params["doc_id"],
            xpath,
            show or 0,
        )
        return Response.json(payload)

    async def list_documents(self, request: Request) -> Response:
        documents = await self.service.run_blocking(self.state.list_documents)
        return Response.json({"documents": documents})

    async def document_info(self, request: Request) -> Response:
        info = await self.service.run_blocking(
            self.state.document_info, request.path_params["doc_id"]
        )
        return Response.json(info)

    async def delete_document(self, request: Request) -> Response:
        info = await self.service.run_blocking(
            self.state.delete_document, request.path_params["doc_id"]
        )
        return Response.json(info)

    # -- observability ---------------------------------------------------

    async def root(self, request: Request) -> Response:
        return Response.json(
            {
                "service": "repro-service",
                "description": "tree-sibling-partitioned XML document store",
                "endpoints": [
                    "POST /documents",
                    "GET /documents",
                    "GET /documents/{doc_id}",
                    "GET /documents/{doc_id}/query?xpath=...",
                    "DELETE /documents/{doc_id}",
                    "GET /healthz",
                    "GET /metrics",
                ],
            }
        )

    async def healthz(self, request: Request) -> Response:
        """Liveness + degradation counters; always 200 while serving."""
        reg = telemetry.registry()
        degradation = {}
        for name in DEGRADATION_COUNTERS:
            counter = reg.counters.get(name)
            degradation[name] = counter.value if counter is not None else 0
        degradation["telemetry.sink_errors"] = reg.sink_errors
        degraded = any(value > 0 for value in degradation.values())
        payload = {
            "status": "degraded" if degraded else "ok",
            "uptime_seconds": round(
                telemetry.clock() - self.service.started_at, 3
            ),
            "documents": self.state.status_counts(),
            "inflight": self.service.middleware.inflight,
            "max_concurrency": self.service.middleware.max_concurrency,
            "degradation": degradation,
            # what boot_recovery swept out of the journal dir at startup
            "recovery": self.state.recovery,
        }
        return Response.json(payload)

    async def metrics(self, request: Request) -> Response:
        """``GET /metrics[?format=json|prom]`` — registry export.

        Default is the Prometheus text exposition (what a scraper
        expects); ``?format=json`` or an ``Accept: application/json``
        header selects the JSON snapshot.
        """
        fmt = request.params.get("format")
        if fmt not in (None, "json", "prom", "prometheus"):
            raise ValidationError(
                f"unknown metrics format {fmt!r} (use json or prom)"
            )
        reg = telemetry.registry()
        wants_json = fmt == "json" or (
            fmt is None and "application/json" in request.headers.get("accept", "")
        )
        if wants_json:
            return Response.json(telemetry.snapshot(reg))
        return Response.text(
            telemetry.prometheus_text(reg),
            content_type=telemetry.PROMETHEUS_CONTENT_TYPE,
        )
