"""repro.service — concurrent HTTP front end over the document store.

A stdlib-only asyncio service (see ``docs/SERVICE.md``):

* ``POST /documents`` — bulk-load ingest (sequential or
  :class:`~repro.fastpath.parallel.ParallelBulkLoader`), with journaled
  crash-safe resume (``?journal=1`` / ``?resume=1``),
* ``GET /documents/{doc_id}/query?xpath=...`` — measured XPath
  execution over :mod:`repro.query`,
* ``GET /healthz`` — liveness plus the degradation counters the fault
  and fallback layers maintain,
* ``GET /metrics`` — the :mod:`repro.telemetry` registry as JSON or
  Prometheus text exposition.

Layering: ``app`` (HTTP + lifecycle) → ``middleware`` (ids, admission,
timeouts, problem-JSON) → ``handlers`` (routes) → ``state`` (store
registry + locks); ``client`` is the blocking test/bench client.

Start one from the CLI (``repro serve --port 8080``), or in-process::

    from repro.service import ServiceConfig, ServiceThread, ServiceClient

    with ServiceThread(ServiceConfig(port=0)) as server:
        with ServiceClient(port=server.port) as client:
            client.ingest("<doc><a/></doc>", doc_id="d1")
            client.query("d1", "//a")
"""

from repro.service.app import (
    DocumentService,
    Router,
    ServiceConfig,
    ServiceThread,
    run,
)
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.middleware import (
    MiddlewareStack,
    Request,
    Response,
    ServiceError,
    problem,
)
from repro.service.state import StoreRegistry

__all__ = [
    "DocumentService",
    "MiddlewareStack",
    "Request",
    "Response",
    "Router",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "StoreRegistry",
    "problem",
    "run",
]
