"""Store registry: the service's documents and their locking discipline.

Everything in this module **blocks** — parsing, partitioning, page I/O
through the latched :class:`~repro.storage.buffer.BufferPool` — so the
async front end only reaches it through ``DocumentService.run_blocking``
(executor offload; enforced by repro-lint rule RB002).

Locking discipline (see ``docs/SERVICE.md``):

* the registry's entry map is guarded by a plain mutex (``_lock``),
  held only for dict operations — never across engine work;
* each document carries a writer-preferring :class:`ReadWriteLock`:
  ingest, resume and delete take the write side; queries take the read
  side, so *distinct* documents ingest and query fully concurrently;
* the engine's navigation counters (``DocumentStore.stats``, reset and
  bumped unguarded by ``run_query``) are one shared block per store, so
  *same-document* queries additionally serialize on the entry's
  ``_stats_latch``. Cross-document parallelism is what the service
  scales on; a same-document query holds the latch only for the
  evaluation itself.

Crash-safe ingest: ``?journal=1`` routes the load through the fsync'd
import journal. A load that dies mid-way (injected fault, I/O error)
leaves the journal on disk and the entry ``failed``; re-POSTing the same
bytes with ``?resume=1`` replays the journal through
:func:`repro.bulkload.journal.resume_import`, which verifies the source
fingerprint before trusting it. A load that completes deletes its
journal — nothing to resume.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro import telemetry
from repro.bulkload.importer import BulkLoader, ImportResult
from repro.bulkload.journal import resume_import
from repro.errors import WalError
from repro.query.engine import evaluate, run_query, string_value
from repro.recovery import read_wal, trim_torn_tail
from repro.service.middleware import (
    DocumentConflictError,
    DocumentNotFoundError,
    ValidationError,
)
from repro.storage.store import DocumentStore


class ReadWriteLock:
    """A writer-preferring reader/writer lock over one condition variable.

    Readers share; a writer excludes everyone. Arriving writers block
    *new* readers (``_writers_waiting``), so a steady query stream can
    never starve an ingest or delete.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # repro: guarded-by(_cond)
        self._writer = False  # repro: guarded-by(_cond)
        self._writers_waiting = 0  # repro: guarded-by(_cond)

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class QueryCache:
    """LRU cache of finished query payloads, keyed ``(doc_id, xpath,
    show)``.

    Staleness discipline rides the per-document ``ReadWriteLock``:
    lookups and inserts happen while the caller holds the document's
    *read* lock, and every writer (ingest, re-ingest, delete)
    invalidates the document's keys while still holding the *write*
    lock — before any blocked reader can resume. A payload therefore
    never outlives the store state it was computed from.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, dict[str, Any]] = (
            OrderedDict()
        )  # repro: guarded-by(_lock)

    def get(self, key: tuple) -> Optional[dict[str, Any]]:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                telemetry.count("service.cache.misses")
                return None
            self._entries.move_to_end(key)
        telemetry.count("service.cache.hits")
        return dict(payload)

    def put(self, key: tuple, payload: dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = dict(payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_document(self, doc_id: str) -> int:
        """Drop every cached payload for ``doc_id`` (writer holds the
        document's write lock)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == doc_id]
            for key in stale:
                del self._entries[key]
        if stale:
            telemetry.count("service.cache.invalidations", len(stale))
        return len(stale)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "capacity": self.capacity}


class DocumentEntry:
    """One stored document plus its concurrency state.

    Field writes happen under the entry's write lock (ingest/delete) or
    the stats latch (query accounting); readers snapshot via
    :meth:`info` which copies scalars only.
    """

    def __init__(self, doc_id: str, algorithm: str, limit: int):
        self.doc_id = doc_id
        self.algorithm = algorithm
        self.limit = limit
        self.lock = ReadWriteLock()
        #: serializes same-document query execution — ``run_query``
        #: resets and mutates the store's shared stats block unguarded
        self._stats_latch = threading.Lock()
        self.status = "loading"  # loading | ready | failed
        self.store: Optional[DocumentStore] = None
        self.error: Optional[str] = None
        self.journal_path: Optional[str] = None
        self.nodes = 0
        self.partitions = 0
        self.total_weight = 0
        self.spills = 0
        self.events = 0
        self.resumed = False
        self.queries = 0

    def apply_result(self, result: ImportResult, store: DocumentStore) -> None:
        """Publish a finished import (caller holds the write lock)."""
        self.store = store
        self.status = "ready"
        self.error = None
        self.nodes = len(result.tree.nodes)
        self.partitions = result.emitted_partitions
        self.total_weight = result.total_weight
        self.spills = result.spills
        self.events = result.events
        self.resumed = result.resumed

    def info(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.doc_id,
            "status": self.status,
            "algorithm": self.algorithm,
            "limit": self.limit,
            "nodes": self.nodes,
            "partitions": self.partitions,
            "total_weight": self.total_weight,
            "spills": self.spills,
            "events": self.events,
            "resumed": self.resumed,
            "queries": self.queries,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.journal_path is not None:
            out["resumable"] = True
        return out


class StoreRegistry:
    """All documents the service holds, plus the blocking entry points."""

    def __init__(
        self,
        journal_dir: str,
        default_algorithm: str = "ekm",
        default_limit: int = 256,
        heat: Optional[telemetry.HeatAccumulator] = None,
        index: bool = True,
        query_cache: int = 0,
    ):
        self.journal_dir = journal_dir
        self.default_algorithm = default_algorithm
        self.default_limit = default_limit
        #: optional live access-heat accounting; ready stores get a
        #: hop buffer attached under their doc id
        self.heat = heat
        #: build a structural index for each ingested document
        self.index = index
        #: optional (doc, xpath) response cache (see :class:`QueryCache`)
        self.cache: Optional[QueryCache] = (
            QueryCache(query_cache) if query_cache > 0 else None
        )
        self._lock = threading.Lock()
        self._entries: dict[str, DocumentEntry] = {}  # repro: guarded-by(_lock)
        self._seq = 0  # repro: guarded-by(_lock)
        #: last :meth:`boot_recovery` summary, surfaced by ``/healthz``
        self.recovery: dict[str, Any] = {}

    # -- boot-time recovery ------------------------------------------------

    def boot_recovery(self) -> dict[str, Any]:
        """Sweep the journal directory for crash leftovers at startup.

        A previous process that died mid-flush leaves ``*.wal`` files;
        one that died mid-ingest leaves ``*.journal`` files. The sweep
        trims torn WAL tails (so the next attach starts from a clean
        prefix), tallies what survived, and quarantines unreadable logs
        by renaming them to ``*.wal.corrupt`` — boot must come up even
        when a log is lying. Orphan ingest journals are only counted:
        replaying one needs the original document bytes, which arrive
        with the client's ``?resume=1`` re-POST.
        """
        summary = {
            "wal_logs": 0,
            "wal_committed_transactions": 0,
            "wal_torn_bytes_trimmed": 0,
            "wal_quarantined": 0,
            "orphan_journals": 0,
        }
        try:
            names = sorted(os.listdir(self.journal_dir))
        except OSError:
            names = []
        for name in names:
            path = os.path.join(self.journal_dir, name)
            if name.endswith(".wal"):
                summary["wal_logs"] += 1
                try:
                    summary["wal_torn_bytes_trimmed"] += trim_torn_tail(path)
                    summary["wal_committed_transactions"] += len(
                        read_wal(path).committed
                    )
                except (WalError, OSError):
                    os.replace(path, path + ".corrupt")
                    summary["wal_quarantined"] += 1
                    telemetry.count("service.recovery.wal_quarantined")
            elif name.endswith(".journal"):
                summary["orphan_journals"] += 1
        telemetry.count("service.recovery.boots")
        if summary["orphan_journals"]:
            telemetry.count(
                "service.recovery.orphan_journals", summary["orphan_journals"]
            )
        self.recovery = summary
        return summary

    # -- registry map (lock held for dict ops only) ----------------------

    def _reserve(
        self,
        doc_id: Optional[str],
        algorithm: str,
        limit: int,
        resume: bool,
    ) -> DocumentEntry:
        """Claim a document id; on ``resume`` re-arm an existing failure."""
        with self._lock:
            self._seq += 1
            if doc_id is None:
                doc_id = f"doc-{self._seq}"
            existing = self._entries.get(doc_id)
            if existing is not None:
                if not resume:
                    raise DocumentConflictError(
                        f"document {doc_id!r} already exists "
                        f"(status {existing.status}); DELETE it first or "
                        f"resume a failed ingest with ?resume=1"
                    )
                return existing
            if resume:
                raise DocumentNotFoundError(
                    f"cannot resume unknown document {doc_id!r}"
                )
            entry = DocumentEntry(doc_id, algorithm, limit)
            self._entries[doc_id] = entry
            return entry

    def _get(self, doc_id: str) -> DocumentEntry:
        with self._lock:
            entry = self._entries.get(doc_id)
        if entry is None:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        return entry

    def status_counts(self) -> dict[str, int]:
        """Documents per status (for ``/healthz``); cheap, dict-scan only."""
        counts = {"ready": 0, "loading": 0, "failed": 0}
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    def index_status(self) -> dict[str, Any]:
        """Structural-index health (for ``/healthz``); dict-scan only.

        Reads each ready store's ``structural_index`` without the entry
        lock — ``valid`` is a single attribute read, and a torn snapshot
        here only mis-counts a document mid-ingest for one poll.
        """
        out: dict[str, Any] = {
            "enabled": self.index,
            "indexed": 0,
            "invalid": 0,
            "missing": 0,
        }
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            store = entry.store
            if store is None or entry.status != "ready":
                continue
            idx = getattr(store, "structural_index", None)
            if idx is None:
                out["missing"] += 1
            elif idx.valid:
                out["indexed"] += 1
            else:
                out["invalid"] += 1
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    # -- blocking operations (executor threads only) ---------------------

    def ingest_document(
        self,
        body: bytes,
        doc_id: Optional[str] = None,
        algorithm: Optional[str] = None,
        limit: Optional[int] = None,
        parallel: Optional[int] = None,
        journal: bool = False,
        resume: bool = False,
    ) -> dict[str, Any]:
        """Parse, partition and store one document; returns its info dict.

        ``journal=True`` makes the load crash-resumable; ``resume=True``
        replays the journal a previous failed ingest left behind
        (requires the same document bytes). ``parallel=N`` fans
        top-level subtrees over N worker processes via
        :class:`~repro.fastpath.parallel.ParallelBulkLoader`.
        """
        if resume and parallel:
            raise ValidationError("resume replays sequentially; drop ?parallel")
        entry = self._reserve(
            doc_id,
            algorithm or self.default_algorithm,
            limit or self.default_limit,
            resume,
        )
        with entry.lock.write_locked():
            if resume and entry.status == "ready":
                raise DocumentConflictError(
                    f"document {entry.doc_id!r} is already ready; nothing to resume"
                )
            journal_path = entry.journal_path
            if journal_path is None and (journal or resume):
                journal_path = os.path.join(
                    self.journal_dir, f"{entry.doc_id}.journal"
                )
            try:
                with telemetry.span(
                    "service.ingest", doc=entry.doc_id, resume=resume
                ):
                    result = self._load(entry, body, parallel, journal_path, resume)
                    store = DocumentStore.build(result.tree, result.partitioning)
                    if self.index:
                        store.build_index()
                    store.warm_up()
            except Exception as exc:
                entry.status = "failed"
                entry.error = f"{type(exc).__name__}: {exc}"
                if journal_path is not None and os.path.exists(journal_path):
                    entry.journal_path = journal_path  # resumable
                telemetry.count("service.documents.failed")
                raise
            entry.apply_result(result, store)
            if self.cache is not None:
                # a re-ingest (resume) replaces the store; stale payloads
                # must go before the write lock releases
                self.cache.invalidate_document(entry.doc_id)
            if self.heat is not None:
                self.heat.attach(entry.doc_id, store)
            if journal_path is not None and os.path.exists(journal_path):
                os.remove(journal_path)  # load completed; nothing to resume
            entry.journal_path = None
        telemetry.count("service.documents.ingested")
        if result.resumed:
            telemetry.count("service.documents.resumed")
        return entry.info()

    def _load(
        self,
        entry: DocumentEntry,
        body: bytes,
        parallel: Optional[int],
        journal_path: Optional[str],
        resume: bool,
    ) -> ImportResult:
        if resume:
            if journal_path is None or not os.path.exists(journal_path):
                raise ValidationError(
                    f"document {entry.doc_id!r} has no journal to resume"
                )
            return resume_import(body, journal_path)
        if parallel:
            from repro.fastpath.parallel import ParallelBulkLoader

            loader = ParallelBulkLoader(
                algorithm=entry.algorithm, limit=entry.limit, workers=parallel
            )
            return loader.load(body, journal_path=journal_path)
        sequential = BulkLoader(algorithm=entry.algorithm, limit=entry.limit)
        return sequential.load(body, journal_path=journal_path)

    def query_document(self, doc_id: str, xpath: str, show: int = 0) -> dict[str, Any]:
        """Run one XPath query; returns measured costs (+ values if asked)."""
        entry = self._get(doc_id)
        cache = self.cache
        key = (doc_id, xpath, show)
        with entry.lock.read_locked():
            if entry.status != "ready":
                raise DocumentConflictError(
                    f"document {doc_id!r} is {entry.status}, not ready"
                )
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    with entry._stats_latch:
                        entry.queries += 1
                    telemetry.count("service.queries")
                    return cached
            store = entry.store
            assert store is not None  # implied by status == ready
            with entry._stats_latch:
                with telemetry.span("service.query", doc=doc_id):
                    run = run_query(store, xpath)
                    values: Optional[list[str]] = None
                    if show > 0:
                        nodes = evaluate(store, xpath)
                        values = [string_value(node) for node in nodes[:show]]
                entry.queries += 1
            payload: dict[str, Any] = {
                "document": doc_id,
                "xpath": xpath,
                "results": run.result_count,
                "intra_steps": run.intra_steps,
                "cross_steps": run.cross_steps,
                "cross_ratio": run.cross_ratio,
                "page_faults": run.page_faults,
                "cost": run.cost,
                "window_steps": run.window_steps,
                "partitions_pruned": run.partitions_pruned,
            }
            if values is not None:
                payload["values"] = values
            if cache is not None:
                # still under the read lock: a writer can't start until
                # we release, and it invalidates before any later reader
                # resumes — no stale payload survives
                cache.put(key, payload)
        telemetry.count("service.queries")
        return payload

    def document_info(self, doc_id: str) -> dict[str, Any]:
        return self._get(doc_id).info()

    def list_documents(self) -> list[dict[str, Any]]:
        with self._lock:
            entries = sorted(self._entries.items())
        return [entry.info() for _, entry in entries]

    def delete_document(self, doc_id: str) -> dict[str, Any]:
        """Drop a document (and any leftover journal); returns last info."""
        entry = self._get(doc_id)
        with entry.lock.write_locked():
            with self._lock:
                self._entries.pop(doc_id, None)
            if entry.journal_path is not None and os.path.exists(entry.journal_path):
                os.remove(entry.journal_path)
            if self.cache is not None:
                self.cache.invalidate_document(doc_id)
            if self.heat is not None:
                self.heat.detach(doc_id)
            entry.store = None
            entry.status = "deleted"
        telemetry.count("service.documents.deleted")
        return {"id": doc_id, "status": "deleted"}
