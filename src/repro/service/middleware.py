"""Request/response model, middleware stack and problem-JSON errors.

This module is the service's base layer: :class:`Request` /
:class:`Response` plus the :class:`ServiceError` hierarchy live here so
``state.py``, ``handlers.py`` and ``app.py`` can all import them without
cycles.

The :class:`MiddlewareStack` wraps every routed handler call with

* **request-id propagation** — an inbound ``X-Request-Id`` header is
  honored, otherwise a sequential ``req-NNNNNNNN`` id is minted; the id
  rides every response header and problem document,
* **admission control** — a bounded :class:`asyncio.Semaphore` caps the
  number of in-flight requests; waiting longer than the request timeout
  for a slot is a 503,
* **timeout** — the handler itself is bounded by
  ``ServiceConfig.request_timeout`` (504 on expiry; an ingest that
  times out keeps running on the executor and lands as ``ready`` or
  ``failed`` later — the 504 only abandons the *wait*),
* **error mapping** — every engine exception folds into an RFC-7807
  problem-JSON response via :func:`map_exception`,
* **per-request trace spans** — the telemetry span stack is
  thread-local, which is wrong for asyncio (one loop thread interleaves
  many requests), so the middleware measures with
  :func:`repro.telemetry.clock` and records a synthetic
  :class:`~repro.telemetry.SpanRecord` per request instead of nesting a
  live ``Span`` across awaits,
* **request tracing** — when a :class:`~repro.telemetry.Tracer` is
  attached, each request gets a
  :class:`~repro.telemetry.TraceContext` minted from an inbound W3C
  ``traceparent`` or ``X-Request-Id`` header (or the synthesized
  request id) and installed in a ``contextvars`` variable for the
  handler's duration. ``DocumentService.run_blocking`` copies that
  context onto the executor, so engine spans join the request's span
  tree; the middleware's synthetic root record carries the trace/span
  ids and is handed to ``Tracer.finish`` together with the request's
  query text and document id for the slow-query log.

Middleware counters (``_next_request_id``, ``_inflight``) are plain
ints: they are touched only from the single event-loop thread, never
from the executor workers.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

from repro import telemetry
from repro.errors import (
    ContractViolationError,
    CorruptPageError,
    InfeasiblePartitioningError,
    InjectedFaultError,
    JournalError,
    QueryEvaluationError,
    QuerySyntaxError,
    ReproError,
    XmlFormatError,
)

#: RFC 7807 media type for error bodies
PROBLEM_CONTENT_TYPE = "application/problem+json"

#: ``Retry-After`` value (seconds) stamped on transient 503/504 responses
#: so well-behaved clients (:class:`repro.service.client.RetryPolicy`)
#: know the outage is expected to clear quickly
RETRY_AFTER_SECONDS = 1


# ---------------------------------------------------------------------------
# Service error hierarchy (each class carries its HTTP mapping)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Service-layer failure with a fixed HTTP status and problem title."""

    status = 500
    title = "Internal Server Error"


class ValidationError(ServiceError):
    """The request is syntactically fine but semantically unusable."""

    status = 400
    title = "Bad Request"


class ProtocolError(ServiceError):
    """The byte stream is not a well-formed HTTP/1.x request."""

    status = 400
    title = "Bad Request"


class DocumentNotFoundError(ServiceError):
    status = 404
    title = "Not Found"


class RouteNotFoundError(ServiceError):
    status = 404
    title = "Not Found"


class MethodNotAllowedError(ServiceError):
    status = 405
    title = "Method Not Allowed"


class DocumentConflictError(ServiceError):
    """Document id already taken, or its state forbids the operation."""

    status = 409
    title = "Conflict"


class PayloadTooLargeError(ServiceError):
    status = 413
    title = "Payload Too Large"


class UnsupportedProtocolError(ServiceError):
    """A well-formed request using a feature the server does not speak
    (e.g. chunked transfer encoding)."""

    status = 501
    title = "Not Implemented"


class HeaderTooLargeError(ServiceError):
    status = 431
    title = "Request Header Fields Too Large"


# ---------------------------------------------------------------------------
# Request / Response
# ---------------------------------------------------------------------------


@dataclass
class Request:
    """One parsed HTTP request (header names lower-cased, params last-wins)."""

    method: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    http_version: str = "1.1"
    #: placeholder captures from the matched route (``{doc_id}`` → value)
    path_params: dict[str, str] = field(default_factory=dict)
    route_name: str = "unrouted"
    request_id: str = ""

    def param_int(
        self,
        name: str,
        default: Optional[int] = None,
        minimum: Optional[int] = None,
    ) -> Optional[int]:
        """An integer query parameter, validated into a 400 on garbage."""
        raw = self.params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValidationError(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise ValidationError(
                f"query parameter {name!r} must be >= {minimum}, got {value}"
            )
        return value

    def param_flag(self, name: str) -> bool:
        """A boolean query parameter (``?journal=1``; bare ``?journal`` is true)."""
        raw = self.params.get(name)
        if raw is None:
            return False
        return raw.strip().lower() not in ("0", "false", "no", "off")


@dataclass
class Response:
    """One HTTP response; ``headers`` augment the standard set."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        data = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
        return cls(status=status, body=data)

    @classmethod
    def text(
        cls,
        content: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "Response":
        return cls(status=status, body=content.encode("utf-8"), content_type=content_type)


def problem(
    status: int,
    title: str,
    detail: str,
    request_id: str = "",
    **extra: Any,
) -> Response:
    """An RFC 7807 problem-JSON response."""
    payload: dict[str, Any] = {
        "type": "about:blank",
        "title": title,
        "status": status,
        "detail": detail,
    }
    if request_id:
        payload["request_id"] = request_id
    payload.update(extra)
    response = Response.json(payload, status=status)
    response.content_type = PROBLEM_CONTENT_TYPE
    if status in (503, 504):
        # transient by construction: saturation clears as requests
        # finish, injected faults / I/O hiccups clear on resume
        response.headers["retry-after"] = str(RETRY_AFTER_SECONDS)
    return response


def map_exception(exc: BaseException, request_id: str = "") -> Response:
    """Fold an exception into its problem-JSON response.

    The mapping is ordered most-specific-first because the engine's
    error hierarchy nests (``InjectedFaultError``/``JournalError``/
    ``CorruptPageError`` all derive from ``StorageError``). Faults and
    I/O failures during ingest are *retryable* 503s — the journal
    survives, so the client can re-POST with ``?resume=1``.
    """
    if isinstance(exc, ServiceError):
        return problem(exc.status, exc.title, str(exc), request_id)
    if isinstance(exc, InjectedFaultError):
        telemetry.count("service.errors.fault")
        return problem(
            503, "Service Unavailable", str(exc), request_id, resumable=True
        )
    if isinstance(exc, JournalError):
        return problem(409, "Conflict", str(exc), request_id)
    if isinstance(exc, CorruptPageError):
        telemetry.count("service.errors.corrupt")
        return problem(500, "Internal Server Error", str(exc), request_id)
    if isinstance(exc, (XmlFormatError, QuerySyntaxError, QueryEvaluationError)):
        return problem(400, "Bad Request", str(exc), request_id)
    if isinstance(exc, InfeasiblePartitioningError):
        return problem(422, "Unprocessable Entity", str(exc), request_id)
    if isinstance(exc, ContractViolationError):
        telemetry.count("service.errors.internal")
        return problem(500, "Internal Server Error", str(exc), request_id)
    if isinstance(exc, ReproError):
        # remaining engine errors reject the *input* (unknown algorithm,
        # malformed weights, ...), not the server
        return problem(400, "Bad Request", str(exc), request_id)
    if isinstance(exc, OSError):
        telemetry.count("service.errors.io")
        return problem(
            503,
            "Service Unavailable",
            f"backend I/O failure: {exc}",
            request_id,
            resumable=True,
        )
    telemetry.count("service.errors.internal")
    return problem(
        500,
        "Internal Server Error",
        f"unexpected {type(exc).__name__}: {exc}",
        request_id,
    )


# ---------------------------------------------------------------------------
# Middleware stack
# ---------------------------------------------------------------------------


Handler = Callable[[Request], Awaitable[Response]]


class _Saturated(Exception):
    """Internal: no admission slot freed up within the request timeout."""


class MiddlewareStack:
    """Per-request pipeline: id, admission, timeout, timing, tracing,
    error mapping."""

    def __init__(
        self,
        max_concurrency: int = 64,
        request_timeout: float = 30.0,
        tracer: Optional[telemetry.Tracer] = None,
    ):
        self.max_concurrency = max_concurrency
        self.request_timeout = request_timeout
        self.tracer = tracer
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._next_request_id = 0
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Requests currently admitted (loop-thread read)."""
        return self._inflight

    def _begin_trace(self, request: Request) -> Optional[telemetry.TraceContext]:
        """Mint the request's :class:`TraceContext` from inbound headers."""
        trace_id = request.request_id
        remote_parent: Optional[str] = None
        parsed = telemetry.parse_traceparent(
            request.headers.get("traceparent", "")
        )
        if parsed is not None:
            trace_id, remote_parent, _sampled = parsed
        return self.tracer.begin(
            trace_id,
            path=f"service.request/{request.route_name}",
            remote_parent=remote_parent,
        )

    async def run(self, request: Request, handler: Handler) -> Response:
        self._next_request_id += 1
        request.request_id = (
            request.headers.get("x-request-id", "").strip()
            or f"req-{self._next_request_id:08d}"
        )
        telemetry.count("service.requests")
        telemetry.count(f"service.requests.{request.route_name}")
        ctx: Optional[telemetry.TraceContext] = None
        token = None
        if self.tracer is not None and telemetry.enabled():
            ctx = self._begin_trace(request)
            token = telemetry.set_trace(ctx)
        start = telemetry.clock()
        error: Optional[str] = None
        try:
            response = await self._admit_and_call(request, handler)
        except _Saturated:
            telemetry.count("service.rejected.saturated")
            error = "Saturated"
            response = problem(
                503,
                "Service Unavailable",
                f"admission queue saturated "
                f"({self.max_concurrency} requests in flight)",
                request.request_id,
                retryable=True,
            )
        except (TimeoutError, asyncio.TimeoutError):
            telemetry.count("service.timeouts")
            error = "TimeoutError"
            response = problem(
                504,
                "Gateway Timeout",
                f"request exceeded {self.request_timeout:g}s",
                request.request_id,
            )
        except Exception as exc:
            error = type(exc).__name__
            response = map_exception(exc, request.request_id)
        finally:
            if token is not None:
                telemetry.reset_trace(token)
        elapsed = telemetry.clock() - start
        self._finish(request, response, start, elapsed, error, ctx)
        return response

    async def _admit_and_call(self, request: Request, handler: Handler) -> Response:
        try:
            await asyncio.wait_for(
                self._semaphore.acquire(), timeout=self.request_timeout
            )
        except (TimeoutError, asyncio.TimeoutError):
            raise _Saturated() from None
        self._inflight += 1
        telemetry.gauge_set("service.inflight", self._inflight)
        try:
            return await asyncio.wait_for(
                handler(request), timeout=self.request_timeout
            )
        finally:
            self._inflight -= 1
            self._semaphore.release()

    def _finish(
        self,
        request: Request,
        response: Response,
        start: float,
        elapsed: float,
        error: Optional[str],
        ctx: Optional[telemetry.TraceContext] = None,
    ) -> None:
        response.headers.setdefault("x-request-id", request.request_id)
        telemetry.count(f"service.responses.{response.status // 100}xx")
        exemplar = ctx.trace_id if ctx is not None and ctx.sampled else None
        telemetry.observe("service.request.seconds", elapsed, exemplar=exemplar)
        telemetry.observe(f"service.route.{request.route_name}.seconds", elapsed)
        if telemetry.enabled():
            attrs = {
                "route": request.route_name,
                "method": request.method,
                "status": response.status,
                "request_id": request.request_id,
            }
            doc = request.path_params.get("doc_id") or request.params.get("id")
            xpath = request.params.get("xpath")
            if doc:
                attrs["doc"] = doc
            if xpath:
                attrs["xpath"] = xpath
            root = telemetry.SpanRecord(
                name="service.request",
                path=f"service.request/{request.route_name}",
                seconds=elapsed,
                depth=0,
                start=start,
                error=error,
                attrs=attrs,
                trace_id=ctx.trace_id if ctx is not None else None,
                span_id=ctx.span_id if ctx is not None else None,
            )
            telemetry.registry().record_span(root)
            if ctx is not None and self.tracer is not None:
                self.tracer.finish(ctx, root, query=xpath, doc=doc)
