"""Benchmark harness: regenerates every table of the paper's Sec. 6.

* :mod:`repro.bench.experiments` — Tables 1 (partition counts) and 2
  (partitioning CPU time) over the synthetic corpus.
* :mod:`repro.bench.table3` — Table 3 (XPathMark query cost + disk space,
  KM vs EKM layouts).
* :mod:`repro.bench.ablations` — the A1–A4 ablations from DESIGN.md
  (K sweep, DP memoization, optimality gap, spill threshold).
* :mod:`repro.bench.cli` — ``python -m repro.bench <experiment>``.

Every experiment prints measured values next to the paper's reported
numbers; EXPERIMENTS.md archives one full run.
"""

from repro.bench.experiments import (
    PartitioningCell,
    PartitioningRow,
    run_partitioning_experiment,
    format_table1,
    format_table2,
)
from repro.bench.table3 import QueryExperimentResult, run_query_experiment, format_table3
from repro.bench.ablations import (
    run_k_sweep,
    run_memoization_ablation,
    run_gap_ablation,
    run_spill_ablation,
)

__all__ = [
    "PartitioningCell",
    "PartitioningRow",
    "run_partitioning_experiment",
    "format_table1",
    "format_table2",
    "QueryExperimentResult",
    "run_query_experiment",
    "format_table3",
    "run_k_sweep",
    "run_memoization_ablation",
    "run_gap_ablation",
    "run_spill_ablation",
]
