"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Subcommands regenerate the paper's tables and the ablations::

    repro-bench table1 [--scale 1.0] [--limit 256] [--skip-dhw]
    repro-bench table2 [--scale 1.0] [--limit 256] [--skip-dhw]
    repro-bench table3 [--xmark-scale 0.02] [--limit 256]
    repro-bench figures
    repro-bench ablations [--scale 0.5]
    repro-bench all

DHW is the optimal but slowest algorithm (the whole point of Table 2);
``--skip-dhw`` keeps quick runs quick.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.ablations import (
    format_gap,
    format_k_sweep,
    format_memoization,
    format_spill,
    run_gap_ablation,
    run_k_sweep,
    run_memoization_ablation,
    run_spill_ablation,
)
from repro.bench.experiments import (
    TABLE_ALGORITHMS,
    format_table1,
    format_table2,
    run_partitioning_experiment,
)
from repro.bench.figures import format_figures
from repro.bench.table3 import format_table3, run_extended_queries, run_query_experiment


def _algorithms(skip_dhw: bool) -> tuple[str, ...]:
    if skip_dhw:
        return tuple(a for a in TABLE_ALGORITHMS if a != "dhw")
    return TABLE_ALGORITHMS


def _run_tables(args: argparse.Namespace, which: str) -> str:
    rows = run_partitioning_experiment(
        algorithms=_algorithms(args.skip_dhw),
        limit=args.limit,
        scale=args.scale,
    )
    if which == "table1":
        return format_table1(rows)
    if which == "table2":
        return format_table2(rows)
    return format_table1(rows) + "\n\n" + format_table2(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the evaluation tables of Kanne & Moerkotte (VLDB 2006).",
    )
    parser.add_argument("experiment", choices=["table1", "table2", "table3", "figures", "ablations", "all"])
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor (1.0 = defaults, ~1/10 of the paper's documents)")
    parser.add_argument("--limit", type=int, default=256, help="weight limit K in slots (paper: 256)")
    parser.add_argument("--xmark-scale", type=float, default=0.02, help="XMark scale for table3 (paper: 0.1)")
    parser.add_argument("--skip-dhw", action="store_true", help="skip the slow optimal algorithm")
    parser.add_argument("--extended", action="store_true", help="also run the extended (post-Table-3) query set")
    args = parser.parse_args(argv)

    out: list[str] = []
    if args.experiment in ("table1", "table2"):
        out.append(_run_tables(args, args.experiment))
    if args.experiment in ("table3", "all"):
        result = run_query_experiment(scale=args.xmark_scale, limit=args.limit)
        out.append(format_table3(result))
        if args.extended:
            out.append(run_extended_queries(scale=args.xmark_scale, limit=args.limit))
    if args.experiment in ("figures", "all"):
        out.append(format_figures())
    if args.experiment in ("ablations", "all"):
        sweep_doc = "mondial"
        out.append(format_k_sweep(run_k_sweep(document=sweep_doc, scale=args.scale), sweep_doc))
        out.append(
            format_memoization(
                run_memoization_ablation(scale=min(args.scale, 0.5), include_dhw=not args.skip_dhw),
                limit=args.limit,
            )
        )
        if not args.skip_dhw:
            out.append(format_gap(run_gap_ablation(scale=min(args.scale, 0.5), limit=args.limit)))
        out.append(format_spill(run_spill_ablation(scale=args.scale, limit=args.limit), "xmark", "ekm"))
    if args.experiment == "all":
        out.insert(0, _run_tables(args, "both"))
    print("\n\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
