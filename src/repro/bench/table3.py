"""Table 3: query performance on KM vs EKM layouts.

Protocol mirrors the paper: load an XMark document under both layouts
(same limit ``K``), warm the buffer pool, then run XPathMark Q1–Q7 and
report the simulated navigation cost per layout plus total occupied disk
space. Absolute numbers are cost units (our substrate is a simulator, not
the authors' Natix/C++ testbed); the shape to verify is *EKM wins every
query* and *KM occupies slightly less disk space*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.report import render_table
from repro.datasets.xmark import xmark_document
from repro.partition import get_algorithm
from repro.query import XPATHMARK_QUERIES, XPathMarkQuery, run_query
from repro.query.engine import QueryRun
from repro.storage import DocumentStore, StorageConfig
from repro.storage.constants import DEFAULT_CONFIG
from repro.xmlio.weights import PAPER_LIMIT


@dataclass
class QueryExperimentResult:
    """All measurements of one Table 3 run."""

    nodes: int
    limit: int
    algorithms: tuple[str, ...]
    partitions: dict[str, int] = field(default_factory=dict)
    space_kib: dict[str, float] = field(default_factory=dict)
    runs: dict[str, dict[str, QueryRun]] = field(default_factory=dict)  # qid -> algo -> run
    #: per-algorithm buffer-pool counters over the whole query workload
    #: (see BufferStats.as_dict); zeroed by warm_up, so purely workload
    buffer_stats: dict[str, dict[str, float]] = field(default_factory=dict)

    def speedup(self, qid: str, baseline: str = "km", contender: str = "ekm") -> float:
        base = self.runs[qid][baseline].cost
        cont = self.runs[qid][contender].cost
        return base / cont if cont else float("inf")


def run_query_experiment(
    scale: float = 0.02,
    limit: int = PAPER_LIMIT,
    algorithms: Sequence[str] = ("km", "ekm"),
    queries: Sequence[XPathMarkQuery] = XPATHMARK_QUERIES,
    config: StorageConfig = DEFAULT_CONFIG,
    seed: int = 2006,
) -> QueryExperimentResult:
    """Build both layouts and measure all queries."""
    tree = xmark_document(scale=scale, seed=seed)
    result = QueryExperimentResult(
        nodes=len(tree), limit=limit, algorithms=tuple(algorithms)
    )
    stores: dict[str, DocumentStore] = {}
    for name in algorithms:
        partitioning = get_algorithm(name).partition(tree, limit)
        store = DocumentStore.build(tree, partitioning, config)
        store.warm_up()
        stores[name] = store
        result.partitions[name] = partitioning.cardinality
        result.space_kib[name] = store.space_report().kib
    for query in queries:
        result.runs[query.qid] = {}
        counts = set()
        for name in algorithms:
            run = run_query(stores[name], query.xpath)
            result.runs[query.qid][name] = run
            counts.add(run.result_count)
        if len(counts) != 1:
            raise AssertionError(
                f"layouts disagree on {query.qid} result count: {counts}"
            )
    for name in algorithms:
        result.buffer_stats[name] = stores[name].buffer.stats.as_dict()
    return result


def run_extended_queries(
    scale: float = 0.02,
    limit: int = PAPER_LIMIT,
    config: StorageConfig = DEFAULT_CONFIG,
    seed: int = 2006,
) -> str:
    """Run the extended (post-Table-3) query set on KM vs EKM layouts and
    render the comparison — attributes, positions and comparisons that
    the paper's Natix evaluator also supported but did not measure."""
    from repro.query.xpathmark import EXTENDED_QUERIES

    tree = xmark_document(scale=scale, seed=seed)
    stores: dict[str, DocumentStore] = {}
    for name in ("km", "ekm"):
        partitioning = get_algorithm(name).partition(tree, limit)
        store = DocumentStore.build(tree, partitioning, config)
        store.warm_up()
        stores[name] = store
    rows: list[list[object]] = []
    for qid, xpath in EXTENDED_QUERIES:
        km = run_query(stores["km"], xpath)
        ekm = run_query(stores["ekm"], xpath)
        rows.append(
            [
                f"{qid} {xpath[:50]}",
                km.result_count,
                f"{km.cost:.0f}",
                f"{ekm.cost:.0f}",
                f"{km.cost / ekm.cost:.2f}x" if ekm.cost else "-",
            ]
        )
    return render_table(
        ["Query", "Results", "KM cost", "EKM cost", "Speedup"],
        rows,
        title=f"Extended queries ({len(tree)} nodes, K={limit})",
    )


def format_table3(
    result: QueryExperimentResult,
    queries: Sequence[XPathMarkQuery] = XPATHMARK_QUERIES,
) -> str:
    headers = [
        "Query",
        "Results",
        "KM cost",
        "EKM cost",
        "Speedup",
        "Paper KM s",
        "Paper EKM s",
        "Paper speedup",
    ]
    rows: list[list[object]] = [
        [
            "Occupied disk space (KiB)",
            "",
            f"{result.space_kib['km']:.0f}",
            f"{result.space_kib['ekm']:.0f}",
            "",
            "8192",
            "8232",
            "",
        ]
    ]
    for query in queries:
        km = result.runs[query.qid]["km"]
        ekm = result.runs[query.qid]["ekm"]
        rows.append(
            [
                f"{query.qid} {query.xpath[:46]}",
                km.result_count,
                f"{km.cost:.0f}",
                f"{ekm.cost:.0f}",
                f"{result.speedup(query.qid):.2f}x",
                query.paper_km_seconds,
                query.paper_ekm_seconds,
                f"{query.paper_speedup:.2f}x",
            ]
        )
    return render_table(
        headers,
        rows,
        title=(
            f"Table 3: query cost on KM vs EKM layouts "
            f"({result.nodes} nodes, K={result.limit}; "
            f"KM={result.partitions['km']} / EKM={result.partitions['ekm']} partitions)"
        ),
    )
