"""Ablation experiments A1–A4 (see DESIGN.md experiment index).

* **A1 — K sweep**: partition counts as the storage-unit capacity grows.
  Sibling algorithms track the ``Weight/K`` lower bound closely at every
  ``K``; KM's parent-child-only model falls further behind as ``K``
  grows (more room for sibling packing it cannot use).
* **A2 — memoization**: the paper reports (Sec. 3.3.6) that fewer than 4
  of the 256 possible root-weight values occur per inner node of a 20 MB
  document; this measures the realized table occupancy of our memoized
  DP for GHDW and DHW.
* **A3 — optimality gap**: how far GHDW/EKM/RS are from DHW's optimum,
  and how often DHW's nearly-optimal machinery exists / fires.
* **A4 — spill threshold**: bulkload memory bound vs. partitioning
  quality (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import telemetry
from repro.bench.report import render_table
from repro.bulkload import BulkLoader
from repro.datasets.registry import generate_document
from repro.partition import evaluate_partitioning, get_algorithm
from repro.partition.binpack import capacity_lower_bound
from repro.partition.dhw import DHWPartitioner
from repro.partition.ghdw import GHDWPartitioner
from repro.xmlio.serialize import tree_to_xml


@dataclass
class KSweepRow:
    limit: int
    lower_bound: int
    partitions: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)


def run_k_sweep(
    document: str = "mondial",
    limits: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    algorithms: Sequence[str] = ("ghdw", "ekm", "rs", "km"),
    scale: float = 1.0,
) -> list[KSweepRow]:
    tree = generate_document(document, scale=scale)
    rows = []
    for limit in limits:
        row = KSweepRow(limit=limit, lower_bound=capacity_lower_bound(tree, limit))
        for name in algorithms:
            with telemetry.span("bench.partition", algorithm=name) as sp:
                partitioning = get_algorithm(name).partition(tree, limit)
            row.seconds[name] = sp.elapsed
            report = evaluate_partitioning(tree, partitioning, limit)
            assert report.feasible
            row.partitions[name] = report.cardinality
        rows.append(row)
    return rows


def format_k_sweep(rows: list[KSweepRow], document: str) -> str:
    algorithms = list(rows[0].partitions) if rows else []
    headers = ["K", "Weight/K"] + [a.upper() for a in algorithms]
    body = [
        [row.limit, row.lower_bound] + [row.partitions[a] for a in algorithms]
        for row in rows
    ]
    return render_table(headers, body, title=f"A1: partitions vs K ({document})")


@dataclass
class MemoizationRow:
    document: str
    algorithm: str
    inner_nodes: int
    avg_s_values: float
    max_s_values: int
    dp_cells: int
    full_table_cells: int

    @property
    def occupancy(self) -> float:
        return self.dp_cells / self.full_table_cells if self.full_table_cells else 0.0


def run_memoization_ablation(
    documents: Sequence[str] = ("sigmod", "mondial", "xmark"),
    limit: int = 256,
    scale: float = 1.0,
    include_dhw: bool = True,
) -> list[MemoizationRow]:
    rows = []
    for doc in documents:
        tree = generate_document(doc, scale=scale)
        algos = [GHDWPartitioner(collect_stats=True)]
        if include_dhw:
            algos.append(DHWPartitioner(collect_stats=True))
        for algo in algos:
            algo.partition(tree, limit)
            stats = algo.stats
            # A full (non-memoized) table has one cell per (node, s, j):
            # sum over inner nodes of K * (childcount + 1) ~= K * n.
            full = limit * (len(tree) + stats.inner_nodes)
            svals = stats.s_values_per_node
            rows.append(
                MemoizationRow(
                    document=doc,
                    algorithm=algo.name,
                    inner_nodes=stats.inner_nodes,
                    avg_s_values=sum(svals) / len(svals) if svals else 0.0,
                    max_s_values=max(svals) if svals else 0,
                    dp_cells=stats.dp_cells,
                    full_table_cells=full,
                )
            )
    return rows


def format_memoization(rows: list[MemoizationRow], limit: int = 256) -> str:
    headers = [
        "Document",
        "Algo",
        "Inner nodes",
        f"Avg s-values (of {limit})",
        "Max",
        "DP cells",
        "Occupancy",
    ]
    body = [
        [
            r.document,
            r.algorithm,
            r.inner_nodes,
            f"{r.avg_s_values:.2f}",
            r.max_s_values,
            r.dp_cells,
            f"{r.occupancy:.4f}",
        ]
        for r in rows
    ]
    return render_table(headers, body, title="A2: DP table memoization occupancy")


@dataclass
class GapRow:
    document: str
    optimal: int
    partitions: dict[str, int] = field(default_factory=dict)
    nearly_optimal_exists: int = 0
    nearly_optimal_used: int = 0

    def gap(self, algorithm: str) -> float:
        return (self.partitions[algorithm] - self.optimal) / self.optimal


def run_gap_ablation(
    documents: Sequence[str] = ("sigmod", "mondial", "partsupp"),
    limit: int = 256,
    scale: float = 0.5,
    algorithms: Sequence[str] = ("ghdw", "ekm", "rs", "km"),
) -> list[GapRow]:
    rows = []
    for doc in documents:
        tree = generate_document(doc, scale=scale)
        dhw = DHWPartitioner(collect_stats=True)
        optimal = dhw.partition(tree, limit).cardinality
        row = GapRow(
            document=doc,
            optimal=optimal,
            nearly_optimal_exists=dhw.stats.nearly_optimal_exists,
            nearly_optimal_used=dhw.stats.nearly_optimal_used,
        )
        for name in algorithms:
            row.partitions[name] = get_algorithm(name).partition(tree, limit).cardinality
        rows.append(row)
    return rows


def format_gap(rows: list[GapRow]) -> str:
    algorithms = list(rows[0].partitions) if rows else []
    headers = (
        ["Document", "DHW (opt)"]
        + [f"{a.upper()} (gap)" for a in algorithms]
        + ["Q exists", "Q used"]
    )
    body = []
    for r in rows:
        body.append(
            [r.document, r.optimal]
            + [f"{r.partitions[a]} (+{r.gap(a) * 100:.1f}%)" for a in algorithms]
            + [r.nearly_optimal_exists, r.nearly_optimal_used]
        )
    return render_table(headers, body, title="A3: optimality gap vs DHW")


@dataclass
class SpillRow:
    threshold: Optional[int]
    partitions: int
    peak_fraction: float
    spills: int


def run_spill_ablation(
    document: str = "xmark",
    algorithm: str = "ekm",
    limit: int = 256,
    thresholds: Sequence[Optional[int]] = (None, 16384, 4096, 1024, 512),
    scale: float = 1.0,
) -> list[SpillRow]:
    tree = generate_document(document, scale=scale)
    xml = tree_to_xml(tree)
    rows = []
    for threshold in thresholds:
        loader = BulkLoader(algorithm=algorithm, limit=limit, spill_threshold=threshold)
        result = loader.load(xml)
        report = evaluate_partitioning(result.tree, result.partitioning, limit)
        assert report.feasible
        rows.append(
            SpillRow(
                threshold=threshold,
                partitions=report.cardinality,
                peak_fraction=result.peak_resident_fraction,
                spills=result.spills,
            )
        )
    return rows


def format_spill(rows: list[SpillRow], document: str, algorithm: str) -> str:
    headers = ["Spill threshold", "Partitions", "Peak resident", "Spills"]
    body = [
        [
            "unbounded" if r.threshold is None else r.threshold,
            r.partitions,
            f"{r.peak_fraction * 100:.1f}%",
            r.spills,
        ]
        for r in rows
    ]
    return render_table(
        headers, body, title=f"A4: bulkload spill threshold ({document}, {algorithm})"
    )
