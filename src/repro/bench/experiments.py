"""Tables 1 and 2: partition counts and partitioning CPU time.

One pass over the corpus runs every requested algorithm on every
document, validating feasibility through the shared evaluator and timing
the pure partitioning call (document generation and validation excluded,
matching the paper's "pure main-memory implementation" protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import telemetry
from repro.bench.report import render_table
from repro.datasets.registry import PAPER_DOCUMENTS, DocumentSpec
from repro.partition import evaluate_partitioning, get_algorithm
from repro.partition.binpack import capacity_lower_bound
from repro.xmlio.weights import PAPER_LIMIT

#: Table 1/2 column order in the paper.
TABLE_ALGORITHMS = ("dhw", "ghdw", "ekm", "rs", "dfs", "km", "bfs")


@dataclass
class PartitioningCell:
    algorithm: str
    partitions: int
    seconds: float
    root_weight: int
    paper_partitions: Optional[int] = None
    paper_seconds: Optional[float] = None


@dataclass
class PartitioningRow:
    document: str
    nodes: int
    total_weight: int
    weight_over_k: int
    cells: dict[str, PartitioningCell] = field(default_factory=dict)


def run_partitioning_experiment(
    algorithms: Sequence[str] = TABLE_ALGORITHMS,
    limit: int = PAPER_LIMIT,
    scale: float = 1.0,
    documents: Sequence[DocumentSpec] = PAPER_DOCUMENTS,
    seed: int = 2006,
) -> list[PartitioningRow]:
    """Run the Table 1/2 experiment; returns one row per document."""
    rows: list[PartitioningRow] = []
    for spec in documents:
        tree = spec.generate(scale=scale, seed=seed)
        row = PartitioningRow(
            document=spec.name,
            nodes=len(tree),
            total_weight=tree.total_weight(),
            weight_over_k=capacity_lower_bound(tree, limit),
        )
        for name in algorithms:
            partitioner = get_algorithm(name)
            with telemetry.span("bench.partition", algorithm=name) as sp:
                partitioning = partitioner.partition(tree, limit)
            seconds = sp.elapsed
            report = evaluate_partitioning(tree, partitioning, limit)
            if not report.feasible:
                raise AssertionError(f"{name} produced infeasible result on {spec.name}")
            row.cells[name] = PartitioningCell(
                algorithm=name,
                partitions=report.cardinality,
                seconds=seconds,
                root_weight=report.root_weight,
                paper_partitions=spec.paper_partitions.get(name),
                paper_seconds=spec.paper_runtime.get(name),
            )
        rows.append(row)
    return rows


def format_table1(rows: list[PartitioningRow], show_paper: bool = True) -> str:
    """Render the partition-count table (paper Table 1)."""
    algorithms = list(rows[0].cells) if rows else []
    headers = ["Document", "Nodes", "Weight/K"] + [a.upper() for a in algorithms]
    body = []
    for row in rows:
        body.append(
            [row.document, row.nodes, row.weight_over_k]
            + [row.cells[a].partitions for a in algorithms]
        )
    out = render_table(headers, body, title="Table 1: number of generated partitions")
    if show_paper:
        paper_rows = []
        for row in rows:
            paper_rows.append(
                [row.document, "", ""]
                + [row.cells[a].paper_partitions or "-" for a in algorithms]
            )
        out += "\n\n" + render_table(
            headers, paper_rows, title="Paper reference (full-size documents)"
        )
    return out


def format_table2(rows: list[PartitioningRow], show_paper: bool = True) -> str:
    """Render the CPU-time table (paper Table 2)."""
    algorithms = list(rows[0].cells) if rows else []
    headers = ["Document"] + [a.upper() for a in algorithms]
    body = [
        [row.document] + [row.cells[a].seconds for a in algorithms] for row in rows
    ]
    out = render_table(headers, body, title="Table 2: CPU time (seconds)")
    if show_paper:
        paper_rows = [
            [row.document] + [row.cells[a].paper_seconds or "-" for a in algorithms]
            for row in rows
        ]
        out += "\n\n" + render_table(
            headers, paper_rows, title="Paper reference (C++, full-size documents)"
        )
    return out
