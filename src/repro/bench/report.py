"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Align columns; right-align everything but the first column."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(cells):
        padded = [
            row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i])
            for i in range(len(row))
        ]
        lines.append("  ".join(padded).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return "<0.01"
        return f"{value:.2f}"
    return str(value)
