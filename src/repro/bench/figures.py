"""Worked-example reproductions of the paper's illustrative figures.

Figures 6 and 9 are the paper's two counterexamples — GHDW's greedy
failure and EKM's heuristic failure. This module re-runs them (and the
Fig. 3 running example) and renders the outcomes, so a reader can see the
documented behaviours on the exact trees from the paper.
"""

from __future__ import annotations

from repro.bench.report import render_table
from repro.partition import evaluate_partitioning, get_algorithm
from repro.tree.builders import tree_from_spec

#: Fig. 3 running example (weights in the ovals); K = 5.
FIG3_SPEC = (
    "a",
    3,
    [("b", 2), ("c", 1, [("d", 2), ("e", 2)]), ("f", 1), ("g", 1), ("h", 2)],
)

#: Fig. 6: the greedy (GHDW) strategy needs 4 partitions, optimum is 3; K = 5.
FIG6_SPEC = ("a", 5, [("b", 1), ("c", 1, [("d", 2), ("e", 2)]), ("f", 1)])

#: Fig. 9: EKM produces 3 clusters, optimum is 2; K = 5.
FIG9_SPEC = ("a", 2, [("b", 4), ("c", 1, [("d", 1), ("e", 1)])])


def run_figure(spec, limit: int, algorithms=("dhw", "ghdw", "ekm", "km", "rs")) -> list:
    tree = tree_from_spec(spec)
    rows = []
    for name in algorithms:
        partitioning = get_algorithm(name).partition(tree, limit)
        report = evaluate_partitioning(tree, partitioning, limit)
        labels = []
        for iv in partitioning.sorted_intervals():
            left, right = tree.node(iv.left).label, tree.node(iv.right).label
            labels.append(f"({left},{right})" if iv.left != iv.right else f"({left})")
        rows.append([name.upper(), report.cardinality, report.root_weight, " ".join(labels)])
    return rows


def format_figures() -> str:
    headers = ["Algorithm", "Partitions", "Root weight", "Intervals"]
    sections = []
    for title, spec, expect in (
        ("Fig. 3 running example (K=5): optimum is 3 partitions", FIG3_SPEC, 3),
        ("Fig. 6 greedy failure (K=5): GHDW=4, optimum=3", FIG6_SPEC, 3),
        ("Fig. 9 EKM failure (K=5): EKM=3, optimum=2", FIG9_SPEC, 2),
    ):
        rows = run_figure(spec, 5)
        sections.append(render_table(headers, rows, title=title))
    return "\n\n".join(sections)
