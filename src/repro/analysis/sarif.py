"""SARIF 2.1.0 export for ``repro-lint`` findings.

SARIF (Static Analysis Results Interchange Format) is the schema CI
platforms ingest for code-scanning annotations. The export is minimal
but valid: one run, the registered passes as ``rules``, one ``result``
per finding with a physical location. Produced by
``repro-lint --format sarif`` (optionally ``--output report.sarif``).
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Sequence

from repro.analysis.passes import LintPass, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _uri(path: str) -> str:
    return str(PurePosixPath(path.replace("\\", "/")))


def to_sarif(
    violations: Sequence[Violation], passes: Sequence[type[LintPass]]
) -> dict:
    """A SARIF ``log`` dict for the given findings and rule set."""
    rules = [
        {
            "id": cls.code,
            "name": cls.name,
            "shortDescription": {"text": cls.description},
        }
        for cls in passes
    ]
    rule_index = {cls.code: idx for idx, cls in enumerate(passes)}
    results = []
    for violation in violations:
        result = {
            "ruleId": violation.code,
            "level": "warning",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(violation.path)},
                        "region": {"startLine": violation.lineno},
                    }
                }
            ],
        }
        if violation.code in rule_index:
            result["ruleIndex"] = rule_index[violation.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
