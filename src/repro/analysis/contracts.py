"""Runtime contract checking for partitioning algorithms.

The static passes catch whole classes of bugs, but the paper's central
guarantees are *semantic*: every registered algorithm must emit a
partitioning that (1) is structurally valid — disjoint sibling intervals
including the root interval ``(t,t)``, (2) covers every node of the tree
exactly once through the partition forest, (3) respects the capacity
``K`` on every partition, and (4) leaves the input tree untouched.

:func:`verify_partition_contract` asserts all four through the *existing*
evaluator (:mod:`repro.partition.evaluate` stays the single source of
truth for partition-forest semantics — the contract layer adds no second
interpretation that could drift). It is wired into
``Partitioner.partition(..., check=True)`` and enabled globally with
``REPRO_CHECK_INVARIANTS=1`` so whole benchmark and test runs execute in
checked mode.

Mutation detection works by structural fingerprint: a hash of every
node's identity, payload and links taken before the algorithm runs and
compared after. O(n) per check, no copy of the tree.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.errors import ContractViolationError
from repro.partition.evaluate import (
    assignment_from_partitioning,
    partition_weights,
    validate_partitioning,
)
from repro.partition.interval import Partitioning, SiblingInterval
from repro.tree.node import Tree

ENV_FLAG = "REPRO_CHECK_INVARIANTS"

_FALSY = frozenset({"", "0", "false", "no", "off"})


def contracts_enabled() -> bool:
    """Is checked mode requested via ``REPRO_CHECK_INVARIANTS``?"""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in _FALSY


def tree_fingerprint(tree: Tree) -> int:
    """Order-sensitive structural hash of the whole tree.

    Covers node identity, payload and all links (parent, child order,
    weights), so any mutation an algorithm could slip in — reweighting,
    reparenting, reordering siblings, appending nodes — changes the
    value. Accumulated with CRC32 rather than ``hash()`` so fingerprints
    are stable across processes (``hash()`` is salted per interpreter),
    which lets tests and debugging sessions compare them.
    """
    acc = zlib.crc32(str(len(tree.nodes)).encode("ascii"))
    for node in tree.nodes:
        parent_id = -1 if node.parent is None else node.parent.node_id
        record = (
            f"{node.node_id}|{node.label}|{node.weight}|{int(node.kind)}|"
            f"{node.content or ''}|{parent_id}|{node.index}|{len(node.children)}\n"
        )
        acc = zlib.crc32(record.encode("utf-8"), acc)
    return acc


@dataclass(frozen=True)
class ContractReport:
    """What the contract checker established about one result."""

    algorithm: str
    cardinality: int
    max_partition_weight: int
    limit: int
    nodes_covered: int


def verify_partition_contract(
    tree: Tree,
    partitioning: Partitioning,
    limit: int,
    algorithm: str = "<unknown>",
    fingerprint_before: int | None = None,
) -> ContractReport:
    """Assert the full partitioning contract; raise on any breach.

    Raises :class:`~repro.errors.ContractViolationError` with the
    offending algorithm and detail. Returns a :class:`ContractReport`
    when everything holds, so callers can log checked-mode evidence.
    """

    def breach(detail: str) -> ContractViolationError:
        return ContractViolationError(
            f"algorithm {algorithm!r} violated the partitioning contract: {detail}",
            algorithm=algorithm,
        )

    # (4) input immutability
    if fingerprint_before is not None and tree_fingerprint(tree) != fingerprint_before:
        raise breach("input tree was mutated during partitioning")

    # (1) structural validity (root interval, sibling order, disjointness)
    try:
        validate_partitioning(tree, partitioning)
    except Exception as exc:
        raise breach(f"invalid structure: {exc}") from exc

    # (2) coverage: every node lands in exactly one partition
    try:
        assignment = assignment_from_partitioning(tree, partitioning)
    except Exception as exc:
        raise breach(f"node coverage failed: {exc}") from exc
    uncovered = [nid for nid, rid in enumerate(assignment) if rid < 0]
    if uncovered:
        raise breach(f"{len(uncovered)} nodes not covered (first: {uncovered[:5]})")

    # (3) capacity and mass conservation through the shared evaluator
    weights = partition_weights(tree, partitioning)
    overweight = {iv: w for iv, w in weights.items() if w > limit}
    if overweight:
        worst_iv, worst = max(overweight.items(), key=lambda kv: kv[1])
        raise breach(
            f"{len(overweight)} partitions exceed K={limit} "
            f"(worst: interval {worst_iv} at weight {worst})"
        )
    root_iv = SiblingInterval(tree.root.node_id, tree.root.node_id)
    if root_iv not in weights:
        raise breach("result lacks the root interval (t,t)")
    total = sum(weights.values())
    if total != tree.total_weight():
        raise breach(
            f"partition weights sum to {total}, tree weighs {tree.total_weight()} "
            "(double-counted or dropped subtrees)"
        )

    return ContractReport(
        algorithm=algorithm,
        cardinality=partitioning.cardinality,
        max_partition_weight=max(weights.values()) if weights else 0,
        limit=limit,
        nodes_covered=len(assignment),
    )
