"""The repo-specific lint passes shipped with ``repro-lint``.

Codes are stable (used in ``# repro-lint: skip=CODE`` pragmas and
``--select``/``--ignore``):

======  ================================================================
REC001  unbounded recursion cycle reachable on document-driven paths
BAN001  bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``
BAN002  ``sys.setrecursionlimit`` outside ``repro.analysis``
BAN003  float arithmetic on slot weights/limits in partitioner modules
PRT001  partitioner mutates the input tree
PRT002  partitioner overrides ``partition`` instead of ``_partition``
OBS001  manual wall-clock timing outside ``repro.telemetry``
OBS002  span opened with a computed name or an empty attrs dict literal
OBS003  live telemetry span opened inside an ``async def`` body
RB001   broad exception handler that silently swallows outside test code
RB002   blocking engine entry point called directly from an async body
RB003   rename/close on a durability-critical path without a prior fsync
PERF001 loop-invariant O(n) subtree-weight walk recomputed per iteration
PERF002 Python observer callback invoked per element on a hot loop path
======  ================================================================

The partitioner passes identify "partitioner modules" syntactically — a
module defining a class whose base list names ``Partitioner`` (resolved
to :class:`repro.partition.base.Partitioner` when the base module is part
of the analyzed set, matched by name otherwise, so fixture snippets lint
the same way the real tree does).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import ClassInfo, SourceFile, _dotted_name
from repro.analysis.passes import LintContext, LintPass, Violation, register_lint_pass
from repro.analysis.recursion import find_recursion_cycles

#: TreeNode structural attributes a partitioner must never assign
_TREE_MUTATION_ATTRS = frozenset(
    {"weight", "parent", "children", "index", "label", "kind", "content", "nodes"}
)
#: list-mutating methods (flagged when called on ``.children`` / ``.nodes``)
_LIST_MUTATORS = frozenset(
    {"append", "insert", "extend", "pop", "remove", "clear", "sort", "reverse"}
)
#: Tree methods that mutate structure
_TREE_MUTATION_CALLS = frozenset({"add_child", "insert_child"})
#: identifier fragments that mark slot-weight arithmetic
_WEIGHT_NAME_FRAGMENTS = ("weight", "limit", "slot", "capac")
#: ``time``-module clock functions whose use constitutes manual timing
_TIMING_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: catch-all exception names whose silent handlers RB001 flags
_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})

#: uncached O(n) weight walks PERF001 flags when loop-invariant
_WEIGHT_WALK_FUNCS = frozenset(
    {
        "subtree_weights",
        "binary_subtree_weights",
        "partition_node_weights",
        "partition_weights",
        "root_weight",
    }
)

PARTITIONER_BASE = "repro.partition.base.Partitioner"


def _is_partitioner_class(cls: ClassInfo) -> bool:
    if PARTITIONER_BASE in cls.bases:
        return True
    return any(
        base == "Partitioner" or base.endswith(".Partitioner") or base.endswith("Partitioner")
        for base in cls.base_names
    )


def _partitioner_classes(ctx: LintContext, source: SourceFile) -> list[ClassInfo]:
    return [
        cls
        for cls in ctx.callgraph.classes.values()
        if cls.module == source.module and _is_partitioner_class(cls)
    ]


def _mentions_weight(node: ast.AST) -> bool:
    for child in ast.walk(node):
        name: Optional[str] = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = child.name
        if name is not None and any(
            frag in name.lower() for frag in _WEIGHT_NAME_FRAGMENTS
        ):
            return True
    return False


@register_lint_pass
class RecursionCyclePass(LintPass):
    """Report every non-suppressed recursion cycle of the call graph."""

    code = "REC001"
    name = "recursion-cycle"
    description = (
        "self- or mutual-recursion whose depth can track input size; "
        "convert to explicit-stack iteration, a generator trampoline, or "
        "annotate every member with `# repro-lint: allow-recursion` after "
        "bounding the depth by construction"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for cycle in find_recursion_cycles(ctx.callgraph):
            if cycle.suppressed:
                continue
            yield Violation(
                path=cycle.path,
                lineno=cycle.lineno,
                code=self.code,
                message=cycle.describe(),
            )


@register_lint_pass
class BareExceptPass(LintPass):
    """``except:`` catches ``SystemExit``/``KeyboardInterrupt`` too."""

    code = "BAN001"
    name = "bare-except"
    description = "bare `except:` clause; catch `ReproError` or `Exception`"

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ExceptHandler) and node.type is None:
                    yield Violation(
                        path=str(source.path),
                        lineno=node.lineno,
                        code=self.code,
                        message="bare `except:` swallows interrupts; name the exception",
                    )


@register_lint_pass
class RecursionLimitPass(LintPass):
    """Raising the interpreter recursion limit hides unbounded recursion
    instead of fixing it — the analyzer package itself is the only place
    allowed to reason about the limit."""

    code = "BAN002"
    name = "recursion-limit"
    description = "`sys.setrecursionlimit` outside repro.analysis"

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            if source.module.startswith("repro.analysis"):
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_name(node.func)
                if dotted is not None and dotted.endswith("setrecursionlimit"):
                    yield Violation(
                        path=str(source.path),
                        lineno=node.lineno,
                        code=self.code,
                        message=(
                            "sys.setrecursionlimit masks unbounded recursion; "
                            "use explicit-stack iteration instead"
                        ),
                    )


@register_lint_pass
class FloatWeightPass(LintPass):
    """Slot weights are positive integers (paper Sec. 6.1); float
    arithmetic silently breaks feasibility comparisons at page-capacity
    boundaries."""

    code = "BAN003"
    name = "float-weight"
    description = (
        "true division or float literals applied to weights/limits in a "
        "partitioner module; use integer arithmetic (`//`)"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            if not (
                _partitioner_classes(ctx, source)
                or source.module == "repro.partition.flatdp"
            ):
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    if _mentions_weight(node.left) or _mentions_weight(node.right):
                        yield Violation(
                            path=str(source.path),
                            lineno=node.lineno,
                            code=self.code,
                            message=(
                                "true division on slot weights produces floats; "
                                "use `//` (weights are integral slot counts)"
                            ),
                        )
                elif isinstance(node, (ast.BinOp, ast.Compare)):
                    operands = (
                        [node.left, node.right]
                        if isinstance(node, ast.BinOp)
                        else [node.left, *node.comparators]
                    )
                    has_float = any(
                        isinstance(op, ast.Constant) and isinstance(op.value, float)
                        for op in operands
                    )
                    if has_float and any(_mentions_weight(op) for op in operands):
                        yield Violation(
                            path=str(source.path),
                            lineno=node.lineno,
                            code=self.code,
                            message="float literal in slot-weight arithmetic",
                        )


@register_lint_pass
class PartitionerMutatesTreePass(LintPass):
    """Partitioners receive the document tree by reference and must treat
    it as read-only: every algorithm (and the contract checker) assumes
    the tree observed after ``partition()`` is the tree that was passed
    in. This pass flags tree/node mutation syntax anywhere in a module
    that defines a partitioner."""

    code = "PRT001"
    name = "partitioner-mutates-tree"
    description = (
        "tree mutation (`add_child`/`insert_child`, node attribute "
        "assignment, `.children`/`.nodes` list mutation) in a partitioner module"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            if not _partitioner_classes(ctx, source):
                continue
            yield from self._scan(source)

    def _scan(self, source: SourceFile) -> Iterator[Violation]:
        path = str(source.path)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if func.attr in _TREE_MUTATION_CALLS:
                    yield Violation(
                        path=path,
                        lineno=node.lineno,
                        code=self.code,
                        message=f"partitioner calls tree-mutating `{func.attr}()`",
                    )
                elif (
                    func.attr in _LIST_MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in ("children", "nodes")
                ):
                    yield Violation(
                        path=path,
                        lineno=node.lineno,
                        code=self.code,
                        message=(
                            f"partitioner mutates `.{func.value.attr}` via "
                            f"`.{func.attr}()`"
                        ),
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _TREE_MUTATION_ATTRS
                        and not (
                            isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        )
                    ):
                        yield Violation(
                            path=path,
                            lineno=node.lineno,
                            code=self.code,
                            message=(
                                f"partitioner assigns node attribute `.{target.attr}`"
                            ),
                        )


@register_lint_pass
class PartitionerOverridesPartitionPass(LintPass):
    """The public ``partition()`` wrapper owns the shared infeasibility
    pre-check and the runtime contract instrumentation; algorithms hook
    in through ``_partition()`` only."""

    code = "PRT002"
    name = "partitioner-overrides-partition"
    description = (
        "Partitioner subclass overrides `partition` (bypasses feasibility "
        "pre-check and invariant contracts); implement `_partition` instead"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for cls in ctx.callgraph.classes.values():
            if not _is_partitioner_class(cls) or "partition" not in cls.methods:
                continue
            method = ctx.callgraph.functions[cls.methods["partition"]]
            yield Violation(
                path=str(method.path),
                lineno=method.lineno,
                code=self.code,
                message=(
                    f"`{cls.name}` overrides `partition`; the base wrapper is the "
                    "single entry point for feasibility checks and contracts — "
                    "implement `_partition`"
                ),
            )


@register_lint_pass
class ManualTimingPass(LintPass):
    """All wall-clock measurement belongs to :mod:`repro.telemetry`:
    spans nest, survive exceptions, name their measurements and land in
    one registry, while scattered ``perf_counter()`` pairs produce
    anonymous numbers no experiment can aggregate. Only the telemetry
    package itself may read the clock."""

    code = "OBS001"
    name = "manual-timing"
    description = (
        "direct `time.time()`/`perf_counter()`-style clock call outside "
        "repro.telemetry; wrap the timed region in `telemetry.span(...)` "
        "and read `.elapsed`"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            if source.module.startswith("repro.telemetry"):
                continue
            module_aliases, func_aliases = self._timing_bindings(source.tree)
            if not module_aliases and not func_aliases:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = self._timing_call(node.func, module_aliases, func_aliases)
                if name is not None:
                    yield Violation(
                        path=str(source.path),
                        lineno=node.lineno,
                        code=self.code,
                        message=(
                            f"manual timing via `{name}()`; use "
                            "`with telemetry.span(...) as sp:` and `sp.elapsed`"
                        ),
                    )

    @staticmethod
    def _timing_bindings(tree: ast.AST) -> tuple[set[str], dict[str, str]]:
        """Names the module binds to the ``time`` module / its clocks."""
        module_aliases: set[str] = set()
        func_aliases: dict[str, str] = {}  # local name -> canonical clock name
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIMING_FUNCS:
                        func_aliases[alias.asname or alias.name] = alias.name
        return module_aliases, func_aliases

    @staticmethod
    def _timing_call(
        func: ast.expr, module_aliases: set[str], func_aliases: dict[str, str]
    ) -> Optional[str]:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
            and func.attr in _TIMING_FUNCS
        ):
            return f"{func.value.id}.{func.attr}"
        if isinstance(func, ast.Name) and func.id in func_aliases:
            return func.id
        return None


@register_lint_pass
class SpanHygienePass(LintPass):
    """Span names are the join keys of the whole observability stack:
    the profiler aggregates by them, the Chrome-trace viewer groups by
    them, and ``span.<name>`` histograms are diffed across baselines. A
    name computed at runtime from arbitrary data fragments those
    aggregations into unbounded cardinality; literal names (plain strings
    or f-strings with a literal skeleton) keep the phase set enumerable.
    An empty ``{}`` attrs argument is dead weight on a hot path — the
    keyword form allocates nothing when there are no attributes."""

    code = "OBS002"
    name = "span-hygiene"
    description = (
        "`telemetry.span(...)`/`Span(...)` opened with a non-literal name "
        "expression, or passed an empty attrs dict literal; use a string "
        "literal (or f-string) name and omit empty attrs"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            if source.module.startswith("repro.telemetry"):
                continue
            module_aliases, span_aliases = self._span_bindings(source.tree)
            if not module_aliases and not span_aliases:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                opener = self._span_call(node.func, module_aliases, span_aliases)
                if opener is None:
                    continue
                yield from self._check_call(source, node, opener)

    def _check_call(
        self, source: SourceFile, node: ast.Call, opener: str
    ) -> Iterator[Violation]:
        path = str(source.path)
        name_expr: Optional[ast.expr] = None
        if node.args and not isinstance(node.args[0], ast.Starred):
            name_expr = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    name_expr = kw.value
        if name_expr is not None and not self._is_literal_name(name_expr):
            yield Violation(
                path=path,
                lineno=node.lineno,
                code=self.code,
                message=(
                    f"`{opener}(...)` with a computed name fragments span "
                    "aggregation; use a string literal or f-string"
                ),
            )
        for arg in node.args[1:]:
            if isinstance(arg, ast.Dict) and not arg.keys:
                yield Violation(
                    path=path,
                    lineno=node.lineno,
                    code=self.code,
                    message=f"`{opener}(...)` passed an empty attrs dict literal; omit it",
                )
        for kw in node.keywords:
            if kw.arg is None and isinstance(kw.value, ast.Dict) and not kw.value.keys:
                yield Violation(
                    path=path,
                    lineno=node.lineno,
                    code=self.code,
                    message=f"`{opener}(...)` splats an empty attrs dict literal; omit it",
                )

    @staticmethod
    def _is_literal_name(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return True
        # f-strings keep a literal skeleton, so the phase set stays
        # enumerable (e.g. f"partition.{self.name}").
        return isinstance(expr, ast.JoinedStr)

    @staticmethod
    def _span_bindings(tree: ast.AST) -> tuple[set[str], dict[str, str]]:
        """Names bound to the telemetry module / its span openers."""
        module_aliases: set[str] = set()
        span_aliases: dict[str, str] = {}  # local name -> canonical opener
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("repro.telemetry", "repro.telemetry.core"):
                        module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "repro":
                    for alias in node.names:
                        if alias.name == "telemetry":
                            module_aliases.add(alias.asname or "telemetry")
                elif node.module in ("repro.telemetry", "repro.telemetry.core"):
                    for alias in node.names:
                        if alias.name in ("span", "Span"):
                            span_aliases[alias.asname or alias.name] = alias.name
        return module_aliases, span_aliases

    @staticmethod
    def _span_call(
        func: ast.expr, module_aliases: set[str], span_aliases: dict[str, str]
    ) -> Optional[str]:
        if isinstance(func, ast.Attribute) and func.attr in ("span", "Span"):
            dotted = _dotted_name(func.value)
            if dotted is not None and dotted in module_aliases:
                return f"{dotted}.{func.attr}"
        if isinstance(func, ast.Name) and func.id in span_aliases:
            return func.id
        return None


@register_lint_pass
class AsyncSpanPass(LintPass):
    """The telemetry span stack is **thread-local**: one asyncio loop
    thread interleaves many requests, so a live ``telemetry.span(...)``
    held across an ``await`` splices unrelated requests' engine spans
    into its subtree — and since PR 9 it would also steal the *request
    trace adoption* that belongs to the executor-side engine spans. The
    sanctioned patterns are the ones the service already uses: measure
    with :func:`repro.telemetry.clock` and record a synthetic
    :class:`~repro.telemetry.SpanRecord` (what the middleware does), or
    put the span inside the blocking callable that rides
    ``run_blocking`` (a nested ``def`` / sync function — exempt here,
    exactly mirroring RB002's frame rule)."""

    code = "OBS003"
    name = "async-span"
    description = (
        "live `telemetry.span(...)`/`Span(...)` opened inside an `async "
        "def` body; the span stack is thread-local and the loop thread "
        "interleaves requests — record a synthetic SpanRecord instead, "
        "or move the span into the offloaded callable"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            filename = source.path.name
            if filename.startswith("test_") or filename == "conftest.py":
                continue
            if source.module.startswith("repro.telemetry"):
                continue
            module_aliases, span_aliases = SpanHygienePass._span_bindings(
                source.tree
            )
            if not module_aliases and not span_aliases:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                for call, opener in self._inline_spans(
                    node, module_aliases, span_aliases
                ):
                    yield Violation(
                        path=str(source.path),
                        lineno=call.lineno,
                        code=self.code,
                        message=(
                            f"async `{node.name}` opens a live "
                            f"`{opener}(...)` on the event loop; the "
                            "thread-local span stack interleaves requests "
                            "— record a synthetic `telemetry.SpanRecord` "
                            "or open the span inside the offloaded "
                            "callable"
                        ),
                    )

    @staticmethod
    def _inline_spans(
        fn: ast.AsyncFunctionDef,
        module_aliases: set[str],
        span_aliases: dict[str, str],
    ) -> Iterator[tuple[ast.Call, str]]:
        """Span-opening call sites executing in ``fn``'s own async frame.

        Explicit-stack walk that does not descend into nested
        function/lambda scopes — their bodies run wherever they get
        scheduled (typically on the executor, where a thread-local span
        stack is exactly right), and the enclosing ``ast.walk`` visits
        nested ``async def``s on its own.
        """
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                opener = SpanHygienePass._span_call(
                    node.func, module_aliases, span_aliases
                )
                if opener is not None:
                    yield node, opener
            stack.extend(ast.iter_child_nodes(node))


@register_lint_pass
class ExceptionSwallowPass(LintPass):
    """Robustness work lives or dies on failures being *visible*: a
    ``except Exception: pass`` turns an injected fault, a corrupt page or
    a truncated journal into silent garbage downstream. Library code must
    handle, narrow, or re-raise; only test code (``test_*.py`` /
    ``conftest.py``, matched by filename so fixture snippets still lint)
    may swallow broadly, e.g. when asserting that cleanup survives."""

    code = "RB001"
    name = "exception-swallow"
    description = (
        "bare `except:` or `except Exception/BaseException:` whose body "
        "only `pass`es, outside test code; handle the failure, narrow the "
        "type, or re-raise"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            filename = source.path.name
            if filename.startswith("test_") or filename == "conftest.py":
                continue
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.ExceptHandler)
                    and self._is_broad(node.type)
                    and self._swallows(node.body)
                ):
                    caught = (
                        "except:"
                        if node.type is None
                        else f"except {self._describe(node.type)}"
                    )
                    yield Violation(
                        path=str(source.path),
                        lineno=node.lineno,
                        code=self.code,
                        message=(
                            f"`{caught}` with a pass-only body silently "
                            "swallows failures; handle, narrow, or re-raise"
                        ),
                    )

    @staticmethod
    def _is_broad(handler_type: Optional[ast.expr]) -> bool:
        if handler_type is None:
            return True  # bare `except:`
        candidates: list[ast.expr] = (
            list(handler_type.elts)
            if isinstance(handler_type, ast.Tuple)
            else [handler_type]
        )
        for expr in candidates:
            if isinstance(expr, ast.Name) and expr.id in _BROAD_EXCEPTION_NAMES:
                return True
            if isinstance(expr, ast.Attribute) and expr.attr in _BROAD_EXCEPTION_NAMES:
                return True
        return False

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        """True when the handler does nothing observable: only ``pass``,
        ``continue`` or constant expressions (docstrings, ``...``)."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue
            return False
        return True

    @staticmethod
    def _describe(handler_type: ast.expr) -> str:
        dotted = _dotted_name(handler_type)
        return dotted if dotted is not None else "Exception"


#: blocking engine entry points (functions and methods) an async body
#: must offload to the executor instead of calling inline — each one
#: parses, partitions, or does page I/O for the whole document
_BLOCKING_ENGINE_CALLS = frozenset(
    {
        # module-level entry points
        "parse_tree",
        "iter_events",
        "partition_tree",
        "run_query",
        "evaluate",
        "resume_import",
        "tree_to_xml",
        # method entry points (BulkLoader/ParallelBulkLoader.load,
        # DocumentStore.build/.warm_up, Partitioner.partition)
        "load",
        "build",
        "warm_up",
        "partition",
    }
)

#: wrapper call names that legitimately *receive* a blocking callable;
#: the callable is passed uncalled, so no flagged Call node appears —
#: this set only documents the sanctioned pattern for the message
_EXECUTOR_OFFLOAD_WRAPPERS = ("run_blocking", "run_in_executor", "to_thread")


@register_lint_pass
class AsyncBlockingCallPass(LintPass):
    """An asyncio event loop serves every connection on one thread: a
    handler that calls ``parse_tree`` / ``run_query`` / ``loader.load``
    inline stalls *all* requests for the duration of the parse or the
    page walk. The service routes such work through its executor-offload
    wrapper (``DocumentService.run_blocking``), which passes the callable
    *uncalled* — so this pass simply flags any blocking engine entry
    point invoked directly inside an ``async def`` body. Nested ``def``s
    are exempt (their bodies run wherever they are scheduled — typically
    on the executor), as are test files."""

    code = "RB002"
    name = "async-blocking-call"
    description = (
        "async function body calls a blocking engine entry point "
        "directly; offload it via the executor wrapper "
        f"({' / '.join(_EXECUTOR_OFFLOAD_WRAPPERS)}) so the event loop "
        "keeps serving"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            filename = source.path.name
            if filename.startswith("test_") or filename == "conftest.py":
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                for call, name in self._inline_calls(node):
                    yield Violation(
                        path=str(source.path),
                        lineno=call.lineno,
                        code=self.code,
                        message=(
                            f"async `{node.name}` calls blocking engine "
                            f"entry point `{name}()` on the event loop; "
                            "pass it uncalled through the executor-offload "
                            "wrapper (e.g. `await run_blocking("
                            f"{name}, ...)`)"
                        ),
                    )

    @staticmethod
    def _inline_calls(
        fn: ast.AsyncFunctionDef,
    ) -> Iterator[tuple[ast.Call, str]]:
        """Blocking-call sites executing in ``fn``'s own async frame.

        Explicit-stack walk (analyzer internals stay REC001-clean) that
        does not descend into nested function/lambda scopes: their
        bodies run wherever they get scheduled, and the enclosing
        ``ast.walk`` visits nested ``async def``s on its own.
        """
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                callee: Optional[str] = None
                if isinstance(node.func, ast.Name):
                    callee = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    callee = node.func.attr
                if callee in _BLOCKING_ENGINE_CALLS:
                    arity = len(node.args) + len(node.keywords)
                    # `partition` collides with str.partition(sep) — the
                    # engine entry point always takes (tree, limit, ...)
                    if callee != "partition" or arity >= 2:
                        yield node, callee
            stack.extend(ast.iter_child_nodes(node))


#: module/file-name fragments that mark durability-critical code — the
#: modules whose whole point is surviving a crash
_DURABILITY_NAME_FRAGMENTS = ("wal", "journal", "recovery", "checkpoint", "durab")

#: atomic-rename entry points whose crash-safety depends on the renamed
#: content being durable *first*
_RENAME_CALLS = frozenset(
    {"os.replace", "os.rename", "os.renames", "shutil.move"}
)

#: the calls that actually reach the platter (``flush()`` does not)
_SYNC_NAMES = frozenset({"fsync", "fdatasync"})


@register_lint_pass
class DurabilityFsyncPass(LintPass):
    """The WAL/journal/checkpoint protocols all hinge on one ordering:
    bytes are *on disk* before anything points at them. ``os.replace``
    publishes a file under its final name — done before an ``fsync`` of
    the content, a crash can leave the name pointing at a hole (the
    classic zero-length-file-after-rename bug). Likewise, closing a
    write handle only hands the bytes to the page cache; durability
    needs ``os.fsync(handle.fileno())`` first. This pass enforces both
    orderings, but only inside durability-critical modules (name
    contains ``wal``/``journal``/``recovery``/``checkpoint``/``durab``)
    — everywhere else, losing buffered bytes on a crash is an accepted
    trade."""

    code = "RB003"
    name = "durability-fsync"
    description = (
        "durability-critical module renames a file (`os.replace`/"
        "`os.rename`/`shutil.move`) or closes a write handle without a "
        "preceding `os.fsync`/`os.fdatasync`; a crash can publish "
        "unsynced (possibly empty) content"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            filename = source.path.name
            if filename.startswith("test_") or filename == "conftest.py":
                continue
            name_pool = f"{source.module} {filename}".lower()
            if not any(f in name_pool for f in _DURABILITY_NAME_FRAGMENTS):
                continue
            bare_renames = self._rename_bindings(source.tree)
            frames: list[list[ast.stmt]] = [list(source.tree.body)]
            for node in ast.walk(source.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    frames.append(list(node.body))
            for frame in frames:
                yield from self._check_frame(source, frame, bare_renames)

    def _check_frame(
        self,
        source: SourceFile,
        body: list[ast.stmt],
        bare_renames: dict[str, str],
    ) -> Iterator[Violation]:
        """One function (or module) frame; nested defs are their own frame."""
        path = str(source.path)
        sync_lines: list[int] = []
        renames: list[tuple[ast.Call, str]] = []
        # write-handle lifecycle: var -> lineno of its write-mode open()
        opened: dict[str, int] = {}
        closes: list[tuple[ast.Call, str, int]] = []  # node, var, open lineno
        withs: list[ast.With] = []
        # pre-order, source-ordered walk (close() sites must see the
        # open() assignments that precede them), nested defs skipped
        stack: list[ast.AST] = list(reversed(body))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.With):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and self._is_open_call(item.context_expr)
                        and self._opens_for_write(item.context_expr)
                    ):
                        withs.append(node)
                        break
            elif isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Call)
                    and self._is_open_call(node.value)
                    and self._opens_for_write(node.value)
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            opened[target.id] = node.lineno
            elif isinstance(node, ast.Call):
                if self._is_sync_call(node.func):
                    sync_lines.append(node.lineno)
                rename = self._rename_name(node.func, bare_renames)
                if rename is not None:
                    renames.append((node, rename))
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in opened
                ):
                    var = node.func.value.id
                    closes.append((node, var, opened[var]))
            stack.extend(reversed(list(ast.iter_child_nodes(node))))
        for call, name in renames:
            if not any(line < call.lineno for line in sync_lines):
                yield Violation(
                    path=path,
                    lineno=call.lineno,
                    code=self.code,
                    message=(
                        f"`{name}()` publishes a file with no preceding "
                        "fsync in this function; sync the content first "
                        "or a crash can leave the name pointing at "
                        "unsynced bytes"
                    ),
                )
        for call, var, open_line in closes:
            if not any(
                open_line < line <= call.lineno for line in sync_lines
            ):
                yield Violation(
                    path=path,
                    lineno=call.lineno,
                    code=self.code,
                    message=(
                        f"write handle `{var}` closed without "
                        "`os.fsync(...fileno())`; close() only reaches "
                        "the page cache, not the platter"
                    ),
                )
        for with_node in withs:
            if not self._with_body_syncs(with_node):
                yield Violation(
                    path=path,
                    lineno=with_node.lineno,
                    code=self.code,
                    message=(
                        "`with open(..., <write mode>)` block never "
                        "fsyncs; the implicit close at block exit leaves "
                        "the bytes in the page cache"
                    ),
                )

    def _with_body_syncs(self, with_node: ast.With) -> bool:
        stack: list[ast.AST] = list(with_node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call) and self._is_sync_call(node.func):
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False

    @staticmethod
    def _is_sync_call(func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return func.id in _SYNC_NAMES
        return isinstance(func, ast.Attribute) and func.attr in _SYNC_NAMES

    @staticmethod
    def _is_open_call(call: ast.Call) -> bool:
        """``open(...)`` / ``io.open(...)`` only — not ``os.open`` (fd
        API, used for directory fsyncs) and not arbitrary ``.open()``
        methods."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id == "open"
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "open"
            and isinstance(func.value, ast.Name)
            and func.value.id == "io"
        )

    @staticmethod
    def _opens_for_write(call: ast.Call) -> bool:
        mode_expr: Optional[ast.expr] = (
            call.args[1] if len(call.args) > 1 else None
        )
        if mode_expr is None:
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode_expr = kw.value
        if not isinstance(mode_expr, ast.Constant) or not isinstance(
            mode_expr.value, str
        ):
            return False  # default "r", or a computed mode we can't judge
        return any(ch in mode_expr.value for ch in "wax+")

    @staticmethod
    def _rename_name(
        func: ast.expr, bare_renames: dict[str, str]
    ) -> Optional[str]:
        dotted = _dotted_name(func)
        if dotted is not None and dotted in _RENAME_CALLS:
            return dotted
        if isinstance(func, ast.Name) and func.id in bare_renames:
            return bare_renames[func.id]
        return None

    @staticmethod
    def _rename_bindings(tree: ast.AST) -> dict[str, str]:
        """Local names bound to the rename entry points via import-from."""
        bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                canonical = f"{node.module}.{alias.name}"
                if canonical in _RENAME_CALLS:
                    bindings[alias.asname or alias.name] = canonical
        return bindings


@register_lint_pass
class RepeatedWeightWalkPass(LintPass):
    """Weight walks (``subtree_weights``, ``partition_weights``, ...) are
    O(n) over the whole tree; calling one inside a loop whose iterations
    don't change its inputs repeats the identical walk once per
    iteration — the quadratic blowup the PR-5 fast path removed from
    ``evaluate_partitioning``. The pass flags a walk call inside a
    ``for``/``while`` body only when the call is *loop-invariant*: none
    of its arguments (or its method receiver) mention a name the loop
    rebinds, so hoisting it above the loop is always safe."""

    code = "PERF001"
    name = "repeated-weight-walk"
    description = (
        "loop-invariant O(n) weight walk inside a loop body; hoist the "
        "call above the loop (or use the cached per-node arrays)"
    )

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            seen: set[tuple[int, int]] = set()
            for loop in ast.walk(source.tree):
                if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                    continue
                varying = self._loop_varying_names(loop)
                for node in ast.walk(loop):
                    if node is loop or not isinstance(node, ast.Call):
                        continue
                    walk_name = self._weight_walk_name(node.func)
                    if walk_name is None:
                        continue
                    if (node.lineno, node.col_offset) in seen:
                        continue  # already reported for an outer loop
                    if self._call_inputs(node) & varying:
                        continue  # genuinely per-iteration work
                    seen.add((node.lineno, node.col_offset))
                    yield Violation(
                        path=str(source.path),
                        lineno=node.lineno,
                        code=self.code,
                        message=(
                            f"`{walk_name}()` walks the whole tree and is "
                            "loop-invariant here; hoist it above the loop"
                        ),
                    )

    @staticmethod
    def _weight_walk_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in _WEIGHT_WALK_FUNCS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in _WEIGHT_WALK_FUNCS:
            return func.attr
        return None

    @staticmethod
    def _loop_varying_names(loop: ast.AST) -> set[str]:
        """Names the loop rebinds: ``for`` targets plus every name stored
        anywhere in the body (assignments, aug-assignments, ``with``/
        ``for`` targets of nested statements)."""
        varying: set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                varying.add(node.id)
        return varying

    @staticmethod
    def _call_inputs(call: ast.Call) -> set[str]:
        """Every name the call's result can depend on: names in the
        positional/keyword arguments and, for method calls, the receiver
        expression (``node`` in ``node.partition_weights()``)."""
        names: set[str] = set()
        roots: list[ast.expr] = list(call.args) + [kw.value for kw in call.keywords]
        if isinstance(call.func, ast.Attribute):
            roots.append(call.func.value)
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        return names


@register_lint_pass
class PerHopCallbackPass(LintPass):
    """A Python callback invoked once per navigation hop roughly doubles
    the hot loop's cost: the frame push/pop for the observer outweighs
    the step accounting it observes (measured in
    ``benchmarks/bench_index.py``, heat scenario). The batch pattern the
    engine uses instead — append to a plain list, drain under a lock
    every few thousand entries — keeps the per-hop cost to one
    ``list.append``. The pass flags calls through callback-named
    bindings (``*_sink``, ``*_hook``, ``*_callback``, ``*_recorder``,
    ``*_cb``) inside ``for``/``while`` bodies, and anywhere inside the
    per-step charge helpers themselves (functions named ``_charge*`` /
    ``_hop*``), where every statement is per-hop by construction."""

    code = "PERF002"
    name = "per-hop-callback"
    description = (
        "Python callback invoked on a per-element hot path; buffer into "
        "a plain list and drain at a threshold instead"
    )

    #: binding-name suffixes that mark an observer callback
    _SUFFIXES = ("_sink", "_hook", "_callback", "_recorder", "_cb")
    #: bare names that mark one even without a prefix
    _BARE = frozenset({"sink", "hook", "callback", "recorder"})
    #: function-name prefixes whose whole body is per-hop work
    _HOT_FUNC_PREFIXES = ("_charge", "_hop")

    def run(self, ctx: LintContext) -> Iterator[Violation]:
        for source in ctx.files:
            seen: set[tuple[int, int]] = set()
            for scope, call in self._hot_calls(source.tree):
                name = self._callback_name(call.func)
                if name is None:
                    continue
                key = (call.lineno, call.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield Violation(
                    path=str(source.path),
                    lineno=call.lineno,
                    code=self.code,
                    message=(
                        f"`{name}(...)` runs once per element on this "
                        f"{scope}; append to a plain list buffer and "
                        "drain it at a threshold instead"
                    ),
                )

    def _hot_calls(self, tree: ast.AST) -> Iterator[tuple[str, ast.Call]]:
        """Yield ``(scope, call)`` for every call on a per-element path:
        inside a loop body anywhere, or anywhere inside a charge/hop
        helper (loop or not — its caller is the loop)."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call):
                        yield "hot loop", inner
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith(self._HOT_FUNC_PREFIXES):
                    continue
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call):
                        yield f"per-hop path (`{node.name}`)", inner

    def _callback_name(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        if name in self._BARE or name.endswith(self._SUFFIXES):
            return name
        return None
