"""Static call-graph construction over a set of Python sources.

The graph is the substrate of the recursion detector (and of any future
interprocedural pass): nodes are function/method definitions, edges are
*resolvable* call sites. Resolution is deliberately precise rather than
complete — an edge is only added when the callee can be pinned down
syntactically, so cycle reports stay actionable:

* bare-name calls resolve to nested functions in the enclosing lexical
  scope, then to module-level functions, then through ``import`` /
  ``from .. import`` aliases;
* ``self.m(..)`` / ``cls.m(..)`` resolve through the enclosing class and
  its analyzed bases **and** to every override of ``m`` in analyzed
  subclasses (dynamic dispatch may land there — this is what makes a
  template-method cycle like ``Base.run -> self._step -> Sub._step ->
  Base.run`` visible);
* ``module.f(..)`` and ``Class.m(..)`` resolve through import aliases and
  same-module class names;
* any other attribute call (duck-typed receiver) is *not* linked. This is
  the classic soundness/precision trade: linking every method of the same
  name would flag delegating wrappers such as
  ``store.StoredNode.descendants_or_self`` calling another handle's
  ``descendants_or_self`` as fake recursion.

Two stack-safety facts are recorded per edge so the recursion pass can
exempt them:

* **Trampolined calls** — a call that is the immediate operand of a
  ``yield`` inside a generator function (``result = yield task(..)``)
  only *instantiates* a generator; the frame is driven by an external
  trampoline loop, so the call never grows the Python stack. (Note that
  ``yield from task(..)`` is *not* exempt: delegation keeps every outer
  frame alive.)
* **Pragmas** — a ``# repro-lint: allow-recursion`` comment on the
  ``def`` line marks recursion that is bounded by construction (e.g. a
  parser with an explicit nesting cap). See :mod:`repro.analysis.passes`
  for the general ``skip`` pragma.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<directive>[A-Za-z-]+)(?:=(?P<args>[^#\s]+))?")

#: directive suppressing violations reported at that line
PRAGMA_SKIP = "skip"
#: directive (on a ``def`` line) marking bounded, intentional recursion
PRAGMA_ALLOW_RECURSION = "allow-recursion"


@dataclass
class Pragma:
    """One ``# repro-lint:`` directive attached to a source line."""

    directive: str
    #: for ``skip``: the lint codes it suppresses (empty = all codes)
    codes: frozenset[str] = frozenset()


def parse_pragmas(lines: list[str]) -> dict[int, list[Pragma]]:
    """Extract ``# repro-lint:`` directives, keyed by 1-based line number."""
    pragmas: dict[int, list[Pragma]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        for match in PRAGMA_RE.finditer(line):
            args = match.group("args")
            codes = frozenset(a for a in (args or "").split(",") if a)
            pragmas.setdefault(lineno, []).append(
                Pragma(directive=match.group("directive"), codes=codes)
            )
    return pragmas


@dataclass
class SourceFile:
    """A parsed module plus the lookup tables passes need."""

    path: Path
    module: str
    text: str
    lines: list[str]
    tree: ast.Module
    pragmas: dict[int, list[Pragma]]

    def skips(self, lineno: int, code: str) -> bool:
        """Is ``code`` suppressed at ``lineno`` by a ``skip`` pragma?"""
        for pragma in self.pragmas.get(lineno, ()):
            if pragma.directive == PRAGMA_SKIP and (not pragma.codes or code in pragma.codes):
                return True
        return False


def module_name_for(path: Path) -> str:
    """Dotted module name, found by ascending through ``__init__.py`` dirs."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def load_source_files(paths: Iterable[Path]) -> list[SourceFile]:
    """Parse every ``.py`` file under the given files/directories."""
    files: list[SourceFile] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        candidates = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            text = resolved.read_text(encoding="utf-8")
            files.append(
                SourceFile(
                    path=path,
                    module=module_name_for(resolved),
                    text=text,
                    lines=text.splitlines(),
                    tree=ast.parse(text, filename=str(path)),
                    pragmas=parse_pragmas(text.splitlines()),
                )
            )
    return files


@dataclass
class FunctionInfo:
    """One analyzed function or method definition."""

    qualname: str
    module: str
    name: str
    path: Path
    lineno: int
    class_qualname: Optional[str] = None
    is_generator: bool = False
    allow_recursion: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.lineno}"


@dataclass
class ClassInfo:
    """One analyzed class: methods by name plus raw base expressions."""

    qualname: str
    module: str
    name: str
    path: Path
    lineno: int
    methods: dict[str, str] = field(default_factory=dict)
    #: base expressions as dotted strings ("Partitioner", "abc.ABC")
    base_names: list[str] = field(default_factory=list)
    #: resolved qualnames of analyzed bases (phase 2)
    bases: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class CallEdge:
    """A resolved call site ``caller -> callee``."""

    caller: str
    callee: str
    path: Path
    lineno: int
    #: trampolined generator instantiation — does not grow the stack
    stack_safe: bool = False


@dataclass
class CallGraph:
    """Functions, classes and resolved call edges of an analyzed code set."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    edges: list[CallEdge] = field(default_factory=list)

    def successors(self, qualname: str, include_stack_safe: bool = False) -> set[str]:
        return {
            e.callee
            for e in self.edges
            if e.caller == qualname and (include_stack_safe or not e.stack_safe)
        }

    def subclasses_of(self, class_qualname: str) -> set[str]:
        """Transitive analyzed subclasses (excluding the class itself)."""
        children: dict[str, set[str]] = {}
        for cls in self.classes.values():
            for base in cls.bases:
                children.setdefault(base, set()).add(cls.qualname)
        out: set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop()
            for sub in children.get(current, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def mro_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` through the class and its analyzed bases."""
        frontier = [class_qualname]
        visited: set[str] = set()
        while frontier:
            current = frontier.pop(0)
            if current in visited:
                continue
            visited.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            frontier.extend(cls.bases)
        return None


def _dotted_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` expressions as dotted strings (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


class _Imports:
    """Alias table of one module: name -> dotted target."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def collect(self, tree: ast.Module, module: str) -> None:
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # relative import: resolve against the current package
                    prefix_parts = module.split(".")[: -node.level] or [package]
                    base = ".".join(prefix_parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    def resolve(self, name: str) -> Optional[str]:
        return self.aliases.get(name)


@dataclass
class _Scope:
    """Lexical scope frame used while walking one module."""

    kind: str  # "module" | "class" | "function"
    qualname: str
    # nested function name -> qualname (function scopes only)
    locals: dict[str, str] = field(default_factory=dict)


def _is_generator(node: ast.AST) -> bool:
    """Does this function body contain a yield (excluding nested defs)?"""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(child))
    return False


def _has_allow_recursion(source: SourceFile, lineno: int) -> bool:
    return any(
        p.directive == PRAGMA_ALLOW_RECURSION for p in source.pragmas.get(lineno, ())
    )


class _DefinitionCollector(ast.NodeVisitor):
    """Phase 1: functions, classes, per-module imports."""

    def __init__(self, graph: CallGraph, source: SourceFile, imports: _Imports):
        self.graph = graph
        self.source = source
        self.imports = imports
        self.scopes: list[_Scope] = [_Scope("module", source.module)]

    # -- helpers ----------------------------------------------------------

    def _qualname(self, name: str) -> str:
        return f"{self.scopes[-1].qualname}.{name}"

    def _enclosing_class(self) -> Optional[str]:
        for scope in reversed(self.scopes):
            if scope.kind == "class":
                return scope.qualname
        return None

    # -- visitors ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        info = ClassInfo(
            qualname=qualname,
            module=self.source.module,
            name=node.name,
            path=self.source.path,
            lineno=node.lineno,
            base_names=[b for b in map(_dotted_name, node.bases) if b is not None],
        )
        self.graph.classes[qualname] = info
        self.scopes.append(_Scope("class", qualname))
        self.generic_visit(node)
        self.scopes.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = self._qualname(node.name)
        enclosing_class = self._enclosing_class()
        info = FunctionInfo(
            qualname=qualname,
            module=self.source.module,
            name=node.name,
            path=self.source.path,
            lineno=node.lineno,
            class_qualname=(
                enclosing_class if self.scopes[-1].kind == "class" else None
            ),
            is_generator=_is_generator(node),
            allow_recursion=_has_allow_recursion(self.source, node.lineno),
        )
        self.graph.functions[qualname] = info
        parent = self.scopes[-1]
        if parent.kind == "function":
            parent.locals[node.name] = qualname
        elif parent.kind == "class":
            self.graph.classes[parent.qualname].methods[node.name] = qualname
        self.scopes.append(_Scope("function", qualname))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


class _CallCollector:
    """Phase 2: resolve call sites of one function body to edges."""

    def __init__(self, graph: CallGraph, source: SourceFile, imports: _Imports):
        self.graph = graph
        self.source = source
        self.imports = imports
        # (module, name) -> qualname for module-level functions and classes
        self.module_functions: dict[tuple[str, str], str] = {}
        self.module_classes: dict[tuple[str, str], str] = {}
        for fn in graph.functions.values():
            if fn.class_qualname is None and fn.qualname == f"{fn.module}.{fn.name}":
                self.module_functions[(fn.module, fn.name)] = fn.qualname
        for cls in graph.classes.values():
            if cls.qualname == f"{cls.module}.{cls.name}":
                self.module_classes[(cls.module, cls.name)] = cls.qualname

    def collect(
        self,
        caller: FunctionInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        scope_locals: dict[str, str],
    ) -> None:
        trampolined = self._trampolined_calls(node) if caller.is_generator else set()
        for call in self._own_calls(node):
            for callee in self._resolve(call, caller, scope_locals):
                self.graph.edges.append(
                    CallEdge(
                        caller=caller.qualname,
                        callee=callee,
                        path=self.source.path,
                        lineno=call.lineno,
                        stack_safe=id(call) in trampolined,
                    )
                )
        # Decorating a nested def/class implicitly *calls* the decorator
        # in this frame; bare-name decorators have no ast.Call node, so
        # resolve them here (factory decorators like `@retry(3)` already
        # surface their factory call through _own_calls).
        for expr in self._nested_decorators(node):
            callees: list[str] = []
            if isinstance(expr, ast.Name):
                callees = self._resolve_name(expr.id, caller, scope_locals)
            elif isinstance(expr, ast.Attribute):
                callees = self._resolve_attribute(expr, caller)
            for callee in callees:
                self.graph.edges.append(
                    CallEdge(
                        caller=caller.qualname,
                        callee=callee,
                        path=self.source.path,
                        lineno=expr.lineno,
                    )
                )

    @staticmethod
    def _own_calls(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Call]:
        """Call nodes evaluated in *this* function's frame.

        Starts from the body (the function's own decorators and argument
        defaults run in the enclosing scope, not here) and stops at
        nested def/class bodies — but keeps a nested definition's
        decorators, default values and base-class expressions, because
        those evaluate eagerly in this frame when the ``def``/``class``
        statement executes.
        """
        calls: list[ast.Call] = []
        stack: list[ast.AST] = list(node.body)
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(child.decorator_list)
                stack.extend(child.args.defaults)
                stack.extend(d for d in child.args.kw_defaults if d is not None)
                continue
            if isinstance(child, ast.ClassDef):
                stack.extend(child.decorator_list)
                stack.extend(child.bases)
                stack.extend(kw.value for kw in child.keywords)
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            stack.extend(ast.iter_child_nodes(child))
        return calls

    @staticmethod
    def _nested_decorators(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[ast.expr]:
        """Bare decorator expressions of defs/classes nested in this body."""
        out: list[ast.expr] = []
        stack: list[ast.AST] = list(node.body)
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                out.extend(
                    d for d in child.decorator_list if not isinstance(d, ast.Call)
                )
                continue
            stack.extend(ast.iter_child_nodes(child))
        return out

    @staticmethod
    def _trampolined_calls(node: ast.AST) -> set[int]:
        """ids of Call nodes that are the immediate operand of a ``yield``."""
        out: set[int] = set()
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, ast.Yield) and isinstance(child.value, ast.Call):
                out.add(id(child.value))
            stack.extend(ast.iter_child_nodes(child))
        return out

    def _resolve(
        self, call: ast.Call, caller: FunctionInfo, scope_locals: dict[str, str]
    ) -> list[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller, scope_locals)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller)
        return []

    def _resolve_name(
        self, name: str, caller: FunctionInfo, scope_locals: dict[str, str]
    ) -> list[str]:
        # nested function in the enclosing lexical scope
        if name in scope_locals:
            return [scope_locals[name]]
        # module-level function in the same module
        local = self.module_functions.get((caller.module, name))
        if local is not None:
            return [local]
        # imported function
        target = self.imports.resolve(name)
        if target is not None and target in self.graph.functions:
            return [target]
        return []

    def _resolve_attribute(self, func: ast.Attribute, caller: FunctionInfo) -> list[str]:
        receiver = func.value
        method = func.attr
        if isinstance(receiver, ast.Name):
            # self.m() / cls.m(): the enclosing class, its bases, and --
            # because dispatch is dynamic -- every analyzed override.
            if receiver.id in ("self", "cls") and caller.class_qualname is not None:
                targets: list[str] = []
                resolved = self.graph.mro_method(caller.class_qualname, method)
                if resolved is not None:
                    targets.append(resolved)
                for sub in self.graph.subclasses_of(caller.class_qualname):
                    override = self.graph.classes[sub].methods.get(method)
                    if override is not None:
                        targets.append(override)
                return sorted(set(targets))
            # Class.m() on a same-module or imported class
            class_qual = self.module_classes.get((caller.module, receiver.id))
            if class_qual is None:
                imported = self.imports.resolve(receiver.id)
                if imported is not None and imported in self.graph.classes:
                    class_qual = imported
            if class_qual is not None:
                resolved = self.graph.mro_method(class_qual, method)
                return [resolved] if resolved is not None else []
            # module.f() through an import alias
            imported = self.imports.resolve(receiver.id)
            if imported is not None:
                target = f"{imported}.{method}"
                if target in self.graph.functions:
                    return [target]
        dotted = _dotted_name(func)
        if dotted is not None and dotted in self.graph.functions:
            return [dotted]
        # duck-typed receiver: unresolved by design (see module docstring)
        return []


def build_callgraph(files: Iterable[SourceFile]) -> CallGraph:
    """Build the resolved call graph of the given source files."""
    files = list(files)
    graph = CallGraph()
    imports_by_module: dict[str, _Imports] = {}

    # phase 1: definitions + imports
    for source in files:
        imports = _Imports()
        imports.collect(source.tree, source.module)
        imports_by_module[source.module] = imports
        _DefinitionCollector(graph, source, imports).visit(source.tree)

    # phase 1.5: resolve class bases to analyzed classes
    for cls in graph.classes.values():
        imports = imports_by_module[cls.module]
        for base in cls.base_names:
            head = base.split(".")[0]
            candidates = [base, f"{cls.module}.{base}"]
            imported = imports.resolve(head)
            if imported is not None:
                rest = base.split(".")[1:]
                candidates.append(".".join([imported] + rest))
            for candidate in candidates:
                if candidate in graph.classes:
                    cls.bases.append(candidate)
                    break

    # phase 2: call sites (needs the full definition + hierarchy tables)
    for source in files:
        collector = _CallCollector(graph, source, imports_by_module[source.module])
        _collect_calls_in_module(collector, graph, source)
    return graph


def _own_nested_defs(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function definitions bound directly in this function's scope.

    Walks through compound statements (``if``/``for``/``try``/``with``
    blocks bind their defs in the same frame) but not into nested
    def/class bodies, whose definitions live in a different scope.
    """
    out: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    stack: list[ast.AST] = list(node.body)
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(child)
            continue
        if isinstance(child, (ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return out


def _collect_calls_in_module(
    collector: _CallCollector, graph: CallGraph, source: SourceFile
) -> None:
    """Walk every function of one module, tracking lexical nesting."""
    # (ast node, scope_locals of the *enclosing* function chain)
    stack: list[tuple[ast.AST, dict[str, str], str]] = [
        (source.tree, {}, source.module)
    ]
    while stack:
        node, enclosing_locals, scope_qual = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope_qual}.{child.name}"
                info = graph.functions.get(qualname)
                if info is not None:
                    # visible nested defs: every def bound in this
                    # function's own scope, however deeply it sits inside
                    # if/for/try blocks
                    nested = {
                        g.name: f"{qualname}.{g.name}"
                        for g in _own_nested_defs(child)
                        if f"{qualname}.{g.name}" in graph.functions
                    }
                    visible = {**enclosing_locals, qualname.rsplit(".", 1)[-1]: qualname, **nested}
                    collector.collect(info, child, visible)
                    stack.append((child, visible, qualname))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, {}, f"{scope_qual}.{child.name}"))
            else:
                stack.append((child, enclosing_locals, scope_qual))
